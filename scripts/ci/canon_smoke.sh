#!/usr/bin/env bash
# CI smoke for semantic cache keys: a default (canon-on) flqd and a
# --no-canon flqd must return byte-identical verdict fields on a fixed
# pair set that exercises the canonicalizer (renamed / permuted /
# redundant-atom respellings of the same cores), the canon counters must
# be live on GET /metrics, and a loadgen variant storm must verify
# bit-identically against local ground truth in both modes.
#
# Expects release binaries already built; override with FLQD= / LOADGEN=.
set -euo pipefail

FLQD=${FLQD:-./target/release/flqd}
LOADGEN=${LOADGEN:-./target/release/loadgen}

[ -x "$FLQD" ] || { echo "missing $FLQD (build flqd first)" >&2; exit 2; }
[ -x "$LOADGEN" ] || { echo "missing $LOADGEN (build loadgen first)" >&2; exit 2; }

tmp=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null; done
    rm -rf "$tmp"
    return 0
}
trap cleanup EXIT

# Starts flqd with the given extra flags; sets ADDR (readiness is an
# event via --ready-fd, not a poll). Not usable inside a command
# substitution: the backgrounded server would hold the captured stdout
# open forever.
start_flqd() {
    local fifo="$tmp/ready.$$.$RANDOM.fifo"
    mkfifo "$fifo"
    "$FLQD" --addr 127.0.0.1:0 --ready-fd 3 "$@" 3>"$fifo" &
    PIDS+=($!)
    ADDR=$(head -n1 "$fifo")
    [ -n "$ADDR" ] || { echo "no readiness line from flqd" >&2; exit 1; }
}

# One HTTP request over /dev/tcp; prints the response.
request() {
    local addr=$1 method=$2 path=$3 body=${4:-}
    local host=${addr%:*} port=${addr##*:}
    exec 3<>"/dev/tcp/$host/$port"
    printf '%s %s HTTP/1.1\r\nhost: smoke\r\ncontent-length: %s\r\nconnection: close\r\n\r\n%s' \
        "$method" "$path" "${#body}" "$body" >&3
    timeout 10 cat <&3
    exec 3<&- 3>&-
}

start_flqd
ADDR_ON=$ADDR
start_flqd --no-canon
ADDR_OFF=$ADDR
echo "canon-on flqd at $ADDR_ON, --no-canon flqd at $ADDR_OFF"

echo "== identical verdicts, canon-on vs --no-canon =="
# Respellings of shared cores (renamed vars, permuted bodies, redundant
# atoms) mixed with negatives and a vacuous chase failure. Only the
# verdict field is compared: chase statistics legitimately differ when
# the canon server decides on the core representative.
pairs=(
    'q(X, Z) :- sub(X, Y), sub(Y, Z).|p(X, Z) :- sub(X, Z).'
    'q(A, C) :- sub(B, C), sub(A, B).|p(U, W) :- sub(U, W).'
    'q(X, Z) :- sub(X, Y), sub(Y, Z), sub(X, W), sub(W, Z).|p(X, Z) :- sub(X, Z).'
    'q(X) :- member(X, c).|p(X) :- sub(X, c).'
    'q() :- data(o, a, 1), data(o, a, 2), funct(a, o).|p() :- sub(X, Y).'
)
for pair in "${pairs[@]}"; do
    q1=${pair%%|*}
    q2=${pair##*|}
    body="{\"q1\":\"$q1\",\"q2\":\"$q2\"}"
    for addr in "$ADDR_ON" "$ADDR_OFF"; do
        resp=$(request "$addr" POST /v1/contains "$body")
        head -n1 <<<"$resp" | grep -q ' 200 ' || { echo "non-200 from $addr for: $body" >&2; exit 1; }
    done
    v_on=$(request "$ADDR_ON" POST /v1/contains "$body" | grep -o '"verdict":"[a-z_]*"')
    v_off=$(request "$ADDR_OFF" POST /v1/contains "$body" | grep -o '"verdict":"[a-z_]*"')
    [ -n "$v_on" ] || { echo "no verdict field for: $body" >&2; exit 1; }
    [ "$v_on" = "$v_off" ] || { echo "verdict drift on $q1 vs $q2: canon=$v_on raw=$v_off" >&2; exit 1; }
    echo "  $v_on  $q1 vs $q2"
done

echo "== canon counters live on GET /metrics (prometheus + legacy text) =="
metrics_on=$(request "$ADDR_ON" GET /metrics)
metrics_off=$(request "$ADDR_OFF" GET /metrics)
canon_keys=$(grep -o 'flqd_canon_keys_total [0-9]*' <<<"$metrics_on" | awk '{print $2}')
[ "${canon_keys:-0}" -gt 0 ] || { echo "canon-on server reports no canon passes" >&2; exit 1; }
canon_keys_off=$(grep -o 'flqd_canon_keys_total [0-9]*' <<<"$metrics_off" | awk '{print $2}')
[ "${canon_keys_off:-0}" -eq 0 ] || { echo "--no-canon server canonicalized anyway" >&2; exit 1; }
echo "  canon-on flqd_canon_keys_total=$canon_keys, --no-canon flqd_canon_keys_total=$canon_keys_off"
legacy_on=$(request "$ADDR_ON" GET '/metrics?format=text')
legacy_keys=$(grep -o 'flq_canon_keys [0-9]*' <<<"$legacy_on" | awk '{print $2}')
[ "${legacy_keys:-0}" -gt 0 ] || { echo "legacy text exposition lost flq_canon_keys" >&2; exit 1; }
echo "  legacy flq_canon_keys=$legacy_keys"

echo "== variant storm verifies against local ground truth in both modes =="
# 4 mutated respellings of every base pair; --verify recomputes each
# exact variant locally, so this is the end-to-end soundness gate for
# key canonicalization (and for honestly missing without it).
"$LOADGEN" --addr "$ADDR_ON" --pairs 8 --variants 4 --requests 120 --concurrency 2 --keep-alive --warmup 40 --verify
"$LOADGEN" --addr "$ADDR_OFF" --pairs 8 --variants 4 --requests 120 --concurrency 2 --keep-alive --warmup 40 --verify

echo "canon smoke OK"
