#!/usr/bin/env bash
# CI smoke for Σ-admission: `flq lint --sigma` must admit the known-good
# example sets (exit 0, warnings allowed) and reject the known-bad one
# (exit 2, with at least one FL01x admission code in the output). Also
# checks that a rejected set blocks `flq contains --sigma` with the same
# exit code, so no subcommand sneaks an inadmissible Σ past the gate.
#
# Expects the flq binary already built; override with FLQ=.
set -euo pipefail

FLQ=${FLQ:-./target/release/flq}

[ -x "$FLQ" ] || { echo "missing $FLQ (build flq first)" >&2; exit 2; }

# Admitted sets: exit 0 and a summary saying so.
for f in examples/sigma/sigma_fl.sigma examples/sigma/transitive.sigma \
         examples/sigma/guarded.sigma; do
    echo "== lint --sigma $f (expect admitted, exit 0) =="
    out=$("$FLQ" lint --sigma "$f" 2>&1)
    echo "$out"
    echo "$out" | grep -q 'admitted' || { echo "FAIL: no admission summary" >&2; exit 1; }
done

# Rejected set: exit 2 and at least one coded FL01x diagnostic.
f=examples/sigma/rejected.sigma
echo "== lint --sigma $f (expect rejected, exit 2) =="
set +e
out=$("$FLQ" lint --sigma "$f" 2>&1)
code=$?
set -e
echo "$out"
echo "exit code $code (want 2)"
[ "$code" -eq 2 ] || { echo "FAIL: wrong exit code" >&2; exit 1; }
echo "$out" | grep -Eq 'FL01[0-9]' || { echo "FAIL: no FL01x code in output" >&2; exit 1; }
echo "$out" | grep -q 'rejected' || { echo "FAIL: no rejection summary" >&2; exit 1; }

# The gate is shared: a rejected Σ must block the decision subcommands too.
echo "== contains --sigma $f (expect exit 2) =="
set +e
"$FLQ" contains 'q(X) :- member(X, c).' 'p(X) :- member(X, c).' --sigma "$f"
code=$?
set -e
echo "exit code $code (want 2)"
[ "$code" -eq 2 ] || { echo "FAIL: wrong exit code" >&2; exit 1; }

echo "admission smoke OK"
