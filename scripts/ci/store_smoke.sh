#!/usr/bin/env bash
# CI smoke for the durable decision store (flqd --data-dir):
#
#   1. start flqd on a fresh data dir and warm it with verified traffic;
#   2. SIGTERM (graceful drain flushes the memtable), then verify the
#      store offline with `flq cache verify`;
#   3. restart on the same dir and replay the same seeded workload —
#      the restarted server must answer from disk (disk hits > 0 on
#      /metrics) instead of re-chasing;
#   4. verify again, print `flq cache stat`, and export a
#      restart-to-warm CSV (bench_results/ci_store.csv) as an artifact.
#
# Expects release binaries already built; override with FLQD= /
# LOADGEN= / FLQ=.
set -euo pipefail

FLQD=${FLQD:-./target/release/flqd}
LOADGEN=${LOADGEN:-./target/release/loadgen}
FLQ=${FLQ:-./target/release/flq}
CSV=${CSV:-bench_results/ci_store.csv}

for bin in "$FLQD" "$LOADGEN" "$FLQ"; do
    [ -x "$bin" ] || { echo "missing $bin (build it first)" >&2; exit 2; }
done

tmp=$(mktemp -d)
DATA="$tmp/store"
FLQD_PID=
cleanup() {
    [ -n "$FLQD_PID" ] && kill "$FLQD_PID" 2>/dev/null
    rm -rf "$tmp"
    return 0
}
trap cleanup EXIT

# Same readiness protocol as serve_smoke.sh: flqd writes HOST:PORT to
# the inherited --ready-fd once bound, so readiness is an event.
start_flqd() {
    local fifo="$tmp/ready.$$.$RANDOM.fifo"
    mkfifo "$fifo"
    "$FLQD" --addr 127.0.0.1:0 --ready-fd 3 "$@" 3>"$fifo" &
    FLQD_PID=$!
    ADDR=$(head -n1 "$fifo")
    [ -n "$ADDR" ] || { echo "no readiness line from flqd" >&2; exit 1; }
    echo "flqd up at $ADDR (pid $FLQD_PID)"
}

stop_flqd() {
    kill -TERM "$FLQD_PID"
    wait "$FLQD_PID"
    FLQD_PID=
}

# One GET over /dev/tcp; prints the response body-and-headers.
request() {
    local addr=$1 path=$2
    local host=${addr%:*} port=${addr##*:}
    exec 3<>"/dev/tcp/$host/$port"
    printf 'GET %s HTTP/1.1\r\nhost: smoke\r\ncontent-length: 0\r\nconnection: close\r\n\r\n' \
        "$path" >&3
    timeout 10 cat <&3
    exec 3<&- 3>&-
}

# First sample of a Prometheus metric family, 0 if absent.
metric() {
    local addr=$1 name=$2
    request "$addr" "/metrics" \
        | awk -v n="$name" '$1 == n { print $2; found = 1; exit } END { if (!found) print 0 }' \
        | tr -d '\r'
}

now_ms() { date +%s%3N; }

# The workload: fixed seed, so the restarted server sees byte-identical
# queries and every decided pair must hit the durable tier.
LOAD=(--requests 60 --concurrency 2 --pairs 12 --seed 7 --keep-alive --verify)

echo "== cold start on a fresh --data-dir, warmed with verified traffic =="
start_flqd --workers 2 --data-dir "$DATA"
t0=$(now_ms)
"$LOADGEN" --addr "$ADDR" "${LOAD[@]}"
warm_ms=$(( $(now_ms) - t0 ))
puts=$(metric "$ADDR" flqd_store_puts_total)
[ "$puts" -gt 0 ] || { echo "expected store puts after warm traffic, saw $puts" >&2; exit 1; }
echo "warm run: ${warm_ms} ms, $puts decisions persisted"

echo "== SIGTERM drain flushes; offline verify must be clean =="
stop_flqd
"$FLQ" cache verify "$DATA"
"$FLQ" cache stat "$DATA"

echo "== restart on the same dir: prior decisions served from disk =="
t0=$(now_ms)
start_flqd --workers 2 --data-dir "$DATA"
open_ms=$(( $(now_ms) - t0 ))
t0=$(now_ms)
"$LOADGEN" --addr "$ADDR" "${LOAD[@]}"
replay_ms=$(( $(now_ms) - t0 ))
disk_hits=$(metric "$ADDR" flqd_store_disk_hits_total)
echo "restart: open ${open_ms} ms, replay ${replay_ms} ms, $disk_hits disk hits"
[ "$disk_hits" -gt 0 ] || { echo "restarted server took zero disk hits" >&2; exit 1; }
stop_flqd

echo "== store still clean after the second generation of traffic =="
"$FLQ" cache verify "$DATA"

mkdir -p "$(dirname "$CSV")"
{
    echo "phase,ms,persisted_puts,disk_hits"
    echo "cold_warmup,$warm_ms,$puts,0"
    echo "restart_open,$open_ms,,"
    echo "disk_warm_replay,$replay_ms,,$disk_hits"
} > "$CSV"
echo "wrote $CSV"

echo "store smoke OK"
