#!/usr/bin/env bash
# CI smoke for flqd: --ready-fd readiness (no sleep/grep polling),
# verified verdicts in every client mode (close / batch / keep-alive /
# pipelined), a pipelined burst over a tiny queue cap answering its tail
# with 503 + retry-after, and graceful SIGTERM drain.
#
# Expects release binaries already built; override with FLQD= / LOADGEN=.
set -euo pipefail

FLQD=${FLQD:-./target/release/flqd}
LOADGEN=${LOADGEN:-./target/release/loadgen}

[ -x "$FLQD" ] || { echo "missing $FLQD (build flqd first)" >&2; exit 2; }
[ -x "$LOADGEN" ] || { echo "missing $LOADGEN (build loadgen first)" >&2; exit 2; }

tmp=$(mktemp -d)
FLQD_PID=
cleanup() {
    [ -n "$FLQD_PID" ] && kill "$FLQD_PID" 2>/dev/null
    rm -rf "$tmp"
    return 0
}
trap cleanup EXIT

# Starts flqd with the given extra flags; sets ADDR and FLQD_PID. The
# server writes HOST:PORT to the inherited --ready-fd once the listener
# is bound, so readiness is an event, not a poll.
start_flqd() {
    local fifo="$tmp/ready.$$.$RANDOM.fifo"
    mkfifo "$fifo"
    "$FLQD" --addr 127.0.0.1:0 --ready-fd 3 "$@" 3>"$fifo" &
    FLQD_PID=$!
    ADDR=$(head -n1 "$fifo")
    [ -n "$ADDR" ] || { echo "no readiness line from flqd" >&2; exit 1; }
    echo "flqd up at $ADDR (pid $FLQD_PID)"
}

# SIGTERM must drain gracefully: exit 0, not a signal death.
stop_flqd() {
    kill -TERM "$FLQD_PID"
    wait "$FLQD_PID"
    FLQD_PID=
}

echo "== verified verdicts in every client mode =="
start_flqd --workers 2
"$LOADGEN" --addr "$ADDR" --requests 50 --concurrency 2 --verify
"$LOADGEN" --addr "$ADDR" --requests 20 --batch 4 --verify
"$LOADGEN" --addr "$ADDR" --requests 50 --concurrency 2 --keep-alive --verify
"$LOADGEN" --addr "$ADDR" --requests 48 --concurrency 2 --keep-alive --pipeline 8 --verify

echo "== graceful SIGTERM drain =="
stop_flqd

echo "== pipelined burst over a tiny queue: tail answered 503 =="
# One worker, queue cap 1: three requests pipelined in a single write
# arrive nanoseconds apart while each decision costs tens of
# microseconds, so at least one of the trailing two must be rejected
# with 503 + retry-after — and the connection must survive to carry the
# rejection. The last request says `connection: close` so the response
# stream has an EOF for cat to find.
start_flqd --workers 1 --queue-cap 1
host=${ADDR%:*}
port=${ADDR##*:}
burst=""
for i in 1 2 3; do
    body="{\"q1\":\"q(X) :- sub(X, k$i), sub(k$i, X).\",\"q2\":\"p(X) :- sub(X, Y).\"}"
    extra=""
    [ "$i" -eq 3 ] && extra=$'connection: close\r\n'
    burst+="POST /v1/contains HTTP/1.1"$'\r\n'"host: smoke"$'\r\n'"content-length: ${#body}"$'\r\n'"$extra"$'\r\n'"$body"
done
exec 3<>"/dev/tcp/$host/$port"
printf '%s' "$burst" >&3
responses=$(timeout 10 cat <&3)
exec 3<&- 3>&-
# No line anchors: a response body and the next status line share a
# line (bodies carry no trailing newline), so count occurrences.
ok=$(grep -o 'HTTP/1\.1 200 ' <<<"$responses" | wc -l)
busy=$(grep -o 'HTTP/1\.1 503 ' <<<"$responses" | wc -l)
echo "pipelined burst: ${ok:-0} x 200, ${busy:-0} x 503"
head -n1 <<<"$responses" | grep -q ' 200 ' || { echo "first pipelined response was not 200" >&2; exit 1; }
[ "$((ok + busy))" -eq 3 ] || { echo "expected 3 responses" >&2; exit 1; }
[ "$busy" -ge 1 ] || { echo "expected at least one 503 at queue-cap 1" >&2; exit 1; }
grep -qi 'retry-after: 1' <<<"$responses" || { echo "503 missing retry-after" >&2; exit 1; }
stop_flqd

echo "serve smoke OK"
