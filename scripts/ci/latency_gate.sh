#!/usr/bin/env bash
# Blocking latency gate: the warm keep-alive p50 on a single persistent
# connection must stay under BUDGET_US microseconds — with the full
# observability stack live (spans, histograms, access log), so span
# overhead is inside the gate, not beside it. The server-reported
# decide-stage p50 from /v1/status is cross-checked: it must be present
# and under the budget too. The run's summary row is exported to
# bench_results/ci_latency.csv for the CI artifact.
#
# Expects release binaries already built; override with FLQD= / LOADGEN=.
set -euo pipefail

FLQD=${FLQD:-./target/release/flqd}
LOADGEN=${LOADGEN:-./target/release/loadgen}
BUDGET_US=${BUDGET_US:-500}
CSV=${CSV:-bench_results/ci_latency.csv}

[ -x "$FLQD" ] || { echo "missing $FLQD (build flqd first)" >&2; exit 2; }
[ -x "$LOADGEN" ] || { echo "missing $LOADGEN (build loadgen first)" >&2; exit 2; }

tmp=$(mktemp -d)
FLQD_PID=
cleanup() {
    [ -n "$FLQD_PID" ] && kill "$FLQD_PID" 2>/dev/null
    rm -rf "$tmp"
    return 0
}
trap cleanup EXIT

fifo="$tmp/ready.fifo"
mkfifo "$fifo"
# Access log on (sampled 1/8) so the gate measures the fully
# instrumented request path, logger thread included.
"$FLQD" --addr 127.0.0.1:0 --workers 2 --ready-fd 3 \
    --access-log "$tmp/access.jsonl" --log-sample 1/8 3>"$fifo" &
FLQD_PID=$!
ADDR=$(head -n1 "$fifo")
[ -n "$ADDR" ] || { echo "no readiness line from flqd" >&2; exit 1; }
echo "flqd up at $ADDR"

mkdir -p "$(dirname "$CSV")"
rm -f "$CSV"

# Warmup fills the decision and snapshot caches over the same pair pool
# the measured phase reuses, so the gate sees warm decisions plus one
# round trip — the steady-state serving cost, not chase cost.
out=$("$LOADGEN" --addr "$ADDR" --requests 400 --warmup 100 --concurrency 1 \
    --keep-alive --csv "$CSV")
echo "$out"

p50=$(sed -n 's/^latency_us .*p50=\([0-9.]*\).*/\1/p' <<<"$out")
[ -n "$p50" ] || { echo "could not parse warm p50 from loadgen output" >&2; exit 1; }

# Cross-check the server's own view: the decide-stage p50 from
# /v1/status must exist (spans are live) and sit under the same budget.
host=${ADDR%:*}
port=${ADDR##*:}
exec 3<>"/dev/tcp/$host/$port"
printf 'GET /v1/status HTTP/1.1\r\nhost: gate\r\nconnection: close\r\n\r\n' >&3
status_body=$(timeout 10 cat <&3)
exec 3<&- 3>&-
decide_p50=$(sed -n 's/.*"decide":{"count":[0-9]*,"p50_us":\([0-9]*\).*/\1/p' <<<"$status_body")
[ -n "$decide_p50" ] || { echo "could not parse decide-stage p50 from /v1/status" >&2; exit 1; }
echo "server-reported decide-stage p50: ${decide_p50}us"

kill -TERM "$FLQD_PID"
wait "$FLQD_PID"
FLQD_PID=

echo "warm keep-alive p50: ${p50}us (budget ${BUDGET_US}us)"
awk -v p50="$p50" -v budget="$BUDGET_US" 'BEGIN { exit !(p50 < budget) }' || {
    echo "latency gate FAILED: p50 ${p50}us >= budget ${BUDGET_US}us" >&2
    exit 1
}
awk -v p50="$decide_p50" -v budget="$BUDGET_US" 'BEGIN { exit !(p50 < budget) }' || {
    echo "latency gate FAILED: server decide-stage p50 ${decide_p50}us >= budget ${BUDGET_US}us" >&2
    exit 1
}
echo "latency gate OK"
