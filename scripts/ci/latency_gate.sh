#!/usr/bin/env bash
# Blocking latency gate: the warm keep-alive p50 on a single persistent
# connection must stay under BUDGET_US microseconds. The run's summary
# row is exported to bench_results/ci_latency.csv for the CI artifact.
#
# Expects release binaries already built; override with FLQD= / LOADGEN=.
set -euo pipefail

FLQD=${FLQD:-./target/release/flqd}
LOADGEN=${LOADGEN:-./target/release/loadgen}
BUDGET_US=${BUDGET_US:-500}
CSV=${CSV:-bench_results/ci_latency.csv}

[ -x "$FLQD" ] || { echo "missing $FLQD (build flqd first)" >&2; exit 2; }
[ -x "$LOADGEN" ] || { echo "missing $LOADGEN (build loadgen first)" >&2; exit 2; }

tmp=$(mktemp -d)
FLQD_PID=
cleanup() {
    [ -n "$FLQD_PID" ] && kill "$FLQD_PID" 2>/dev/null
    rm -rf "$tmp"
    return 0
}
trap cleanup EXIT

fifo="$tmp/ready.fifo"
mkfifo "$fifo"
"$FLQD" --addr 127.0.0.1:0 --workers 2 --ready-fd 3 3>"$fifo" &
FLQD_PID=$!
ADDR=$(head -n1 "$fifo")
[ -n "$ADDR" ] || { echo "no readiness line from flqd" >&2; exit 1; }
echo "flqd up at $ADDR"

mkdir -p "$(dirname "$CSV")"
rm -f "$CSV"

# Warmup fills the decision and snapshot caches over the same pair pool
# the measured phase reuses, so the gate sees warm decisions plus one
# round trip — the steady-state serving cost, not chase cost.
out=$("$LOADGEN" --addr "$ADDR" --requests 400 --warmup 100 --concurrency 1 \
    --keep-alive --csv "$CSV")
echo "$out"

p50=$(sed -n 's/^latency_us .*p50=\([0-9.]*\).*/\1/p' <<<"$out")
[ -n "$p50" ] || { echo "could not parse warm p50 from loadgen output" >&2; exit 1; }

kill -TERM "$FLQD_PID"
wait "$FLQD_PID"
FLQD_PID=

echo "warm keep-alive p50: ${p50}us (budget ${BUDGET_US}us)"
awk -v p50="$p50" -v budget="$BUDGET_US" 'BEGIN { exit !(p50 < budget) }' || {
    echo "latency gate FAILED: p50 ${p50}us >= budget ${BUDGET_US}us" >&2
    exit 1
}
echo "latency gate OK"
