#!/usr/bin/env bash
# CI smoke for the observability layer: a live flqd with --access-log
# must emit one parseable JSONL line per finished request across every
# client mode, its /metrics must pass promcheck's structural validation
# (Prometheus 0.0.4: headers, sampleless families, bucket monotonicity,
# +Inf/_count agreement), loadgen --server-stats must report non-zero
# server-side stage percentiles, and `flq status` must render the
# /v1/status rollup. Sampling and the slow-only filter are exercised on
# a second server instance.
#
# Expects release binaries already built; override with FLQD= /
# LOADGEN= / PROMCHECK= / FLQ=.
set -euo pipefail

FLQD=${FLQD:-./target/release/flqd}
LOADGEN=${LOADGEN:-./target/release/loadgen}
PROMCHECK=${PROMCHECK:-./target/release/promcheck}
FLQ=${FLQ:-./target/release/flq}

for bin in "$FLQD" "$LOADGEN" "$PROMCHECK" "$FLQ"; do
    [ -x "$bin" ] || { echo "missing $bin (build it first)" >&2; exit 2; }
done

tmp=$(mktemp -d)
FLQD_PID=
cleanup() {
    [ -n "$FLQD_PID" ] && kill "$FLQD_PID" 2>/dev/null
    rm -rf "$tmp"
    return 0
}
trap cleanup EXIT

start_flqd() {
    local fifo="$tmp/ready.$$.$RANDOM.fifo"
    mkfifo "$fifo"
    "$FLQD" --addr 127.0.0.1:0 --ready-fd 3 "$@" 3>"$fifo" &
    FLQD_PID=$!
    ADDR=$(head -n1 "$fifo")
    [ -n "$ADDR" ] || { echo "no readiness line from flqd" >&2; exit 1; }
    echo "flqd up at $ADDR (pid $FLQD_PID)"
}

stop_flqd() {
    kill -TERM "$FLQD_PID"
    wait "$FLQD_PID"
    FLQD_PID=
}

LOG="$tmp/access.jsonl"

echo "== every client mode under --access-log =="
start_flqd --workers 2 --access-log "$LOG"
# The first run is cold, so its server-stats delta must show real
# decide-stage samples; the later warm runs hit the decision cache and
# record only the cheap stages.
stats=$("$LOADGEN" --addr "$ADDR" --requests 50 --concurrency 2 --verify --server-stats)
echo "$stats"
grep -q '^server_stage decide count=[1-9]' <<<"$stats" \
    || { echo "loadgen --server-stats reported no decide-stage samples" >&2; exit 1; }
"$LOADGEN" --addr "$ADDR" --requests 20 --batch 4 --verify
"$LOADGEN" --addr "$ADDR" --requests 50 --concurrency 2 --keep-alive --verify
"$LOADGEN" --addr "$ADDR" --requests 48 --concurrency 2 --keep-alive --pipeline 8

echo "== promcheck over the live /metrics =="
"$PROMCHECK" "$ADDR"

echo "== flq status against the running server =="
status_out=$("$FLQ" status "$ADDR")
echo "$status_out"
grep -q "flqd at" <<<"$status_out" || { echo "flq status printed no header" >&2; exit 1; }
grep -q "decide" <<<"$status_out" || { echo "flq status printed no decide stage" >&2; exit 1; }

echo "== access log is complete and parseable =="
stop_flqd
# 168 decision requests; /metrics and /v1/status requests are logged
# too, so the line count is a floor, not an exact match.
lines=$(wc -l <"$LOG")
echo "access log: $lines lines"
[ "$lines" -ge 168 ] || { echo "expected >= 168 access-log lines, got $lines" >&2; exit 1; }
contains_lines=$(grep -c '"endpoint":"contains"' "$LOG")
batch_lines=$(grep -c '"endpoint":"batch"' "$LOG")
echo "by endpoint: $contains_lines contains, $batch_lines batch"
[ "$contains_lines" -ge 148 ] || { echo "missing contains lines" >&2; exit 1; }
[ "$batch_lines" -ge 20 ] || { echo "missing batch lines" >&2; exit 1; }
# Every line is a flat JSON object carrying the span fields; decision
# requests additionally carry the decide-stage timing.
bad=$(grep -cv '^{"id":[0-9]*,"endpoint":"[a-z]*","status":[0-9]*.*"stages":{.*}}$' "$LOG" || true)
[ "$bad" -eq 0 ] || { echo "$bad access-log line(s) malformed" >&2; exit 1; }
grep -q '"decide_us":' "$LOG" || { echo "no line carries decide-stage timing" >&2; exit 1; }

echo "== sampling and the slow-only filter =="
LOG2="$tmp/sampled.jsonl"
start_flqd --workers 2 --access-log "$LOG2" --log-sample 1/4 --slow-us 10000000
"$LOADGEN" --addr "$ADDR" --requests 40 --keep-alive >/dev/null
stop_flqd
sampled=$(wc -l <"$LOG2")
echo "sampled log: $sampled lines for 40 fast requests at 1/4"
# 40 decision requests at 1/4 -> ~10 lines; the slow threshold (10s)
# admits nothing extra. Allow slack for the loadgen's own probes.
[ "$sampled" -ge 5 ] || { echo "sampling logged too few lines" >&2; exit 1; }
[ "$sampled" -le 20 ] || { echo "sampling logged too many lines ($sampled/40)" >&2; exit 1; }

echo "obs smoke OK"
