/root/repo/target/release/examples/par_probe-6e03d8182badbb4d.d: crates/bench/examples/par_probe.rs

/root/repo/target/release/examples/par_probe-6e03d8182badbb4d: crates/bench/examples/par_probe.rs

crates/bench/examples/par_probe.rs:
