/root/repo/target/release/deps/flogic_bench-832993b7fbd5bdd8.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libflogic_bench-832993b7fbd5bdd8.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libflogic_bench-832993b7fbd5bdd8.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
