/root/repo/target/release/deps/harness-3e77a83daad99c13.d: crates/bench/src/bin/harness.rs

/root/repo/target/release/deps/harness-3e77a83daad99c13: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
