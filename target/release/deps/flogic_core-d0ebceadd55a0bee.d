/root/repo/target/release/deps/flogic_core-d0ebceadd55a0bee.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/classic.rs crates/core/src/decide.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/naive.rs crates/core/src/rewrite.rs crates/core/src/union.rs

/root/repo/target/release/deps/libflogic_core-d0ebceadd55a0bee.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/classic.rs crates/core/src/decide.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/naive.rs crates/core/src/rewrite.rs crates/core/src/union.rs

/root/repo/target/release/deps/libflogic_core-d0ebceadd55a0bee.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/classic.rs crates/core/src/decide.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/naive.rs crates/core/src/rewrite.rs crates/core/src/union.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/classic.rs:
crates/core/src/decide.rs:
crates/core/src/error.rs:
crates/core/src/explain.rs:
crates/core/src/naive.rs:
crates/core/src/rewrite.rs:
crates/core/src/union.rs:
