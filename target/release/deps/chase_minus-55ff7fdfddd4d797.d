/root/repo/target/release/deps/chase_minus-55ff7fdfddd4d797.d: crates/bench/benches/chase_minus.rs

/root/repo/target/release/deps/chase_minus-55ff7fdfddd4d797: crates/bench/benches/chase_minus.rs

crates/bench/benches/chase_minus.rs:
