/root/repo/target/release/deps/flq-a468a3d7486c93e9.d: src/bin/flq.rs

/root/repo/target/release/deps/flq-a468a3d7486c93e9: src/bin/flq.rs

src/bin/flq.rs:
