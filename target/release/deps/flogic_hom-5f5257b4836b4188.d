/root/repo/target/release/deps/flogic_hom-5f5257b4836b4188.d: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

/root/repo/target/release/deps/libflogic_hom-5f5257b4836b4188.rlib: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

/root/repo/target/release/deps/libflogic_hom-5f5257b4836b4188.rmeta: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

crates/hom/src/lib.rs:
crates/hom/src/core_of.rs:
crates/hom/src/search.rs:
crates/hom/src/target.rs:
