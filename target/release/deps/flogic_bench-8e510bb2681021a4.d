/root/repo/target/release/deps/flogic_bench-8e510bb2681021a4.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/release/deps/flogic_bench-8e510bb2681021a4: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
