/root/repo/target/release/deps/harness-d64c07aa387a1860.d: crates/bench/src/bin/harness.rs

/root/repo/target/release/deps/harness-d64c07aa387a1860: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
