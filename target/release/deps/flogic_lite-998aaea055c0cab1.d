/root/repo/target/release/deps/flogic_lite-998aaea055c0cab1.d: src/lib.rs

/root/repo/target/release/deps/libflogic_lite-998aaea055c0cab1.rlib: src/lib.rs

/root/repo/target/release/deps/libflogic_lite-998aaea055c0cab1.rmeta: src/lib.rs

src/lib.rs:
