/root/repo/target/release/deps/flogic_bench-1b5ba0c619701327.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libflogic_bench-1b5ba0c619701327.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libflogic_bench-1b5ba0c619701327.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
