/root/repo/target/release/deps/classic_vs_sigma-1e52d6114edbaf7b.d: crates/bench/benches/classic_vs_sigma.rs

/root/repo/target/release/deps/classic_vs_sigma-1e52d6114edbaf7b: crates/bench/benches/classic_vs_sigma.rs

crates/bench/benches/classic_vs_sigma.rs:
