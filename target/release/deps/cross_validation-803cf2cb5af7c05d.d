/root/repo/target/release/deps/cross_validation-803cf2cb5af7c05d.d: crates/bench/benches/cross_validation.rs

/root/repo/target/release/deps/cross_validation-803cf2cb5af7c05d: crates/bench/benches/cross_validation.rs

crates/bench/benches/cross_validation.rs:
