/root/repo/target/release/deps/scaling-ab6af288896f9655.d: crates/bench/benches/scaling.rs

/root/repo/target/release/deps/scaling-ab6af288896f9655: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
