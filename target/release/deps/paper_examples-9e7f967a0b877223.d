/root/repo/target/release/deps/paper_examples-9e7f967a0b877223.d: crates/bench/benches/paper_examples.rs

/root/repo/target/release/deps/paper_examples-9e7f967a0b877223: crates/bench/benches/paper_examples.rs

crates/bench/benches/paper_examples.rs:
