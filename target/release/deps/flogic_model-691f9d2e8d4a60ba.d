/root/repo/target/release/deps/flogic_model-691f9d2e8d4a60ba.d: crates/model/src/lib.rs crates/model/src/atom.rs crates/model/src/database.rs crates/model/src/error.rs crates/model/src/predicate.rs crates/model/src/query.rs crates/model/src/sigma.rs

/root/repo/target/release/deps/libflogic_model-691f9d2e8d4a60ba.rlib: crates/model/src/lib.rs crates/model/src/atom.rs crates/model/src/database.rs crates/model/src/error.rs crates/model/src/predicate.rs crates/model/src/query.rs crates/model/src/sigma.rs

/root/repo/target/release/deps/libflogic_model-691f9d2e8d4a60ba.rmeta: crates/model/src/lib.rs crates/model/src/atom.rs crates/model/src/database.rs crates/model/src/error.rs crates/model/src/predicate.rs crates/model/src/query.rs crates/model/src/sigma.rs

crates/model/src/lib.rs:
crates/model/src/atom.rs:
crates/model/src/database.rs:
crates/model/src/error.rs:
crates/model/src/predicate.rs:
crates/model/src/query.rs:
crates/model/src/sigma.rs:
