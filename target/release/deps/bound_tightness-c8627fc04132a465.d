/root/repo/target/release/deps/bound_tightness-c8627fc04132a465.d: crates/bench/benches/bound_tightness.rs

/root/repo/target/release/deps/bound_tightness-c8627fc04132a465: crates/bench/benches/bound_tightness.rs

crates/bench/benches/bound_tightness.rs:
