/root/repo/target/release/deps/flogic_syntax-c28b3abe00fbebc1.d: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/error.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/pretty.rs crates/syntax/src/translate.rs

/root/repo/target/release/deps/libflogic_syntax-c28b3abe00fbebc1.rlib: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/error.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/pretty.rs crates/syntax/src/translate.rs

/root/repo/target/release/deps/libflogic_syntax-c28b3abe00fbebc1.rmeta: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/error.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/pretty.rs crates/syntax/src/translate.rs

crates/syntax/src/lib.rs:
crates/syntax/src/ast.rs:
crates/syntax/src/error.rs:
crates/syntax/src/lexer.rs:
crates/syntax/src/parser.rs:
crates/syntax/src/pretty.rs:
crates/syntax/src/translate.rs:
