/root/repo/target/release/deps/harness-8da40901fc6f8b77.d: crates/bench/src/bin/harness.rs

/root/repo/target/release/deps/harness-8da40901fc6f8b77: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
