/root/repo/target/release/deps/flogic_term-d591041607f4e0bb.d: crates/term/src/lib.rs crates/term/src/metrics.rs crates/term/src/null.rs crates/term/src/rng.rs crates/term/src/subst.rs crates/term/src/symbol.rs crates/term/src/term.rs

/root/repo/target/release/deps/libflogic_term-d591041607f4e0bb.rlib: crates/term/src/lib.rs crates/term/src/metrics.rs crates/term/src/null.rs crates/term/src/rng.rs crates/term/src/subst.rs crates/term/src/symbol.rs crates/term/src/term.rs

/root/repo/target/release/deps/libflogic_term-d591041607f4e0bb.rmeta: crates/term/src/lib.rs crates/term/src/metrics.rs crates/term/src/null.rs crates/term/src/rng.rs crates/term/src/subst.rs crates/term/src/symbol.rs crates/term/src/term.rs

crates/term/src/lib.rs:
crates/term/src/metrics.rs:
crates/term/src/null.rs:
crates/term/src/rng.rs:
crates/term/src/subst.rs:
crates/term/src/symbol.rs:
crates/term/src/term.rs:
