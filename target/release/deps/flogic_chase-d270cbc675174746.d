/root/repo/target/release/deps/flogic_chase-d270cbc675174746.d: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs

/root/repo/target/release/deps/libflogic_chase-d270cbc675174746.rlib: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs

/root/repo/target/release/deps/libflogic_chase-d270cbc675174746.rmeta: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs

crates/chase/src/lib.rs:
crates/chase/src/cycles.rs:
crates/chase/src/dot.rs:
crates/chase/src/engine.rs:
crates/chase/src/graph.rs:
crates/chase/src/paths.rs:
