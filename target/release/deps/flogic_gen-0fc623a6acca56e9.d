/root/repo/target/release/deps/flogic_gen-0fc623a6acca56e9.d: crates/gen/src/lib.rs

/root/repo/target/release/deps/libflogic_gen-0fc623a6acca56e9.rlib: crates/gen/src/lib.rs

/root/repo/target/release/deps/libflogic_gen-0fc623a6acca56e9.rmeta: crates/gen/src/lib.rs

crates/gen/src/lib.rs:
