/root/repo/target/release/deps/flogic_datalog-5a42575121609e4b.d: crates/datalog/src/lib.rs crates/datalog/src/closure.rs crates/datalog/src/engine.rs crates/datalog/src/error.rs crates/datalog/src/eval.rs crates/datalog/src/store.rs crates/datalog/src/uf.rs

/root/repo/target/release/deps/libflogic_datalog-5a42575121609e4b.rlib: crates/datalog/src/lib.rs crates/datalog/src/closure.rs crates/datalog/src/engine.rs crates/datalog/src/error.rs crates/datalog/src/eval.rs crates/datalog/src/store.rs crates/datalog/src/uf.rs

/root/repo/target/release/deps/libflogic_datalog-5a42575121609e4b.rmeta: crates/datalog/src/lib.rs crates/datalog/src/closure.rs crates/datalog/src/engine.rs crates/datalog/src/error.rs crates/datalog/src/eval.rs crates/datalog/src/store.rs crates/datalog/src/uf.rs

crates/datalog/src/lib.rs:
crates/datalog/src/closure.rs:
crates/datalog/src/engine.rs:
crates/datalog/src/error.rs:
crates/datalog/src/eval.rs:
crates/datalog/src/store.rs:
crates/datalog/src/uf.rs:
