/root/repo/target/debug/examples/query_optimizer-6175a5af939731f9.d: examples/query_optimizer.rs

/root/repo/target/debug/examples/query_optimizer-6175a5af939731f9: examples/query_optimizer.rs

examples/query_optimizer.rs:
