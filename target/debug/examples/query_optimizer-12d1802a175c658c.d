/root/repo/target/debug/examples/query_optimizer-12d1802a175c658c.d: examples/query_optimizer.rs Cargo.toml

/root/repo/target/debug/examples/libquery_optimizer-12d1802a175c658c.rmeta: examples/query_optimizer.rs Cargo.toml

examples/query_optimizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
