/root/repo/target/debug/examples/service_discovery-348f6a2b13107bf9.d: examples/service_discovery.rs

/root/repo/target/debug/examples/service_discovery-348f6a2b13107bf9: examples/service_discovery.rs

examples/service_discovery.rs:
