/root/repo/target/debug/examples/quickstart-7904284ebeb3df15.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7904284ebeb3df15: examples/quickstart.rs

examples/quickstart.rs:
