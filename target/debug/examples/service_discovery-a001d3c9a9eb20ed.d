/root/repo/target/debug/examples/service_discovery-a001d3c9a9eb20ed.d: examples/service_discovery.rs

/root/repo/target/debug/examples/service_discovery-a001d3c9a9eb20ed: examples/service_discovery.rs

examples/service_discovery.rs:
