/root/repo/target/debug/examples/schema_explorer-95fab3299dbee78b.d: examples/schema_explorer.rs

/root/repo/target/debug/examples/schema_explorer-95fab3299dbee78b: examples/schema_explorer.rs

examples/schema_explorer.rs:
