/root/repo/target/debug/examples/quickstart-caf9d905f57f8eed.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-caf9d905f57f8eed.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
