/root/repo/target/debug/examples/quickstart-2bada71af61a9b78.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2bada71af61a9b78: examples/quickstart.rs

examples/quickstart.rs:
