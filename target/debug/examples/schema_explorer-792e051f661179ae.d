/root/repo/target/debug/examples/schema_explorer-792e051f661179ae.d: examples/schema_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libschema_explorer-792e051f661179ae.rmeta: examples/schema_explorer.rs Cargo.toml

examples/schema_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
