/root/repo/target/debug/examples/schema_explorer-cd50c5aba2d2e6d4.d: examples/schema_explorer.rs

/root/repo/target/debug/examples/schema_explorer-cd50c5aba2d2e6d4: examples/schema_explorer.rs

examples/schema_explorer.rs:
