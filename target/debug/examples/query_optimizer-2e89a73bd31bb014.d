/root/repo/target/debug/examples/query_optimizer-2e89a73bd31bb014.d: examples/query_optimizer.rs

/root/repo/target/debug/examples/query_optimizer-2e89a73bd31bb014: examples/query_optimizer.rs

examples/query_optimizer.rs:
