/root/repo/target/debug/deps/merging-baedb967a593a265.d: crates/chase/tests/merging.rs

/root/repo/target/debug/deps/merging-baedb967a593a265: crates/chase/tests/merging.rs

crates/chase/tests/merging.rs:
