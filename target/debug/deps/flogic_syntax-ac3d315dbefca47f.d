/root/repo/target/debug/deps/flogic_syntax-ac3d315dbefca47f.d: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/error.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/pretty.rs crates/syntax/src/translate.rs

/root/repo/target/debug/deps/flogic_syntax-ac3d315dbefca47f: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/error.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/pretty.rs crates/syntax/src/translate.rs

crates/syntax/src/lib.rs:
crates/syntax/src/ast.rs:
crates/syntax/src/error.rs:
crates/syntax/src/lexer.rs:
crates/syntax/src/parser.rs:
crates/syntax/src/pretty.rs:
crates/syntax/src/translate.rs:
