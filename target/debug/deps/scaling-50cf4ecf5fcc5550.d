/root/repo/target/debug/deps/scaling-50cf4ecf5fcc5550.d: crates/bench/benches/scaling.rs

/root/repo/target/debug/deps/scaling-50cf4ecf5fcc5550: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
