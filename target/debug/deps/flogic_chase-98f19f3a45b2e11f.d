/root/repo/target/debug/deps/flogic_chase-98f19f3a45b2e11f.d: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_chase-98f19f3a45b2e11f.rmeta: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs Cargo.toml

crates/chase/src/lib.rs:
crates/chase/src/cycles.rs:
crates/chase/src/dot.rs:
crates/chase/src/engine.rs:
crates/chase/src/graph.rs:
crates/chase/src/paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
