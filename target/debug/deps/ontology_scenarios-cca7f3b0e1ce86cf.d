/root/repo/target/debug/deps/ontology_scenarios-cca7f3b0e1ce86cf.d: tests/ontology_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libontology_scenarios-cca7f3b0e1ce86cf.rmeta: tests/ontology_scenarios.rs Cargo.toml

tests/ontology_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
