/root/repo/target/debug/deps/flq-e422f84a3ab93ee5.d: src/bin/flq.rs

/root/repo/target/debug/deps/flq-e422f84a3ab93ee5: src/bin/flq.rs

src/bin/flq.rs:
