/root/repo/target/debug/deps/properties-d3823ab6eb57d47e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d3823ab6eb57d47e: tests/properties.rs

tests/properties.rs:
