/root/repo/target/debug/deps/chase_minus-e79a1bc5ccefc102.d: crates/bench/benches/chase_minus.rs

/root/repo/target/debug/deps/chase_minus-e79a1bc5ccefc102: crates/bench/benches/chase_minus.rs

crates/bench/benches/chase_minus.rs:
