/root/repo/target/debug/deps/flogic_model-71c8d3eca577198d.d: crates/model/src/lib.rs crates/model/src/atom.rs crates/model/src/database.rs crates/model/src/error.rs crates/model/src/predicate.rs crates/model/src/query.rs crates/model/src/sigma.rs

/root/repo/target/debug/deps/libflogic_model-71c8d3eca577198d.rlib: crates/model/src/lib.rs crates/model/src/atom.rs crates/model/src/database.rs crates/model/src/error.rs crates/model/src/predicate.rs crates/model/src/query.rs crates/model/src/sigma.rs

/root/repo/target/debug/deps/libflogic_model-71c8d3eca577198d.rmeta: crates/model/src/lib.rs crates/model/src/atom.rs crates/model/src/database.rs crates/model/src/error.rs crates/model/src/predicate.rs crates/model/src/query.rs crates/model/src/sigma.rs

crates/model/src/lib.rs:
crates/model/src/atom.rs:
crates/model/src/database.rs:
crates/model/src/error.rs:
crates/model/src/predicate.rs:
crates/model/src/query.rs:
crates/model/src/sigma.rs:
