/root/repo/target/debug/deps/parallel_determinism-d74938712eb2901b.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-d74938712eb2901b: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
