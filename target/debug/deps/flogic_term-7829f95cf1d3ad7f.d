/root/repo/target/debug/deps/flogic_term-7829f95cf1d3ad7f.d: crates/term/src/lib.rs crates/term/src/metrics.rs crates/term/src/null.rs crates/term/src/rng.rs crates/term/src/subst.rs crates/term/src/symbol.rs crates/term/src/term.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_term-7829f95cf1d3ad7f.rmeta: crates/term/src/lib.rs crates/term/src/metrics.rs crates/term/src/null.rs crates/term/src/rng.rs crates/term/src/subst.rs crates/term/src/symbol.rs crates/term/src/term.rs Cargo.toml

crates/term/src/lib.rs:
crates/term/src/metrics.rs:
crates/term/src/null.rs:
crates/term/src/rng.rs:
crates/term/src/subst.rs:
crates/term/src/symbol.rs:
crates/term/src/term.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
