/root/repo/target/debug/deps/flq-17804d18a56430bc.d: src/bin/flq.rs Cargo.toml

/root/repo/target/debug/deps/libflq-17804d18a56430bc.rmeta: src/bin/flq.rs Cargo.toml

src/bin/flq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
