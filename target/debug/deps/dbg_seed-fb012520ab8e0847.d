/root/repo/target/debug/deps/dbg_seed-fb012520ab8e0847.d: crates/hom/tests/dbg_seed.rs

/root/repo/target/debug/deps/dbg_seed-fb012520ab8e0847: crates/hom/tests/dbg_seed.rs

crates/hom/tests/dbg_seed.rs:
