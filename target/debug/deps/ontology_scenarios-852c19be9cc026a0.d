/root/repo/target/debug/deps/ontology_scenarios-852c19be9cc026a0.d: tests/ontology_scenarios.rs

/root/repo/target/debug/deps/ontology_scenarios-852c19be9cc026a0: tests/ontology_scenarios.rs

tests/ontology_scenarios.rs:
