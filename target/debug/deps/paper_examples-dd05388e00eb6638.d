/root/repo/target/debug/deps/paper_examples-dd05388e00eb6638.d: crates/bench/benches/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-dd05388e00eb6638.rmeta: crates/bench/benches/paper_examples.rs Cargo.toml

crates/bench/benches/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
