/root/repo/target/debug/deps/flogic_datalog-a818d7a0ebf7f3a7.d: crates/datalog/src/lib.rs crates/datalog/src/closure.rs crates/datalog/src/engine.rs crates/datalog/src/error.rs crates/datalog/src/eval.rs crates/datalog/src/store.rs crates/datalog/src/uf.rs

/root/repo/target/debug/deps/libflogic_datalog-a818d7a0ebf7f3a7.rlib: crates/datalog/src/lib.rs crates/datalog/src/closure.rs crates/datalog/src/engine.rs crates/datalog/src/error.rs crates/datalog/src/eval.rs crates/datalog/src/store.rs crates/datalog/src/uf.rs

/root/repo/target/debug/deps/libflogic_datalog-a818d7a0ebf7f3a7.rmeta: crates/datalog/src/lib.rs crates/datalog/src/closure.rs crates/datalog/src/engine.rs crates/datalog/src/error.rs crates/datalog/src/eval.rs crates/datalog/src/store.rs crates/datalog/src/uf.rs

crates/datalog/src/lib.rs:
crates/datalog/src/closure.rs:
crates/datalog/src/engine.rs:
crates/datalog/src/error.rs:
crates/datalog/src/eval.rs:
crates/datalog/src/store.rs:
crates/datalog/src/uf.rs:
