/root/repo/target/debug/deps/flogic_core-7b5afd60980cfb92.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/classic.rs crates/core/src/decide.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/naive.rs crates/core/src/rewrite.rs crates/core/src/union.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_core-7b5afd60980cfb92.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/classic.rs crates/core/src/decide.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/naive.rs crates/core/src/rewrite.rs crates/core/src/union.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/classic.rs:
crates/core/src/decide.rs:
crates/core/src/error.rs:
crates/core/src/explain.rs:
crates/core/src/naive.rs:
crates/core/src/rewrite.rs:
crates/core/src/union.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
