/root/repo/target/debug/deps/harness-0943a640dac38258.d: crates/bench/src/bin/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-0943a640dac38258.rmeta: crates/bench/src/bin/harness.rs Cargo.toml

crates/bench/src/bin/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
