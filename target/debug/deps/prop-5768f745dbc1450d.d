/root/repo/target/debug/deps/prop-5768f745dbc1450d.d: crates/hom/tests/prop.rs

/root/repo/target/debug/deps/prop-5768f745dbc1450d: crates/hom/tests/prop.rs

crates/hom/tests/prop.rs:
