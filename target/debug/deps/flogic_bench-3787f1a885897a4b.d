/root/repo/target/debug/deps/flogic_bench-3787f1a885897a4b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/flogic_bench-3787f1a885897a4b: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
