/root/repo/target/debug/deps/bound_tightness-97e36f5f657f3541.d: crates/bench/benches/bound_tightness.rs Cargo.toml

/root/repo/target/debug/deps/libbound_tightness-97e36f5f657f3541.rmeta: crates/bench/benches/bound_tightness.rs Cargo.toml

crates/bench/benches/bound_tightness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
