/root/repo/target/debug/deps/ontology_scenarios-3782848f0d705691.d: tests/ontology_scenarios.rs

/root/repo/target/debug/deps/ontology_scenarios-3782848f0d705691: tests/ontology_scenarios.rs

tests/ontology_scenarios.rs:
