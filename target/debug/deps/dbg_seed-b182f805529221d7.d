/root/repo/target/debug/deps/dbg_seed-b182f805529221d7.d: crates/hom/tests/dbg_seed.rs

/root/repo/target/debug/deps/dbg_seed-b182f805529221d7: crates/hom/tests/dbg_seed.rs

crates/hom/tests/dbg_seed.rs:
