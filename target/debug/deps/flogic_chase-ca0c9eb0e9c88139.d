/root/repo/target/debug/deps/flogic_chase-ca0c9eb0e9c88139.d: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs

/root/repo/target/debug/deps/flogic_chase-ca0c9eb0e9c88139: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs

crates/chase/src/lib.rs:
crates/chase/src/cycles.rs:
crates/chase/src/dot.rs:
crates/chase/src/engine.rs:
crates/chase/src/graph.rs:
crates/chase/src/paths.rs:
