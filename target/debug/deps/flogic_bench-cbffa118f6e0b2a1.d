/root/repo/target/debug/deps/flogic_bench-cbffa118f6e0b2a1.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libflogic_bench-cbffa118f6e0b2a1.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libflogic_bench-cbffa118f6e0b2a1.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
