/root/repo/target/debug/deps/flq-ab35c8dba9445016.d: src/bin/flq.rs

/root/repo/target/debug/deps/flq-ab35c8dba9445016: src/bin/flq.rs

src/bin/flq.rs:
