/root/repo/target/debug/deps/flogic_gen-88fc621862cc8658.d: crates/gen/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_gen-88fc621862cc8658.rmeta: crates/gen/src/lib.rs Cargo.toml

crates/gen/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
