/root/repo/target/debug/deps/bound_tightness-453050a553ddd999.d: crates/bench/benches/bound_tightness.rs

/root/repo/target/debug/deps/bound_tightness-453050a553ddd999: crates/bench/benches/bound_tightness.rs

crates/bench/benches/bound_tightness.rs:
