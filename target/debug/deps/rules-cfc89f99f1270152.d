/root/repo/target/debug/deps/rules-cfc89f99f1270152.d: crates/chase/tests/rules.rs

/root/repo/target/debug/deps/rules-cfc89f99f1270152: crates/chase/tests/rules.rs

crates/chase/tests/rules.rs:
