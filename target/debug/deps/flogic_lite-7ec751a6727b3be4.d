/root/repo/target/debug/deps/flogic_lite-7ec751a6727b3be4.d: src/lib.rs

/root/repo/target/debug/deps/flogic_lite-7ec751a6727b3be4: src/lib.rs

src/lib.rs:
