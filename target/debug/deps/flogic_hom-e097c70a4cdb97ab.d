/root/repo/target/debug/deps/flogic_hom-e097c70a4cdb97ab.d: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

/root/repo/target/debug/deps/libflogic_hom-e097c70a4cdb97ab.rlib: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

/root/repo/target/debug/deps/libflogic_hom-e097c70a4cdb97ab.rmeta: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

crates/hom/src/lib.rs:
crates/hom/src/core_of.rs:
crates/hom/src/search.rs:
crates/hom/src/target.rs:
