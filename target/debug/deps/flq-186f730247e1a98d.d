/root/repo/target/debug/deps/flq-186f730247e1a98d.d: src/bin/flq.rs

/root/repo/target/debug/deps/flq-186f730247e1a98d: src/bin/flq.rs

src/bin/flq.rs:
