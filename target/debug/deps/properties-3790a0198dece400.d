/root/repo/target/debug/deps/properties-3790a0198dece400.d: tests/properties.rs

/root/repo/target/debug/deps/properties-3790a0198dece400: tests/properties.rs

tests/properties.rs:
