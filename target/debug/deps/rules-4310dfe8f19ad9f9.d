/root/repo/target/debug/deps/rules-4310dfe8f19ad9f9.d: crates/chase/tests/rules.rs Cargo.toml

/root/repo/target/debug/deps/librules-4310dfe8f19ad9f9.rmeta: crates/chase/tests/rules.rs Cargo.toml

crates/chase/tests/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
