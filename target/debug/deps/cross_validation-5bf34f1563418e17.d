/root/repo/target/debug/deps/cross_validation-5bf34f1563418e17.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-5bf34f1563418e17: tests/cross_validation.rs

tests/cross_validation.rs:
