/root/repo/target/debug/deps/cross_validation-abb2082b86d6b809.d: crates/bench/benches/cross_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcross_validation-abb2082b86d6b809.rmeta: crates/bench/benches/cross_validation.rs Cargo.toml

crates/bench/benches/cross_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
