/root/repo/target/debug/deps/cli-a949574d19ee270d.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-a949574d19ee270d.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_flq=placeholder:flq
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
