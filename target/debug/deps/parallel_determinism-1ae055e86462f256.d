/root/repo/target/debug/deps/parallel_determinism-1ae055e86462f256.d: tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-1ae055e86462f256.rmeta: tests/parallel_determinism.rs Cargo.toml

tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
