/root/repo/target/debug/deps/flogic_lite-29e6b82bbb56387d.d: src/lib.rs

/root/repo/target/debug/deps/libflogic_lite-29e6b82bbb56387d.rlib: src/lib.rs

/root/repo/target/debug/deps/libflogic_lite-29e6b82bbb56387d.rmeta: src/lib.rs

src/lib.rs:
