/root/repo/target/debug/deps/flogic_hom-b40bb291f1a3d138.d: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

/root/repo/target/debug/deps/flogic_hom-b40bb291f1a3d138: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

crates/hom/src/lib.rs:
crates/hom/src/core_of.rs:
crates/hom/src/search.rs:
crates/hom/src/target.rs:
