/root/repo/target/debug/deps/harness-b501fda42e9857bc.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/harness-b501fda42e9857bc: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
