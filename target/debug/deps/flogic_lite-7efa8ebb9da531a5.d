/root/repo/target/debug/deps/flogic_lite-7efa8ebb9da531a5.d: src/lib.rs

/root/repo/target/debug/deps/flogic_lite-7efa8ebb9da531a5: src/lib.rs

src/lib.rs:
