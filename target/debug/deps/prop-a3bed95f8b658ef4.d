/root/repo/target/debug/deps/prop-a3bed95f8b658ef4.d: crates/hom/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-a3bed95f8b658ef4.rmeta: crates/hom/tests/prop.rs Cargo.toml

crates/hom/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
