/root/repo/target/debug/deps/flogic_bench-bd82a3075d037d00.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libflogic_bench-bd82a3075d037d00.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libflogic_bench-bd82a3075d037d00.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
