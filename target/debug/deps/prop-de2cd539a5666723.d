/root/repo/target/debug/deps/prop-de2cd539a5666723.d: crates/hom/tests/prop.rs

/root/repo/target/debug/deps/prop-de2cd539a5666723: crates/hom/tests/prop.rs

crates/hom/tests/prop.rs:
