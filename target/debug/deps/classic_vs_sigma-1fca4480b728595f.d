/root/repo/target/debug/deps/classic_vs_sigma-1fca4480b728595f.d: crates/bench/benches/classic_vs_sigma.rs Cargo.toml

/root/repo/target/debug/deps/libclassic_vs_sigma-1fca4480b728595f.rmeta: crates/bench/benches/classic_vs_sigma.rs Cargo.toml

crates/bench/benches/classic_vs_sigma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
