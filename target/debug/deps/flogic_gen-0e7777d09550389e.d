/root/repo/target/debug/deps/flogic_gen-0e7777d09550389e.d: crates/gen/src/lib.rs

/root/repo/target/debug/deps/flogic_gen-0e7777d09550389e: crates/gen/src/lib.rs

crates/gen/src/lib.rs:
