/root/repo/target/debug/deps/flogic_bench-1ac2d896e11b9d5a.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/flogic_bench-1ac2d896e11b9d5a: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
