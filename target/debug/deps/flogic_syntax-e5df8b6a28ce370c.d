/root/repo/target/debug/deps/flogic_syntax-e5df8b6a28ce370c.d: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/error.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/pretty.rs crates/syntax/src/translate.rs

/root/repo/target/debug/deps/libflogic_syntax-e5df8b6a28ce370c.rlib: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/error.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/pretty.rs crates/syntax/src/translate.rs

/root/repo/target/debug/deps/libflogic_syntax-e5df8b6a28ce370c.rmeta: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/error.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/pretty.rs crates/syntax/src/translate.rs

crates/syntax/src/lib.rs:
crates/syntax/src/ast.rs:
crates/syntax/src/error.rs:
crates/syntax/src/lexer.rs:
crates/syntax/src/parser.rs:
crates/syntax/src/pretty.rs:
crates/syntax/src/translate.rs:
