/root/repo/target/debug/deps/cross_validation-4abc4e2f96821ab1.d: crates/bench/benches/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-4abc4e2f96821ab1: crates/bench/benches/cross_validation.rs

crates/bench/benches/cross_validation.rs:
