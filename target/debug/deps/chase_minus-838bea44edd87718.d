/root/repo/target/debug/deps/chase_minus-838bea44edd87718.d: crates/bench/benches/chase_minus.rs Cargo.toml

/root/repo/target/debug/deps/libchase_minus-838bea44edd87718.rmeta: crates/bench/benches/chase_minus.rs Cargo.toml

crates/bench/benches/chase_minus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
