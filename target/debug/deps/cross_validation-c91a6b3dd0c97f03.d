/root/repo/target/debug/deps/cross_validation-c91a6b3dd0c97f03.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-c91a6b3dd0c97f03: tests/cross_validation.rs

tests/cross_validation.rs:
