/root/repo/target/debug/deps/flogic_chase-89d50d3cf3af49a7.d: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_chase-89d50d3cf3af49a7.rmeta: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs Cargo.toml

crates/chase/src/lib.rs:
crates/chase/src/cycles.rs:
crates/chase/src/dot.rs:
crates/chase/src/engine.rs:
crates/chase/src/graph.rs:
crates/chase/src/paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
