/root/repo/target/debug/deps/flogic_core-e52582f64416c2f7.d: crates/core/src/lib.rs crates/core/src/classic.rs crates/core/src/decide.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/naive.rs crates/core/src/rewrite.rs crates/core/src/union.rs

/root/repo/target/debug/deps/flogic_core-e52582f64416c2f7: crates/core/src/lib.rs crates/core/src/classic.rs crates/core/src/decide.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/naive.rs crates/core/src/rewrite.rs crates/core/src/union.rs

crates/core/src/lib.rs:
crates/core/src/classic.rs:
crates/core/src/decide.rs:
crates/core/src/error.rs:
crates/core/src/explain.rs:
crates/core/src/naive.rs:
crates/core/src/rewrite.rs:
crates/core/src/union.rs:
