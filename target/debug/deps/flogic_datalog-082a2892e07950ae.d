/root/repo/target/debug/deps/flogic_datalog-082a2892e07950ae.d: crates/datalog/src/lib.rs crates/datalog/src/closure.rs crates/datalog/src/engine.rs crates/datalog/src/error.rs crates/datalog/src/eval.rs crates/datalog/src/store.rs crates/datalog/src/uf.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_datalog-082a2892e07950ae.rmeta: crates/datalog/src/lib.rs crates/datalog/src/closure.rs crates/datalog/src/engine.rs crates/datalog/src/error.rs crates/datalog/src/eval.rs crates/datalog/src/store.rs crates/datalog/src/uf.rs Cargo.toml

crates/datalog/src/lib.rs:
crates/datalog/src/closure.rs:
crates/datalog/src/engine.rs:
crates/datalog/src/error.rs:
crates/datalog/src/eval.rs:
crates/datalog/src/store.rs:
crates/datalog/src/uf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
