/root/repo/target/debug/deps/flq-ec6435e2136e592c.d: src/bin/flq.rs Cargo.toml

/root/repo/target/debug/deps/libflq-ec6435e2136e592c.rmeta: src/bin/flq.rs Cargo.toml

src/bin/flq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
