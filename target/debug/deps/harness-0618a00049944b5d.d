/root/repo/target/debug/deps/harness-0618a00049944b5d.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/harness-0618a00049944b5d: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
