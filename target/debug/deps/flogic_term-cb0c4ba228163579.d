/root/repo/target/debug/deps/flogic_term-cb0c4ba228163579.d: crates/term/src/lib.rs crates/term/src/metrics.rs crates/term/src/null.rs crates/term/src/rng.rs crates/term/src/subst.rs crates/term/src/symbol.rs crates/term/src/term.rs

/root/repo/target/debug/deps/flogic_term-cb0c4ba228163579: crates/term/src/lib.rs crates/term/src/metrics.rs crates/term/src/null.rs crates/term/src/rng.rs crates/term/src/subst.rs crates/term/src/symbol.rs crates/term/src/term.rs

crates/term/src/lib.rs:
crates/term/src/metrics.rs:
crates/term/src/null.rs:
crates/term/src/rng.rs:
crates/term/src/subst.rs:
crates/term/src/symbol.rs:
crates/term/src/term.rs:
