/root/repo/target/debug/deps/flq-b7fb6e0a8af2430a.d: src/bin/flq.rs

/root/repo/target/debug/deps/flq-b7fb6e0a8af2430a: src/bin/flq.rs

src/bin/flq.rs:
