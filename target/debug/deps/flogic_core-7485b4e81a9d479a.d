/root/repo/target/debug/deps/flogic_core-7485b4e81a9d479a.d: crates/core/src/lib.rs crates/core/src/classic.rs crates/core/src/decide.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/naive.rs crates/core/src/rewrite.rs crates/core/src/union.rs

/root/repo/target/debug/deps/libflogic_core-7485b4e81a9d479a.rlib: crates/core/src/lib.rs crates/core/src/classic.rs crates/core/src/decide.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/naive.rs crates/core/src/rewrite.rs crates/core/src/union.rs

/root/repo/target/debug/deps/libflogic_core-7485b4e81a9d479a.rmeta: crates/core/src/lib.rs crates/core/src/classic.rs crates/core/src/decide.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/naive.rs crates/core/src/rewrite.rs crates/core/src/union.rs

crates/core/src/lib.rs:
crates/core/src/classic.rs:
crates/core/src/decide.rs:
crates/core/src/error.rs:
crates/core/src/explain.rs:
crates/core/src/naive.rs:
crates/core/src/rewrite.rs:
crates/core/src/union.rs:
