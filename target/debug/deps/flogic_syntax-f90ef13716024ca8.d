/root/repo/target/debug/deps/flogic_syntax-f90ef13716024ca8.d: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/error.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/pretty.rs crates/syntax/src/translate.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_syntax-f90ef13716024ca8.rmeta: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/error.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/pretty.rs crates/syntax/src/translate.rs Cargo.toml

crates/syntax/src/lib.rs:
crates/syntax/src/ast.rs:
crates/syntax/src/error.rs:
crates/syntax/src/lexer.rs:
crates/syntax/src/parser.rs:
crates/syntax/src/pretty.rs:
crates/syntax/src/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
