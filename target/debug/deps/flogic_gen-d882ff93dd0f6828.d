/root/repo/target/debug/deps/flogic_gen-d882ff93dd0f6828.d: crates/gen/src/lib.rs

/root/repo/target/debug/deps/flogic_gen-d882ff93dd0f6828: crates/gen/src/lib.rs

crates/gen/src/lib.rs:
