/root/repo/target/debug/deps/flogic_bench-0a2ad718d5180bdb.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libflogic_bench-0a2ad718d5180bdb.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libflogic_bench-0a2ad718d5180bdb.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
