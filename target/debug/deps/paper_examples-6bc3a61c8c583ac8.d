/root/repo/target/debug/deps/paper_examples-6bc3a61c8c583ac8.d: crates/bench/benches/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-6bc3a61c8c583ac8: crates/bench/benches/paper_examples.rs

crates/bench/benches/paper_examples.rs:
