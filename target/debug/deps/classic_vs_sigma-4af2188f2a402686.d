/root/repo/target/debug/deps/classic_vs_sigma-4af2188f2a402686.d: crates/bench/benches/classic_vs_sigma.rs

/root/repo/target/debug/deps/classic_vs_sigma-4af2188f2a402686: crates/bench/benches/classic_vs_sigma.rs

crates/bench/benches/classic_vs_sigma.rs:
