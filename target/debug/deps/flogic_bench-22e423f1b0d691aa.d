/root/repo/target/debug/deps/flogic_bench-22e423f1b0d691aa.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_bench-22e423f1b0d691aa.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
