/root/repo/target/debug/deps/flogic_hom-ce0432c24ba51372.d: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

/root/repo/target/debug/deps/libflogic_hom-ce0432c24ba51372.rlib: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

/root/repo/target/debug/deps/libflogic_hom-ce0432c24ba51372.rmeta: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

crates/hom/src/lib.rs:
crates/hom/src/core_of.rs:
crates/hom/src/search.rs:
crates/hom/src/target.rs:
