/root/repo/target/debug/deps/properties-479f283b7cf61d9c.d: tests/properties.rs

/root/repo/target/debug/deps/properties-479f283b7cf61d9c: tests/properties.rs

tests/properties.rs:
