/root/repo/target/debug/deps/paper_examples-9d1a2745acc47021.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-9d1a2745acc47021: tests/paper_examples.rs

tests/paper_examples.rs:
