/root/repo/target/debug/deps/flogic_model-05571b9e392f23c5.d: crates/model/src/lib.rs crates/model/src/atom.rs crates/model/src/database.rs crates/model/src/error.rs crates/model/src/predicate.rs crates/model/src/query.rs crates/model/src/sigma.rs

/root/repo/target/debug/deps/flogic_model-05571b9e392f23c5: crates/model/src/lib.rs crates/model/src/atom.rs crates/model/src/database.rs crates/model/src/error.rs crates/model/src/predicate.rs crates/model/src/query.rs crates/model/src/sigma.rs

crates/model/src/lib.rs:
crates/model/src/atom.rs:
crates/model/src/database.rs:
crates/model/src/error.rs:
crates/model/src/predicate.rs:
crates/model/src/query.rs:
crates/model/src/sigma.rs:
