/root/repo/target/debug/deps/flogic_model-f6c1194c4d5da869.d: crates/model/src/lib.rs crates/model/src/atom.rs crates/model/src/database.rs crates/model/src/error.rs crates/model/src/predicate.rs crates/model/src/query.rs crates/model/src/sigma.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_model-f6c1194c4d5da869.rmeta: crates/model/src/lib.rs crates/model/src/atom.rs crates/model/src/database.rs crates/model/src/error.rs crates/model/src/predicate.rs crates/model/src/query.rs crates/model/src/sigma.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/atom.rs:
crates/model/src/database.rs:
crates/model/src/error.rs:
crates/model/src/predicate.rs:
crates/model/src/query.rs:
crates/model/src/sigma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
