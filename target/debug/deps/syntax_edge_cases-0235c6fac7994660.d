/root/repo/target/debug/deps/syntax_edge_cases-0235c6fac7994660.d: tests/syntax_edge_cases.rs

/root/repo/target/debug/deps/syntax_edge_cases-0235c6fac7994660: tests/syntax_edge_cases.rs

tests/syntax_edge_cases.rs:
