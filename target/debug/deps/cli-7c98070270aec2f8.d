/root/repo/target/debug/deps/cli-7c98070270aec2f8.d: tests/cli.rs

/root/repo/target/debug/deps/cli-7c98070270aec2f8: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_flq=/root/repo/target/debug/flq
