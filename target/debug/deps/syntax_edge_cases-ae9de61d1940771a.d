/root/repo/target/debug/deps/syntax_edge_cases-ae9de61d1940771a.d: tests/syntax_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libsyntax_edge_cases-ae9de61d1940771a.rmeta: tests/syntax_edge_cases.rs Cargo.toml

tests/syntax_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
