/root/repo/target/debug/deps/flogic_hom-dfc79a4c2b8b48fa.d: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_hom-dfc79a4c2b8b48fa.rmeta: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs Cargo.toml

crates/hom/src/lib.rs:
crates/hom/src/core_of.rs:
crates/hom/src/search.rs:
crates/hom/src/target.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
