/root/repo/target/debug/deps/flogic_chase-e62b0ddf1e31acc2.d: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs

/root/repo/target/debug/deps/libflogic_chase-e62b0ddf1e31acc2.rlib: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs

/root/repo/target/debug/deps/libflogic_chase-e62b0ddf1e31acc2.rmeta: crates/chase/src/lib.rs crates/chase/src/cycles.rs crates/chase/src/dot.rs crates/chase/src/engine.rs crates/chase/src/graph.rs crates/chase/src/paths.rs

crates/chase/src/lib.rs:
crates/chase/src/cycles.rs:
crates/chase/src/dot.rs:
crates/chase/src/engine.rs:
crates/chase/src/graph.rs:
crates/chase/src/paths.rs:
