/root/repo/target/debug/deps/flogic_datalog-87838af5c1985c69.d: crates/datalog/src/lib.rs crates/datalog/src/closure.rs crates/datalog/src/engine.rs crates/datalog/src/error.rs crates/datalog/src/eval.rs crates/datalog/src/store.rs crates/datalog/src/uf.rs

/root/repo/target/debug/deps/flogic_datalog-87838af5c1985c69: crates/datalog/src/lib.rs crates/datalog/src/closure.rs crates/datalog/src/engine.rs crates/datalog/src/error.rs crates/datalog/src/eval.rs crates/datalog/src/store.rs crates/datalog/src/uf.rs

crates/datalog/src/lib.rs:
crates/datalog/src/closure.rs:
crates/datalog/src/engine.rs:
crates/datalog/src/error.rs:
crates/datalog/src/eval.rs:
crates/datalog/src/store.rs:
crates/datalog/src/uf.rs:
