/root/repo/target/debug/deps/cli-0b48e8503b5a58d3.d: tests/cli.rs

/root/repo/target/debug/deps/cli-0b48e8503b5a58d3: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_flq=/root/repo/target/debug/flq
