/root/repo/target/debug/deps/harness-a89c77c3b84a1c0a.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/harness-a89c77c3b84a1c0a: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
