/root/repo/target/debug/deps/flogic_lite-3a32f738efa977cd.d: src/lib.rs

/root/repo/target/debug/deps/libflogic_lite-3a32f738efa977cd.rlib: src/lib.rs

/root/repo/target/debug/deps/libflogic_lite-3a32f738efa977cd.rmeta: src/lib.rs

src/lib.rs:
