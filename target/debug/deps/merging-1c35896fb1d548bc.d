/root/repo/target/debug/deps/merging-1c35896fb1d548bc.d: crates/chase/tests/merging.rs Cargo.toml

/root/repo/target/debug/deps/libmerging-1c35896fb1d548bc.rmeta: crates/chase/tests/merging.rs Cargo.toml

crates/chase/tests/merging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
