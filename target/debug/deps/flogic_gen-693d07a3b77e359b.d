/root/repo/target/debug/deps/flogic_gen-693d07a3b77e359b.d: crates/gen/src/lib.rs

/root/repo/target/debug/deps/libflogic_gen-693d07a3b77e359b.rlib: crates/gen/src/lib.rs

/root/repo/target/debug/deps/libflogic_gen-693d07a3b77e359b.rmeta: crates/gen/src/lib.rs

crates/gen/src/lib.rs:
