/root/repo/target/debug/deps/harness-3104e43fa51fba42.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/harness-3104e43fa51fba42: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
