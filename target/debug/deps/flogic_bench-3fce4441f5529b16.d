/root/repo/target/debug/deps/flogic_bench-3fce4441f5529b16.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/flogic_bench-3fce4441f5529b16: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
