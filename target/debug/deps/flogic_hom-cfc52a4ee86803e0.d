/root/repo/target/debug/deps/flogic_hom-cfc52a4ee86803e0.d: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

/root/repo/target/debug/deps/flogic_hom-cfc52a4ee86803e0: crates/hom/src/lib.rs crates/hom/src/core_of.rs crates/hom/src/search.rs crates/hom/src/target.rs

crates/hom/src/lib.rs:
crates/hom/src/core_of.rs:
crates/hom/src/search.rs:
crates/hom/src/target.rs:
