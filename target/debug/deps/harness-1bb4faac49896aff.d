/root/repo/target/debug/deps/harness-1bb4faac49896aff.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/harness-1bb4faac49896aff: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
