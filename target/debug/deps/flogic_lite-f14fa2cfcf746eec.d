/root/repo/target/debug/deps/flogic_lite-f14fa2cfcf746eec.d: src/lib.rs

/root/repo/target/debug/deps/libflogic_lite-f14fa2cfcf746eec.rlib: src/lib.rs

/root/repo/target/debug/deps/libflogic_lite-f14fa2cfcf746eec.rmeta: src/lib.rs

src/lib.rs:
