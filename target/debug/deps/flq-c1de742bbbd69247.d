/root/repo/target/debug/deps/flq-c1de742bbbd69247.d: src/bin/flq.rs

/root/repo/target/debug/deps/flq-c1de742bbbd69247: src/bin/flq.rs

src/bin/flq.rs:
