/root/repo/target/debug/deps/syntax_edge_cases-1fda2a100106807b.d: tests/syntax_edge_cases.rs

/root/repo/target/debug/deps/syntax_edge_cases-1fda2a100106807b: tests/syntax_edge_cases.rs

tests/syntax_edge_cases.rs:
