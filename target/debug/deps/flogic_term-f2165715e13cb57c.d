/root/repo/target/debug/deps/flogic_term-f2165715e13cb57c.d: crates/term/src/lib.rs crates/term/src/metrics.rs crates/term/src/null.rs crates/term/src/rng.rs crates/term/src/subst.rs crates/term/src/symbol.rs crates/term/src/term.rs

/root/repo/target/debug/deps/libflogic_term-f2165715e13cb57c.rlib: crates/term/src/lib.rs crates/term/src/metrics.rs crates/term/src/null.rs crates/term/src/rng.rs crates/term/src/subst.rs crates/term/src/symbol.rs crates/term/src/term.rs

/root/repo/target/debug/deps/libflogic_term-f2165715e13cb57c.rmeta: crates/term/src/lib.rs crates/term/src/metrics.rs crates/term/src/null.rs crates/term/src/rng.rs crates/term/src/subst.rs crates/term/src/symbol.rs crates/term/src/term.rs

crates/term/src/lib.rs:
crates/term/src/metrics.rs:
crates/term/src/null.rs:
crates/term/src/rng.rs:
crates/term/src/subst.rs:
crates/term/src/symbol.rs:
crates/term/src/term.rs:
