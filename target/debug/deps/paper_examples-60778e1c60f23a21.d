/root/repo/target/debug/deps/paper_examples-60778e1c60f23a21.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-60778e1c60f23a21: tests/paper_examples.rs

tests/paper_examples.rs:
