/root/repo/target/debug/deps/flogic_lite-02a34625a7d4bc17.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libflogic_lite-02a34625a7d4bc17.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
