//! The chase of a conjunctive meta-query with respect to `Σ_FL`.
//!
//! This crate implements the machinery of Sections 3 and 4 of the paper:
//!
//! * the **chase** of a query (Definition 2): the query body is treated as a
//!   database; violations of the TGDs are repaired by adding conjuncts, the
//!   EGD ρ4 is repaired by equating terms (rewriting the lexicographically
//!   larger into the smaller; equating two distinct rigid constants fails
//!   the construction), and ρ5 invents fresh labelled nulls under the
//!   restricted applicability test;
//! * the **chase graph** (Definition 3): conjuncts are nodes, each rule
//!   application contributes rule-labelled arcs from the premise conjuncts
//!   to the conclusion, *cross-arcs* record applications whose conclusion
//!   already existed, and every conjunct carries a *level*;
//! * the paper's **two-phase discipline** (Section 4): first
//!   `chase⁻ = chase_{Σ_FL − ρ5}`, which always terminates and whose
//!   conjuncts are all assigned level 0; then the level-bounded phase with
//!   all twelve rules, which is where the possibly-infinite
//!   ρ5–ρ1–ρ6–ρ10 pump unrolls;
//! * analysis helpers: conjunct **equivalence** (Definition 6), primary and
//!   secondary arcs, the **locality** property (Lemma 5) as a checkable
//!   predicate, and detection of the **mandatory-attribute cycles** that
//!   make the chase infinite (Section 4).

mod cycles;
mod dot;
mod engine;
mod governor;
mod graph;
mod paths;

pub use cycles::{find_mandatory_cycles, has_infinite_chase_potential, MandatoryCycle};
pub use dot::{to_dot, to_text};
pub use engine::{
    chase_bounded, chase_minus, chase_minus_with, Chase, ChaseOptions, ChaseOutcome, ChaseStats,
};
pub use governor::{Budget, CancelToken, ChaseError, ExhaustReason};
pub use graph::{
    equivalent_conjuncts, locality_violations, ChaseArc, ConjunctId, LocalityViolation,
};
pub use paths::{
    count_primary_paths, find_equivalent_pair, is_primary_path_arc, max_primary_path_multiplicity,
    parallel, primary_path, Path,
};
