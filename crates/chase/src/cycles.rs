//! Detection of mandatory-attribute cycles — the one source of chase
//! non-termination (Section 4 of the paper).
//!
//! "The only way to have an infinite chase is the iterative application of
//! rules ρ5–ρ1–ρ6–ρ10. This happens when q contains at least a set of atoms
//! specifying a cycle of mandatory attributes A1, …, Ak belonging to classes
//! T1, …, Tk, respectively, where Ai is of type T(i+1) … and Ak is of type
//! T1."

use std::collections::{HashMap, HashSet};

use flogic_model::{Atom, Pred};
use flogic_term::Term;

/// A cycle of mandatory attributes, as described in Section 4: classes
/// `T1, …, Tk` and attributes `A1, …, Ak` with `mandatory(Ai, Ti)` and
/// `type(Ti, Ai, T(i+1 mod k))`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MandatoryCycle {
    /// The classes on the cycle, in order.
    pub classes: Vec<Term>,
    /// The attributes on the cycle (`attrs[i]` leads from `classes[i]` to
    /// `classes[(i+1) % k]`).
    pub attrs: Vec<Term>,
}

impl MandatoryCycle {
    /// Length `k` of the cycle.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True for the degenerate (impossible) empty cycle.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// Finds all simple mandatory/type cycles among `conjuncts`.
///
/// Builds the directed graph whose nodes are class terms with an edge
/// `T → T'` labelled `A` whenever both `mandatory(A, T)` and
/// `type(T, A, T')` are present, then enumerates its simple cycles
/// (each cycle reported once, starting from its smallest class term).
pub fn find_mandatory_cycles(conjuncts: &[Atom]) -> Vec<MandatoryCycle> {
    // mandatory(A, T) pairs.
    let mandatory: HashSet<(Term, Term)> = conjuncts
        .iter()
        .filter(|a| a.pred() == Pred::Mandatory)
        .map(|a| (a.arg(0), a.arg(1)))
        .collect();
    // Edges T --A--> T' for type(T, A, T') with mandatory(A, T).
    let mut edges: HashMap<Term, Vec<(Term, Term)>> = HashMap::new();
    for a in conjuncts.iter().filter(|a| a.pred() == Pred::Type) {
        let (t, attr, t2) = (a.arg(0), a.arg(1), a.arg(2));
        if mandatory.contains(&(attr, t)) {
            edges.entry(t).or_default().push((attr, t2));
        }
    }

    let mut cycles: Vec<MandatoryCycle> = Vec::new();
    let mut seen: HashSet<Vec<Term>> = HashSet::new();
    let mut nodes: Vec<Term> = edges.keys().copied().collect();
    nodes.sort();

    // DFS from each node, only visiting nodes >= start (canonical cycles).
    #[allow(clippy::too_many_arguments)] // recursive helper: state threads through
    fn dfs(
        start: Term,
        current: Term,
        edges: &HashMap<Term, Vec<(Term, Term)>>,
        path_classes: &mut Vec<Term>,
        path_attrs: &mut Vec<Term>,
        on_path: &mut HashSet<Term>,
        seen: &mut HashSet<Vec<Term>>,
        cycles: &mut Vec<MandatoryCycle>,
    ) {
        let Some(outs) = edges.get(&current) else {
            return;
        };
        for &(attr, next) in outs {
            if next == start {
                let mut key = path_classes.clone();
                key.push(attr); // disambiguate same classes, different attrs
                key.push(next);
                if seen.insert(key) {
                    let mut attrs = path_attrs.clone();
                    attrs.push(attr);
                    cycles.push(MandatoryCycle {
                        classes: path_classes.clone(),
                        attrs,
                    });
                }
            } else if next >= start && !on_path.contains(&next) {
                path_classes.push(next);
                path_attrs.push(attr);
                on_path.insert(next);
                dfs(
                    start,
                    next,
                    edges,
                    path_classes,
                    path_attrs,
                    on_path,
                    seen,
                    cycles,
                );
                on_path.remove(&next);
                path_attrs.pop();
                path_classes.pop();
            }
        }
    }

    for &start in &nodes {
        let mut path_classes = vec![start];
        let mut path_attrs = Vec::new();
        let mut on_path = HashSet::from([start]);
        dfs(
            start,
            start,
            &edges,
            &mut path_classes,
            &mut path_attrs,
            &mut on_path,
            &mut seen,
            &mut cycles,
        );
    }
    cycles
}

/// True if the chase of a query whose (level-0) conjuncts are `conjuncts`
/// can be infinite — i.e. it contains a mandatory/type cycle (Section 4).
///
/// Note that a `data` conjunct on the cycle entry suppresses the *first*
/// pump application but not the cycle itself (the invented values re-enter
/// the cycle), so the presence of a cycle is the right test for "may be
/// infinite".
pub fn has_infinite_chase_potential(conjuncts: &[Atom]) -> bool {
    !find_mandatory_cycles(conjuncts).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }
    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn self_loop_detected() {
        // Example 2's core: mandatory(A, T), type(T, A, T).
        let conjuncts = [
            Atom::mandatory(v("A"), v("T")),
            Atom::typ(v("T"), v("A"), v("T")),
        ];
        let cycles = find_mandatory_cycles(&conjuncts);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 1);
        assert_eq!(cycles[0].classes, vec![v("T")]);
        assert_eq!(cycles[0].attrs, vec![v("A")]);
        assert!(has_infinite_chase_potential(&conjuncts));
    }

    #[test]
    fn two_cycle_detected() {
        // T1 --a1--> T2 --a2--> T1, the paper's general pattern with k=2.
        let conjuncts = [
            Atom::mandatory(c("a1"), c("t1")),
            Atom::typ(c("t1"), c("a1"), c("t2")),
            Atom::mandatory(c("a2"), c("t2")),
            Atom::typ(c("t2"), c("a2"), c("t1")),
        ];
        let cycles = find_mandatory_cycles(&conjuncts);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
    }

    #[test]
    fn open_chain_is_not_a_cycle() {
        let conjuncts = [
            Atom::mandatory(c("a1"), c("t1")),
            Atom::typ(c("t1"), c("a1"), c("t2")),
            Atom::mandatory(c("a2"), c("t2")),
            Atom::typ(c("t2"), c("a2"), c("t3")),
        ];
        assert!(find_mandatory_cycles(&conjuncts).is_empty());
        assert!(!has_infinite_chase_potential(&conjuncts));
    }

    #[test]
    fn mandatory_without_matching_type_is_no_edge() {
        let conjuncts = [
            Atom::mandatory(c("a"), c("t")),
            Atom::typ(c("t"), c("b"), c("t")), // different attribute
        ];
        assert!(find_mandatory_cycles(&conjuncts).is_empty());
    }

    #[test]
    fn two_disjoint_cycles_both_found() {
        let conjuncts = [
            Atom::mandatory(c("a"), c("s")),
            Atom::typ(c("s"), c("a"), c("s")),
            Atom::mandatory(c("b"), c("t")),
            Atom::typ(c("t"), c("b"), c("t")),
        ];
        let cycles = find_mandatory_cycles(&conjuncts);
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn parallel_attributes_give_distinct_cycles() {
        // Two self-loops on the same class via different attributes.
        let conjuncts = [
            Atom::mandatory(c("a"), c("t")),
            Atom::typ(c("t"), c("a"), c("t")),
            Atom::mandatory(c("b"), c("t")),
            Atom::typ(c("t"), c("b"), c("t")),
        ];
        let cycles = find_mandatory_cycles(&conjuncts);
        assert_eq!(cycles.len(), 2);
    }
}
