//! The chase engine (Definition 2 of the paper, with the two-phase
//! discipline of Section 4).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use flogic_model::{
    sigma_fl, Atom, ConjunctiveQuery, Egd, Pred, RuleId, RuleSet, SigmaRule, Tgd, SIGMA_RULE_COUNT,
};
use flogic_obs::{ChaseEvent, SpanKind, TraceHandle};
use flogic_term::{Metrics, NullGen, Subst, Term};

use crate::governor::{Budget, ChaseError, ExhaustReason};
use crate::graph::{ChaseArc, ConjunctId};

/// How many candidates the apply loop processes between governor
/// checkpoints. Checkpoints only read state, so the constant trades check
/// latency against overhead — it never affects which applications happen.
const CHECK_EVERY: u64 = 1024;

/// Tuning knobs for a chase run.
#[derive(Clone, Debug)]
pub struct ChaseOptions {
    /// Maximum conjunct level; applications that would create a conjunct
    /// beyond this level are skipped (Theorem 12 needs levels up to
    /// `2·|q1|·|q2|` only).
    pub level_bound: u32,
    /// Safety cap on the number of conjuncts; exceeded ⇒
    /// [`ChaseOutcome::Exhausted`] with [`ExhaustReason::Conjuncts`].
    pub max_conjuncts: usize,
    /// Worker threads for discovering applicable rule instances in each
    /// frontier batch. `1` (the default) runs fully sequentially; `0`
    /// means "use the machine's available parallelism". The chase result
    /// is bit-identical for every setting: discovery is a pure read of a
    /// frozen snapshot, and applications are merged back in frontier
    /// order regardless of which worker found them.
    pub threads: usize,
    /// Resource budget (deadline, step/byte caps, cancellation). The
    /// default is unlimited.
    pub budget: Budget,
    /// Structured-event sink. The default ([`TraceHandle::Disabled`])
    /// reduces every instrumentation site to one branch; enabling tracing
    /// never changes which rule applications happen (it only observes),
    /// so traced runs stay bit-identical to untraced ones.
    pub trace: TraceHandle,
    /// The rule set to chase with. Defaults to the built-in `Σ_FL`; any
    /// set structurally equal to it (`RuleSet::is_sigma_fl`) is routed
    /// onto the specialized `Σ_FL` code paths, so a parsed copy of the
    /// built-in rules behaves bit-identically to the default. Custom sets
    /// must be admitted by the Σ-admission analyzer (`flogic-analysis`)
    /// before they reach the engine.
    pub sigma: Arc<RuleSet>,
}

impl Default for ChaseOptions {
    fn default() -> Self {
        ChaseOptions {
            level_bound: u32::MAX,
            max_conjuncts: 1_000_000,
            threads: 1,
            budget: Budget::default(),
            trace: TraceHandle::Disabled,
            sigma: RuleSet::sigma_fl().clone(),
        }
    }
}

/// How a chase run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// Fixpoint reached: the chase is finite and fully materialized.
    Completed,
    /// Fixpoint up to the level bound: some applications beyond the bound
    /// were skipped (the full chase may be infinite).
    LevelBounded,
    /// ρ4 equated two distinct rigid constants — the construction fails
    /// (Definition 2(1)(a)). The query is unsatisfiable on every database
    /// that satisfies `Σ_FL`.
    Failed {
        /// One of the clashing constants.
        left: Term,
        /// The other clashing constant.
        right: Term,
    },
    /// A resource limit stopped the run; the chase is a well-formed
    /// prefix. Partial progress is still observable through
    /// [`Chase::len`], [`Chase::max_level`] and [`Chase::stats`].
    Exhausted {
        /// Which limit fired.
        reason: ExhaustReason,
    },
}

impl ChaseOutcome {
    /// True when a resource limit stopped the run.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, ChaseOutcome::Exhausted { .. })
    }
}

/// Counters describing a chase run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Successful applications per rule (index = `RuleId::index()`).
    /// Custom rule sets with more than [`SIGMA_RULE_COUNT`] rules spill
    /// applications of the excess rules into [`ChaseStats::applications_tail`].
    pub applications: [usize; SIGMA_RULE_COUNT],
    /// Applications of custom rules with `RuleId::index() >= SIGMA_RULE_COUNT`
    /// (zero on every `Σ_FL` run).
    pub applications_tail: usize,
    /// Number of term merges performed by ρ4.
    pub merges: usize,
    /// Number of cross-arcs recorded.
    pub cross_arcs: usize,
    /// Labelled nulls invented by ρ5.
    pub nulls_invented: u64,
    /// Resolution steps: candidate rule instances examined by the apply
    /// loop (whether or not they produced a conjunct). This is the unit
    /// the [`Budget::max_steps`] cap counts in.
    pub steps: u64,
}

impl ChaseStats {
    /// Total successful rule applications.
    pub fn total_applications(&self) -> usize {
        self.applications.iter().sum::<usize>() + self.applications_tail
    }

    /// Records one successful application of `rule`.
    fn record_application(&mut self, rule: RuleId) {
        match self.applications.get_mut(rule.index()) {
            Some(slot) => *slot += 1,
            None => self.applications_tail += 1,
        }
    }
}

/// An applicable rule instance discovered by a frontier batch, waiting for
/// the sequential application step. `head` has the rule binding already
/// applied; `existential` is ρ5's fresh-value variable (still unbound).
struct Candidate {
    rule: RuleId,
    head: Atom,
    existential: Option<Term>,
    parents: Vec<ConjunctId>,
}

#[derive(Clone, Debug)]
struct Node {
    atom: Atom,
    level: u32,
    rule: Option<RuleId>,
    parents: Vec<ConjunctId>,
}

/// The chase of a query w.r.t. `Σ_FL`: conjuncts, levels, arcs, and the
/// (possibly rewritten) query head.
///
/// Build one with [`chase_minus`] (terminating, `Σ_FL − ρ5`) or
/// [`chase_bounded`] (all rules, level-capped). All accessors resolve
/// merge redirects, so ids handed out before a ρ4 merge stay valid.
#[derive(Clone, Debug)]
pub struct Chase {
    nodes: Vec<Node>,
    /// Union-find over node ids; `redirect[i] == i` for live roots.
    redirect: Vec<u32>,
    /// Canonical atom → live root id.
    canon: HashMap<Atom, ConjunctId>,
    /// Live root ids per predicate.
    by_pred: [Vec<ConjunctId>; 6],
    /// Live root ids per `(predicate, argument position, term)` — the
    /// selective index used for rule matching and the ρ4 scan. Without it,
    /// matching degenerates to per-predicate scans, which is quadratic in
    /// the chase size and makes branching chases (several pump threads per
    /// invented value) intractable.
    by_pos: HashMap<(Pred, u8, Term), Vec<ConjunctId>>,
    arcs: Vec<ChaseArc>,
    arc_seen: HashSet<(u32, u32, RuleId, bool)>,
    head: Vec<Term>,
    nulls: NullGen,
    merge_map: Subst,
    outcome: ChaseOutcome,
    stats: ChaseStats,
    /// Event sink (worker 0); parallel discovery workers derive their own
    /// handles from it. Purely observational — never consulted for
    /// control flow.
    trace: TraceHandle,
    /// Set when an application was skipped because of the level bound.
    hit_bound: bool,
    /// Record cross-arcs (enabled for the bounded phase only; level-0
    /// cross-arcs carry no information and would bloat the graph).
    record_cross: bool,
    /// EGDs of a custom rule set; `None` runs the specialized ρ4 scan of
    /// the built-in `Σ_FL` (which every structurally-`Σ_FL` set routes
    /// onto, keeping default runs bit-identical).
    custom_egds: Option<Vec<Egd>>,
}

impl Chase {
    fn new(q: &ConjunctiveQuery) -> Chase {
        let mut chase = Chase {
            nodes: Vec::new(),
            redirect: Vec::new(),
            canon: HashMap::new(),
            by_pred: Default::default(),
            by_pos: HashMap::new(),
            arcs: Vec::new(),
            arc_seen: HashSet::new(),
            head: q.head().to_vec(),
            nulls: NullGen::new(),
            merge_map: Subst::new(),
            outcome: ChaseOutcome::Completed,
            stats: ChaseStats::default(),
            trace: TraceHandle::Disabled,
            hit_bound: false,
            record_cross: false,
            custom_egds: None,
        };
        for atom in q.body() {
            if chase.insert(*atom, 0, None, Vec::new()).is_none() {
                chase.exhaust(ExhaustReason::Conjuncts);
                break;
            }
        }
        chase
    }

    // ---- id plumbing -----------------------------------------------------

    fn resolve(&self, id: ConjunctId) -> ConjunctId {
        let mut i = id.0;
        while self.redirect[i as usize] != i {
            i = self.redirect[i as usize];
        }
        ConjunctId(i)
    }

    fn is_live(&self, id: ConjunctId) -> bool {
        self.redirect[id.index()] == id.0
    }

    /// Inserts `atom` if not present; returns `(root id, was_new)`, or
    /// `None` when the `u32` conjunct-id space is exhausted (the caller
    /// stops the run with [`ExhaustReason::Conjuncts`] instead of
    /// panicking — no input, however oversized, aborts the process).
    fn insert(
        &mut self,
        atom: Atom,
        level: u32,
        rule: Option<RuleId>,
        parents: Vec<ConjunctId>,
    ) -> Option<(ConjunctId, bool)> {
        if let Some(&id) = self.canon.get(&atom) {
            return Some((id, false));
        }
        let id = ConjunctId(u32::try_from(self.nodes.len()).ok()?);
        self.nodes.push(Node {
            atom,
            level,
            rule,
            parents,
        });
        self.redirect.push(id.0);
        self.canon.insert(atom, id);
        self.by_pred[atom.pred().index()].push(id);
        for (pos, &term) in atom.args().iter().enumerate() {
            self.by_pos
                .entry((atom.pred(), pos as u8, term))
                .or_default()
                .push(id);
        }
        Some((id, true))
    }

    /// Candidate conjuncts for matching `pattern` under the partial rule
    /// binding `s`: the most selective position index available, falling
    /// back to the per-predicate list when no position is bound. (A bound
    /// rule variable's image may itself be a query variable — that is a
    /// concrete chase value and indexes fine.) Every candidate still
    /// requires full unification.
    fn candidates(&self, pattern: &Atom, s: &Subst) -> &[ConjunctId] {
        let mut best: Option<&[ConjunctId]> = None;
        for (pos, &arg) in pattern.args().iter().enumerate() {
            let effective = if arg.is_var() {
                match s.get(arg) {
                    Some(image) => image,
                    None => continue,
                }
            } else {
                arg
            };
            let list: &[ConjunctId] = self
                .by_pos
                .get(&(pattern.pred(), pos as u8, effective))
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
            if best.map_or(true, |b| list.len() < b.len()) {
                best = Some(list);
            }
        }
        best.unwrap_or(&self.by_pred[pattern.pred().index()])
    }

    fn add_arc(&mut self, from: ConjunctId, to: ConjunctId, rule: RuleId, cross: bool) {
        let key = (from.0, to.0, rule, cross);
        if self.arc_seen.insert(key) {
            self.arcs.push(ChaseArc {
                from,
                to,
                rule,
                cross,
            });
            if cross {
                self.stats.cross_arcs += 1;
            }
        }
    }

    // ---- public accessors ------------------------------------------------

    /// Iterates over the live conjuncts as `(id, atom, level)`.
    pub fn conjuncts(&self) -> impl Iterator<Item = (ConjunctId, &Atom, u32)> {
        self.nodes.iter().enumerate().filter_map(move |(i, n)| {
            let id = ConjunctId(i as u32);
            self.is_live(id).then_some((id, &n.atom, n.level))
        })
    }

    /// Number of live conjuncts.
    pub fn len(&self) -> usize {
        self.canon.len()
    }

    /// True if the chase has no conjuncts (cannot happen for valid queries).
    pub fn is_empty(&self) -> bool {
        self.canon.is_empty()
    }

    /// The atom of a conjunct (id may be pre-merge; it is resolved).
    pub fn atom(&self, id: ConjunctId) -> &Atom {
        &self.nodes[self.resolve(id).index()].atom
    }

    /// The level of a conjunct (Definition 3(3)).
    pub fn level(&self, id: ConjunctId) -> u32 {
        self.nodes[self.resolve(id).index()].level
    }

    /// The rule that generated a conjunct (`None` for `body(q)` / level-0
    /// phase conjuncts).
    pub fn rule_of(&self, id: ConjunctId) -> Option<RuleId> {
        self.nodes[self.resolve(id).index()].rule
    }

    /// The premise conjuncts from which this conjunct was generated.
    pub fn parents_of(&self, id: ConjunctId) -> Vec<ConjunctId> {
        self.nodes[self.resolve(id).index()]
            .parents
            .iter()
            .map(|&p| self.resolve(p))
            .collect()
    }

    /// Looks up a conjunct by atom.
    pub fn find(&self, atom: &Atom) -> Option<ConjunctId> {
        self.canon.get(atom).copied()
    }

    /// All arcs, with endpoints resolved through merges.
    pub fn arcs(&self) -> impl Iterator<Item = ChaseArc> + '_ {
        self.arcs.iter().map(|a| ChaseArc {
            from: self.resolve(a.from),
            to: self.resolve(a.to),
            rule: a.rule,
            cross: a.cross,
        })
    }

    /// The query head as rewritten by the chase (Example 1 of the paper:
    /// ρ4 merges may change head variables).
    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// The accumulated ρ4 merge map (normalized).
    pub fn merge_map(&self) -> &Subst {
        &self.merge_map
    }

    /// How the run ended.
    pub fn outcome(&self) -> ChaseOutcome {
        self.outcome
    }

    /// True if the construction failed (ρ4 on two distinct constants).
    pub fn is_failed(&self) -> bool {
        matches!(self.outcome, ChaseOutcome::Failed { .. })
    }

    /// True if a resource limit stopped the run (the chase is a prefix).
    pub fn is_exhausted(&self) -> bool {
        self.outcome.is_exhausted()
    }

    /// Approximate bytes materialized by the chase graph: node storage,
    /// arcs, and an estimate of the per-entry index overhead. This is the
    /// quantity [`Budget::max_bytes`] caps, and the unit resident
    /// snapshot caches (the `flqd` server's per-`q1` chase cache) charge
    /// entries at — a bookkeeping estimate, not an allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        // Each node also appears in `canon`, `by_pred` and (per argument)
        // `by_pos`; 64 bytes is a deliberately rough per-node estimate of
        // that index overhead.
        self.nodes.len() * (size_of::<Node>() + 64)
            + self.arcs.len() * (size_of::<ChaseArc>() + size_of::<(u32, u32, RuleId, bool)>())
            + self.by_pos.len() * size_of::<(Pred, u8, Term)>()
    }

    /// Stops the run with an [`ChaseOutcome::Exhausted`] outcome and
    /// bumps the matching governor counter.
    fn exhaust(&mut self, reason: ExhaustReason) {
        self.outcome = ChaseOutcome::Exhausted { reason };
        let reason_index = match reason {
            ExhaustReason::Conjuncts => 0u8,
            ExhaustReason::Deadline => 1,
            ExhaustReason::Steps => 2,
            ExhaustReason::Bytes => 3,
            ExhaustReason::Cancelled => 4,
        };
        self.trace.emit(|| ChaseEvent::GovernorStop {
            reason: reason_index,
        });
        let m = Metrics::global();
        match reason {
            ExhaustReason::Deadline => m.record_governor_deadline(),
            ExhaustReason::Cancelled => m.record_governor_cancellation(),
            ExhaustReason::Conjuncts | ExhaustReason::Steps | ExhaustReason::Bytes => {
                m.record_governor_budget()
            }
        }
    }

    /// Returns the first exceeded limit, if any. A pure read: calling it
    /// (at whatever frequency) never changes which rule applications
    /// happen, so governed runs that stay within budget are bit-identical
    /// to ungoverned ones.
    fn governor_checkpoint(&self, budget: &Budget) -> Option<ExhaustReason> {
        if budget.cancel.is_cancelled() {
            return Some(ExhaustReason::Cancelled);
        }
        if budget.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(ExhaustReason::Deadline);
        }
        if budget.max_bytes.is_some_and(|mb| self.approx_bytes() >= mb) {
            return Some(ExhaustReason::Bytes);
        }
        None
    }

    /// Run statistics.
    pub fn stats(&self) -> &ChaseStats {
        &self.stats
    }

    /// The largest level of any live conjunct.
    pub fn max_level(&self) -> u32 {
        self.conjuncts().map(|(_, _, l)| l).max().unwrap_or(0)
    }

    /// Live conjunct ids at a given level.
    pub fn at_level(&self, level: u32) -> Vec<ConjunctId> {
        self.conjuncts()
            .filter(|&(_, _, l)| l == level)
            .map(|(id, _, _)| id)
            .collect()
    }

    // ---- EGDs -------------------------------------------------------------

    /// Applies the active EGDs to exhaustion (Definition 2, chase step
    /// (a)): the specialized ρ4 scan for the built-in `Σ_FL`, or the
    /// generic per-EGD matcher for a custom rule set.
    ///
    /// Returns `Err((left, right))` when two distinct rigid constants must
    /// be equated, `Ok(true)` if any merge happened.
    fn drain_egds(&mut self) -> Result<bool, (Term, Term)> {
        match self.custom_egds.take() {
            None => self.egd_fixpoint(),
            Some(egds) => {
                let out = self.egd_fixpoint_general(&egds);
                self.custom_egds = Some(egds);
                out
            }
        }
    }

    /// The generic EGD fixpoint for custom rule sets: each EGD's body is
    /// matched with [`Chase::match_body_pinned`] (pinned on its first
    /// atom, over a cloned per-predicate index in numeric id order, so
    /// enumeration order is a pure function of the chase history), and
    /// every homomorphism demands one equation. Union-find semantics are
    /// identical to the ρ4 scan: lexicographically smaller representative
    /// wins, two distinct constants clash.
    fn egd_fixpoint_general(&mut self, egds: &[Egd]) -> Result<bool, (Term, Term)> {
        let mut changed_any = false;
        loop {
            let mut uf: HashMap<Term, Term> = HashMap::new();
            let mut pending = false;
            for egd in egds {
                let Some(first) = egd.body.first() else {
                    continue;
                };
                let ids: Vec<ConjunctId> = self.by_pred[first.pred().index()].clone();
                let mut equations: Vec<(Term, Term)> = Vec::new();
                for id in ids {
                    self.match_body_pinned(&egd.body, 0, id, &mut |s, _| {
                        equations.push((s.apply(egd.left), s.apply(egd.right)));
                    });
                }
                for (l, r) in equations {
                    let rl = find(&uf, l);
                    let rr = find(&uf, r);
                    if rl != rr {
                        if rl.is_const() && rr.is_const() {
                            return Err((rl.min(rr), rl.max(rr)));
                        }
                        let (keep, drop) = if rl < rr { (rl, rr) } else { (rr, rl) };
                        uf.insert(drop, keep);
                        pending = true;
                    }
                }
            }
            if !pending {
                return Ok(changed_any);
            }
            self.commit_merge(&uf);
            changed_any = true;
        }
    }

    /// Applies ρ4 to exhaustion (Definition 2, chase step (a)).
    ///
    /// Returns `Err((left, right))` when two distinct rigid constants must
    /// be equated, `Ok(true)` if any merge happened.
    fn egd_fixpoint(&mut self) -> Result<bool, (Term, Term)> {
        let mut changed_any = false;
        loop {
            // Collect all equations demanded by ρ4 in the current state.
            let mut uf: HashMap<Term, Term> = HashMap::new();
            let mut pending = false;
            for &fid in &self.by_pred[Pred::Funct.index()] {
                let f = &self.nodes[fid.index()].atom;
                let (a, o) = (f.arg(0), f.arg(1));
                let data_on_o: &[ConjunctId] = self
                    .by_pos
                    .get(&(Pred::Data, 0, o))
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                let mut first: Option<Term> = None;
                for &did in data_on_o {
                    let d = &self.nodes[did.index()].atom;
                    if d.arg(0) == o && d.arg(1) == a {
                        match first {
                            None => first = Some(d.arg(2)),
                            Some(v) => {
                                let rv = find(&uf, v);
                                let rw = find(&uf, d.arg(2));
                                if rv != rw {
                                    if rv.is_const() && rw.is_const() {
                                        return Err((rv.min(rw), rv.max(rw)));
                                    }
                                    // Lexicographically smaller term is the
                                    // representative (Definition 2(1)(b)).
                                    let (keep, drop) = if rv < rw { (rv, rw) } else { (rw, rv) };
                                    uf.insert(drop, keep);
                                    pending = true;
                                }
                            }
                        }
                    }
                }
            }
            if !pending {
                return Ok(changed_any);
            }
            self.commit_merge(&uf);
            changed_any = true;
        }
    }

    /// Normalizes a union-find of demanded equations into a substitution,
    /// rewrites the whole chase through it, and emits the `EgdMerge`
    /// event. Shared tail of both EGD fixpoints.
    fn commit_merge(&mut self, uf: &HashMap<Term, Term>) {
        let mut merge = Subst::new();
        let mut max_depth = 0u32;
        let keys: Vec<Term> = uf.keys().copied().collect();
        for k in keys {
            let (r, hops) = find_depth(uf, k);
            max_depth = max_depth.max(hops);
            merge.bind(k, r);
        }
        let merged = u32::try_from(merge.len()).unwrap_or(u32::MAX);
        self.apply_merge(&merge);
        self.trace.emit(|| ChaseEvent::EgdMerge {
            merged,
            depth: max_depth,
        });
    }

    /// Rewrites every conjunct and the head through `merge`, fusing
    /// conjuncts that become equal (the lower-level one wins).
    fn apply_merge(&mut self, merge: &Subst) {
        self.stats.merges += merge.len();
        for t in &mut self.head {
            *t = merge.apply(*t);
        }
        self.merge_map = self.merge_map.compose(merge);
        // Rewrite atoms of live nodes.
        let live: Vec<ConjunctId> = (0..self.nodes.len() as u32)
            .map(ConjunctId)
            .filter(|&i| self.is_live(i))
            .collect();
        self.canon.clear();
        for arr in &mut self.by_pred {
            arr.clear();
        }
        self.by_pos.clear();
        for id in live {
            let node = &mut self.nodes[id.index()];
            node.atom.apply_in_place(merge);
            let atom = node.atom;
            let level = node.level;
            match self.canon.entry(atom) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(id);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let winner = *o.get();
                    // Keep the conjunct that was generated earlier / at the
                    // lower level; redirect the other onto it.
                    let (keep, drop) = if self.nodes[winner.index()].level <= level {
                        (winner, id)
                    } else {
                        (id, winner)
                    };
                    if keep != winner {
                        o.insert(keep);
                    }
                    self.redirect[drop.index()] = keep.0;
                }
            }
        }
        // Rebuild the positional indexes from the canonical survivors, in
        // numeric id order — NOT by iterating the `canon` map, whose order
        // is randomized per `HashMap` instance. Index list order drives
        // match enumeration order, so it must be a pure function of the
        // chase history for runs to be reproducible (and for the parallel
        // and sequential engines to agree bit for bit).
        for i in 0..self.nodes.len() as u32 {
            let id = ConjunctId(i);
            if !self.is_live(id) {
                continue;
            }
            let atom = self.nodes[id.index()].atom;
            self.by_pred[atom.pred().index()].push(id);
            for (pos, &term) in atom.args().iter().enumerate() {
                self.by_pos
                    .entry((atom.pred(), pos as u8, term))
                    .or_default()
                    .push(id);
            }
        }
    }

    // ---- TGD matching -----------------------------------------------------

    /// Enumerates homomorphisms from `body` into the live conjuncts with
    /// `body[pinned]` mapped to conjunct `pinned_id`. Calls `found` with the
    /// binding and the matched conjunct per body position.
    fn match_body_pinned(
        &self,
        body: &[Atom],
        pinned: usize,
        pinned_id: ConjunctId,
        found: &mut dyn FnMut(&Subst, &[ConjunctId]),
    ) {
        // The binding is keyed strictly by *rule* variables and consulted
        // with `get`, never by rewriting the pattern: the image of a rule
        // variable is often a query variable (chase conjuncts contain
        // them as values), and a rewritten pattern could not tell such an
        // image apart from an unbound rule variable — it would be
        // spuriously re-bound instead of compared, over-applying rules.
        fn unify(pattern: &Atom, target: &Atom, s: &Subst) -> Option<Subst> {
            if pattern.pred() != target.pred() {
                return None;
            }
            let mut out = s.clone();
            for (&p, &t) in pattern.args().iter().zip(target.args()) {
                if p.is_var() {
                    match out.get(p) {
                        Some(image) => {
                            if image != t {
                                return None;
                            }
                        }
                        None => out.bind(p, t),
                    }
                } else if p != t {
                    return None;
                }
            }
            Some(out)
        }

        #[allow(clippy::too_many_arguments)] // recursive helper: state threads through
        fn rec(
            chase: &Chase,
            body: &[Atom],
            pinned: usize,
            pinned_id: ConjunctId,
            idx: usize,
            s: Subst,
            matched: &mut Vec<ConjunctId>,
            found: &mut dyn FnMut(&Subst, &[ConjunctId]),
        ) {
            if idx == body.len() {
                found(&s, matched);
                return;
            }
            if idx == pinned {
                let target = &chase.nodes[pinned_id.index()].atom;
                if let Some(s2) = unify(&body[idx], target, &s) {
                    matched.push(pinned_id);
                    rec(chase, body, pinned, pinned_id, idx + 1, s2, matched, found);
                    matched.pop();
                }
                return;
            }
            // Cloned because recursion re-borrows the chase.
            let candidates: Vec<ConjunctId> = chase.candidates(&body[idx], &s).to_vec();
            for cid in candidates {
                let target = &chase.nodes[cid.index()].atom;
                if let Some(s2) = unify(&body[idx], target, &s) {
                    matched.push(cid);
                    rec(chase, body, pinned, pinned_id, idx + 1, s2, matched, found);
                    matched.pop();
                }
            }
        }

        let mut matched = Vec::with_capacity(body.len());
        rec(
            self,
            body,
            pinned,
            pinned_id,
            0,
            Subst::new(),
            &mut matched,
            found,
        );
    }

    /// Conjuncts that already witness an existential head: same
    /// predicate, equal at every non-existential position, with all
    /// occurrences of the existential variable mapped to one common value
    /// (Definition 2(2)(ii): the rule is applicable only if *no*
    /// extension of the binding maps the head into the chase). Probes the
    /// positional index at the first non-existential head position,
    /// falling back to the per-predicate list for the degenerate
    /// all-existential head. For ρ5 (`data(O, A, ∃V)`) this probes
    /// `(data, 0, O)` — exactly the scan the specialized `Σ_FL` engine
    /// performed, in the same index order.
    fn existential_witnesses(&self, head: &Atom, ex: Term) -> Vec<ConjunctId> {
        let probe = head
            .args()
            .iter()
            .enumerate()
            .find(|&(_, &t)| t != ex)
            .map(|(pos, &t)| (pos as u8, t));
        let ids: &[ConjunctId] = match probe {
            Some((pos, t)) => self
                .by_pos
                .get(&(head.pred(), pos, t))
                .map(|v| v.as_slice())
                .unwrap_or(&[]),
            None => &self.by_pred[head.pred().index()],
        };
        ids.iter()
            .copied()
            .filter(|&id| {
                let witness = &self.nodes[id.index()].atom;
                let mut ex_image: Option<Term> = None;
                head.args().iter().zip(witness.args()).all(|(&h, &w)| {
                    if h == ex {
                        match ex_image {
                            Some(img) => img == w,
                            None => {
                                ex_image = Some(w);
                                true
                            }
                        }
                    } else {
                        h == w
                    }
                })
            })
            .collect()
    }

    // ---- main loop ----------------------------------------------------------

    /// Collects every applicable rule instance with `id` pinned in each
    /// compatible body position. Pure read of the current chase state.
    fn collect_candidates(&self, tgds: &[&Tgd], id: ConjunctId, out: &mut Vec<Candidate>) {
        let pred = self.nodes[id.index()].atom.pred();
        for tgd in tgds {
            for (pos, batom) in tgd.body.iter().enumerate() {
                if batom.pred() != pred {
                    continue;
                }
                self.match_body_pinned(&tgd.body, pos, id, &mut |s, matched| {
                    out.push(Candidate {
                        rule: tgd.id,
                        head: tgd.head.apply(s),
                        existential: tgd.existential.map(|e| s.apply(e)),
                        parents: matched.to_vec(),
                    });
                });
            }
        }
    }

    /// Discovers the applicable rule instances for a whole frontier batch,
    /// fanning the per-conjunct searches out over `threads` scoped workers.
    ///
    /// Discovery is a *pure read* of the chase (the state is frozen for
    /// the duration of the batch), so the workers need no synchronisation.
    /// Each worker takes a contiguous chunk of the frontier and the chunk
    /// results are concatenated in frontier order, so the returned
    /// candidate sequence is a pure function of the chase state — the
    /// thread count affects wall-clock time only, never the result.
    /// A worker panic is caught at the join and surfaced as
    /// [`ChaseError::WorkerFailed`] instead of unwinding through the
    /// scope: one poisoned query pair must not abort the process (or a
    /// whole `contains_batch`). Every handle is joined before returning,
    /// so no worker outlives the call even on failure.
    fn discover(
        &self,
        tgds: &[&Tgd],
        frontier: &[ConjunctId],
        threads: usize,
    ) -> Result<Vec<Candidate>, ChaseError> {
        let threads = threads.min(frontier.len());
        if threads <= 1 {
            let mut out = Vec::new();
            for &id in frontier {
                self.collect_candidates(tgds, id, &mut out);
            }
            return Ok(out);
        }
        let chunk_size = frontier.len().div_ceil(threads);
        let mut per_chunk: Vec<Vec<Candidate>> = Vec::with_capacity(threads);
        let mut failure: Option<ChaseError> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk_size)
                .enumerate()
                .map(|(i, chunk)| {
                    // Worker slot i+1: slot 0 is the coordinating thread.
                    // Handles are derived before spawning so ring creation
                    // happens in deterministic chunk order.
                    let worker_trace = self.trace.worker((i + 1) as u32);
                    scope.spawn(move || {
                        #[cfg(test)]
                        if INJECT_WORKER_PANIC.load(std::sync::atomic::Ordering::Relaxed) {
                            panic!("injected discovery worker panic");
                        }
                        let mut out = Vec::new();
                        for &id in chunk {
                            self.collect_candidates(tgds, id, &mut out);
                        }
                        worker_trace.emit(|| ChaseEvent::DiscoveryChunk {
                            conjuncts: chunk.len() as u64,
                            candidates: out.len() as u64,
                        });
                        out
                    })
                })
                .collect();
            // Joining in spawn order is the deterministic merge step. Keep
            // joining after a failure so the scope exits with every worker
            // accounted for (an unjoined panicked handle would re-panic).
            for h in handles {
                match h.join() {
                    Ok(chunk) => per_chunk.push(chunk),
                    Err(payload) => {
                        failure.get_or_insert(ChaseError::WorkerFailed {
                            detail: panic_detail(payload.as_ref()),
                        });
                    }
                }
            }
        });
        match failure {
            Some(err) => Err(err),
            None => Ok(per_chunk.into_iter().flatten().collect()),
        }
    }

    /// Runs the chase with the given rules until fixpoint (up to the level
    /// bound). `tgds` is a subset of the active rule set's TGDs; the
    /// active EGDs (ρ4, or the custom set's) are always drained eagerly.
    ///
    /// The loop is *frontier-batched* (semi-naive): each round discovers
    /// the rule instances pinned on the conjuncts of the current frontier
    /// against a frozen snapshot — in parallel when
    /// [`ChaseOptions::threads`] asks for it — and then applies them
    /// sequentially in frontier order. Conjuncts created by a round form
    /// the next frontier. Every new match involves at least one conjunct
    /// that did not exist when the previous snapshot was taken, and that
    /// conjunct is pinned in a later round, so no application is ever
    /// missed; a ρ4 merge resets the frontier to every live conjunct, as
    /// merges can enable matches among old conjuncts.
    /// Returns `Err` only for a true engine failure (a panicked discovery
    /// worker); budget exhaustion is *not* an error — it ends the run
    /// early with [`ChaseOutcome::Exhausted`] and the partial chase
    /// intact. The governor is observed at frontier-round boundaries plus
    /// every [`CHECK_EVERY`] candidates inside a round; the step cap is
    /// checked per candidate because it is the deterministic limit.
    fn run(&mut self, tgds: &[&Tgd], opts: &ChaseOptions) -> Result<(), ChaseError> {
        let threads = if opts.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            opts.threads
        };
        // Keep the conjunct cap below the `u32` id space so `insert` can
        // never run out of ids before the cap fires.
        let max_conjuncts = opts.max_conjuncts.min(u32::MAX as usize - 1);
        let governed = !opts.budget.is_unlimited();
        let mut frontier: Vec<ConjunctId> = self.live_ids();

        // Initial EGD drain (the query body itself may violate an EGD).
        match self.drain_egds() {
            Err((l, r)) => {
                self.outcome = ChaseOutcome::Failed { left: l, right: r };
                return Ok(());
            }
            Ok(true) => {
                frontier = self.live_ids();
            }
            Ok(false) => {}
        }

        let mut round: u32 = 0;
        while !frontier.is_empty() {
            if governed {
                if let Some(reason) = self.governor_checkpoint(&opts.budget) {
                    self.exhaust(reason);
                    return Ok(());
                }
            }
            // Frontier snapshot event. Guarded: `max_level` is an O(n)
            // scan we must not pay when tracing is off.
            if self.trace.is_enabled() {
                let (frontier_len, atoms, max_level) =
                    (frontier.len() as u64, self.len() as u64, self.max_level());
                self.trace.emit(|| ChaseEvent::Frontier {
                    round,
                    max_level,
                    frontier: frontier_len,
                    atoms,
                });
            }
            round = round.saturating_add(1);
            let candidates = self.discover(tgds, &frontier, threads)?;

            let mut next: Vec<ConjunctId> = Vec::new();
            let mut added_any = false;
            for cand in candidates {
                self.stats.steps += 1;
                if let Some(max_steps) = opts.budget.max_steps {
                    if self.stats.steps > max_steps {
                        self.exhaust(ExhaustReason::Steps);
                        return Ok(());
                    }
                }
                if governed && self.stats.steps % CHECK_EVERY == 0 {
                    if let Some(reason) = self.governor_checkpoint(&opts.budget) {
                        self.exhaust(reason);
                        return Ok(());
                    }
                }
                // Re-validate against conjuncts added earlier in this
                // round (the snapshot the candidate was discovered on is
                // one round old by now).
                let head = cand.head.apply(&self.merge_map);
                let parents: Vec<ConjunctId> =
                    cand.parents.iter().map(|&p| self.resolve(p)).collect();
                if parents.iter().any(|&p| !self.is_live(p)) {
                    continue;
                }
                let parent_level = parents
                    .iter()
                    .map(|&p| self.nodes[p.index()].level)
                    .max()
                    .unwrap_or(0);
                let new_level = parent_level + 1;

                match cand.existential {
                    None => {
                        if let Some(&existing) = self.canon.get(&head) {
                            // Conclusion already present: cross-arcs
                            // (Definition 3(4)(i)).
                            if self.record_cross {
                                for &p in &parents {
                                    self.add_arc(p, existing, cand.rule, true);
                                }
                            }
                            continue;
                        }
                        if new_level > opts.level_bound {
                            self.hit_bound = true;
                            continue;
                        }
                        if self.nodes.len() >= max_conjuncts {
                            self.exhaust(ExhaustReason::Conjuncts);
                            return Ok(());
                        }
                        let Some((nid, new)) =
                            self.insert(head, new_level, Some(cand.rule), parents.clone())
                        else {
                            self.exhaust(ExhaustReason::Conjuncts);
                            return Ok(());
                        };
                        debug_assert!(new);
                        self.stats.record_application(cand.rule);
                        let rule_index = u8::try_from(cand.rule.index()).unwrap_or(u8::MAX);
                        self.trace.emit(|| ChaseEvent::RuleFired {
                            rule: rule_index,
                            level: new_level,
                        });
                        for &p in &parents {
                            self.add_arc(p, nid, cand.rule, false);
                        }
                        next.push(nid);
                        added_any = true;
                    }
                    Some(ex) => {
                        // Existential TGD: applicable only if no extension of
                        // the binding maps the head into the chase
                        // (Definition 2(2)(ii)).
                        let witnesses = self.existential_witnesses(&head, ex);
                        if !witnesses.is_empty() {
                            if self.record_cross {
                                for w in witnesses {
                                    for &p in &parents {
                                        self.add_arc(p, w, cand.rule, true);
                                    }
                                }
                            }
                            continue;
                        }
                        if new_level > opts.level_bound {
                            self.hit_bound = true;
                            continue;
                        }
                        if self.nodes.len() >= max_conjuncts {
                            self.exhaust(ExhaustReason::Conjuncts);
                            return Ok(());
                        }
                        let fresh_null = self.nulls.fresh();
                        let fresh = Term::Null(fresh_null);
                        self.stats.nulls_invented += 1;
                        self.trace.emit(|| ChaseEvent::NullInvented {
                            null: fresh_null.0,
                            level: new_level,
                        });
                        let mut s = Subst::new();
                        s.bind(ex, fresh);
                        let head = head.apply(&s);
                        let Some((nid, new)) =
                            self.insert(head, new_level, Some(cand.rule), parents.clone())
                        else {
                            self.exhaust(ExhaustReason::Conjuncts);
                            return Ok(());
                        };
                        debug_assert!(new);
                        self.stats.record_application(cand.rule);
                        let rule_index = u8::try_from(cand.rule.index()).unwrap_or(u8::MAX);
                        self.trace.emit(|| ChaseEvent::RuleFired {
                            rule: rule_index,
                            level: new_level,
                        });
                        for &p in &parents {
                            self.add_arc(p, nid, cand.rule, false);
                        }
                        next.push(nid);
                        added_any = true;
                    }
                }
            }

            if added_any {
                // Definition 2: EGDs are drained after TGD applications.
                match self.drain_egds() {
                    Err((l, r)) => {
                        self.outcome = ChaseOutcome::Failed { left: l, right: r };
                        return Ok(());
                    }
                    Ok(true) => {
                        // Merges may enable matches among old conjuncts:
                        // reprocess everything still live.
                        next = self.live_ids();
                    }
                    Ok(false) => {}
                }
            }
            frontier = next;
        }

        self.outcome = if self.hit_bound {
            ChaseOutcome::LevelBounded
        } else {
            ChaseOutcome::Completed
        };
        Ok(())
    }

    fn live_ids(&self) -> Vec<ConjunctId> {
        (0..self.nodes.len() as u32)
            .map(ConjunctId)
            .filter(|&i| self.is_live(i))
            .collect()
    }

    /// Resets every live conjunct to level 0 (the Section 4 convention for
    /// `chase⁻`: "we will view all tuples in `chase_{Σ−}` as being at level
    /// 0").
    fn reset_levels(&mut self) {
        for n in &mut self.nodes {
            n.level = 0;
        }
    }
}

/// Walks a union-find parent chain; returns the root and the number of
/// hops (the depth reported by `EgdMerge` events).
fn find_depth(uf: &HashMap<Term, Term>, mut t: Term) -> (Term, u32) {
    let mut hops = 0u32;
    while let Some(&p) = uf.get(&t) {
        if p == t {
            break;
        }
        t = p;
        hops += 1;
    }
    (t, hops)
}

/// The root of `t` in a union-find of demanded equations.
fn find(uf: &HashMap<Term, Term>, t: Term) -> Term {
    find_depth(uf, t).0
}

/// Test-only switch that makes every spawned discovery worker panic, so
/// the join-error path is exercisable without a genuinely buggy rule.
#[cfg(test)]
static INJECT_WORKER_PANIC: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Renders a worker's panic payload for [`ChaseError::WorkerFailed`].
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn sigma_tgds(include_rho5: bool) -> Vec<&'static Tgd> {
    sigma_fl()
        .iter()
        .filter_map(|r| match r {
            SigmaRule::Tgd(t) if include_rho5 || t.id != RuleId::R5 => Some(t),
            _ => None,
        })
        .collect()
}

/// Computes `chase⁻(q) = chase_{Σ_FL − ρ5}(q)`: the preliminary chase of
/// Section 4. It always terminates ("no new constant is generated"); all
/// of its conjuncts are assigned level 0.
///
/// ```
/// use flogic_syntax::parse_query;
/// use flogic_model::Atom;
/// use flogic_term::Term;
/// let q = parse_query("q(X) :- member(X, c1), sub(c1, c2).").unwrap();
/// let chase = flogic_chase::chase_minus(&q);
/// // rho3 derived member(X, c2).
/// let derived = Atom::member(Term::var("X"), Term::constant("c2"));
/// assert!(chase.find(&derived).is_some());
/// ```
pub fn chase_minus(q: &ConjunctiveQuery) -> Chase {
    match chase_minus_with(q, &ChaseOptions::default()) {
        Ok(chase) => chase,
        // Default options run sequentially (threads = 1): no discovery
        // worker is ever spawned, so WorkerFailed cannot occur.
        Err(e) => unreachable!("sequential chase⁻ cannot fail: {e}"),
    }
}

/// [`chase_minus`] with explicit options. The level bound is ignored —
/// `chase⁻` terminates on its own and all of its conjuncts are at level 0
/// by convention — but the conjunct cap, thread count, and budget are
/// honoured.
///
/// `Err` means a discovery worker panicked ([`ChaseError::WorkerFailed`]);
/// budget exhaustion is reported through [`ChaseOutcome::Exhausted`] on
/// the returned (partial) chase instead.
pub fn chase_minus_with(q: &ConjunctiveQuery, opts: &ChaseOptions) -> Result<Chase, ChaseError> {
    Metrics::global().time_chase(|| {
        let mut chase = Chase::new(q);
        chase.trace = opts.trace.clone();
        if chase.is_exhausted() {
            return Ok(chase);
        }
        let run_opts = ChaseOptions {
            level_bound: u32::MAX,
            ..opts.clone()
        };
        // Structurally-Σ_FL sets take the specialized built-in path, so a
        // parsed copy of the shipped rules is bit-identical to the default.
        let tgds: Vec<&Tgd> = if opts.sigma.is_sigma_fl() {
            sigma_tgds(false)
        } else {
            chase.custom_egds = Some(opts.sigma.egds().into_iter().cloned().collect());
            opts.sigma.datalog_tgds()
        };
        let _span = chase.trace.span(SpanKind::ChaseMinus);
        chase.run(&tgds, &run_opts)?;
        chase.reset_levels();
        Ok(chase)
    })
}

/// Computes the level-bounded chase of `q` w.r.t. all of `Σ_FL`: first
/// `chase⁻` (level 0), then the bounded phase in which ρ5 may invent
/// fresh values and levels grow up to `level_bound` (Definition 3).
///
/// With `level_bound = 2·|q1|·|q2|` this is exactly the prefix that
/// Theorem 12 proves sufficient for containment checking.
///
/// Both phases observe the same [`ChaseOptions::budget`] (step counts and
/// the conjunct cap accumulate across them). `Err` means a discovery
/// worker panicked; exhaustion ends the run early with
/// [`ChaseOutcome::Exhausted`] and the partial chase intact.
pub fn chase_bounded(q: &ConjunctiveQuery, opts: &ChaseOptions) -> Result<Chase, ChaseError> {
    Metrics::global().time_chase(|| {
        let mut chase = Chase::new(q);
        chase.trace = opts.trace.clone();
        if chase.is_exhausted() {
            return Ok(chase);
        }
        let prelim = ChaseOptions {
            level_bound: u32::MAX,
            ..opts.clone()
        };
        let builtin = opts.sigma.is_sigma_fl();
        let prelim_tgds: Vec<&Tgd> = if builtin {
            sigma_tgds(false)
        } else {
            chase.custom_egds = Some(opts.sigma.egds().into_iter().cloned().collect());
            opts.sigma.datalog_tgds()
        };
        {
            let _span = chase.trace.span(SpanKind::ChaseMinus);
            chase.run(&prelim_tgds, &prelim)?;
        }
        if chase.is_failed() || chase.is_exhausted() {
            return Ok(chase);
        }
        chase.reset_levels();
        chase.hit_bound = false;
        chase.record_cross = true;
        let all_tgds: Vec<&Tgd> = if builtin {
            sigma_tgds(true)
        } else {
            opts.sigma.tgds()
        };
        let _span = chase.trace.span(SpanKind::ChaseBounded);
        chase.run(&all_tgds, opts)?;
        Ok(chase)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_syntax::parse_query;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }
    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn chase_minus_saturates_subclass_hierarchy() {
        let q = parse_query("q(X) :- member(X, c1), sub(c1, c2), sub(c2, c3).").unwrap();
        let chase = chase_minus(&q);
        assert_eq!(chase.outcome(), ChaseOutcome::Completed);
        // ρ2 adds sub(c1,c3); ρ3 adds member(X,c2), member(X,c3).
        assert!(chase.find(&Atom::sub(c("c1"), c("c3"))).is_some());
        assert!(chase.find(&Atom::member(v("X"), c("c2"))).is_some());
        assert!(chase.find(&Atom::member(v("X"), c("c3"))).is_some());
        assert_eq!(chase.len(), 6);
        // All conjuncts at level 0 by the Section 4 convention.
        assert_eq!(chase.max_level(), 0);
    }

    #[test]
    fn example_1_head_rewriting() {
        // Example 1 of the paper: funct is inherited to the member (ρ12)
        // and then ρ4 merges V2 into V1, changing the head.
        let q =
            parse_query("q(V1, V2) :- data(O, A, V1), data(O, A, V2), funct(A, C), member(O, C).")
                .unwrap();
        let chase = chase_minus(&q);
        assert_eq!(chase.outcome(), ChaseOutcome::Completed);
        assert!(
            chase.find(&Atom::funct(v("A"), v("O"))).is_some(),
            "rho12 fired"
        );
        assert_eq!(chase.head(), &[v("V1"), v("V1")], "head rewritten by rho4");
        // The two data conjuncts fused into one.
        let data_count = chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Data)
            .count();
        assert_eq!(data_count, 1);
    }

    #[test]
    fn egd_failure_on_distinct_constants() {
        let q = parse_query("q() :- data(o, a, 1), data(o, a, 2), funct(a, o).").unwrap();
        let chase = chase_minus(&q);
        assert!(chase.is_failed());
        let ChaseOutcome::Failed { left, right } = chase.outcome() else {
            panic!()
        };
        assert_eq!((left, right), (c("1"), c("2")));
    }

    #[test]
    fn egd_merges_var_into_constant() {
        let q = parse_query("q(V) :- data(o, a, V), data(o, a, 5), funct(a, o).").unwrap();
        let chase = chase_minus(&q);
        assert!(!chase.is_failed());
        assert_eq!(chase.head(), &[c("5")]);
    }

    #[test]
    fn example_2_bounded_chase_unrolls_the_cycle() {
        // Example 2: q() :- mandatory(A,T), type(T,A,T), sub(T,U).
        let q = parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 8,
                max_conjuncts: 100_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(chase.outcome(), ChaseOutcome::LevelBounded);
        // The ρ5-ρ1-ρ6-ρ10 pump: data(T,A,_v1), member(_v1,T), type(_v1,A,T),
        // mandatory(A,_v1), then data(_v1,A,_v2), ...
        let data_atoms: Vec<&Atom> = chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Data)
            .map(|(_, a, _)| a)
            .collect();
        assert!(
            data_atoms.len() >= 2,
            "cycle unrolled at least twice: {data_atoms:?}"
        );
        assert!(chase.stats().nulls_invented >= 2);
        // Branching via ρ3: member(_v1, U).
        let member_u = chase
            .conjuncts()
            .any(|(_, a, _)| a.pred() == Pred::Member && a.arg(1) == v("U") && a.arg(0).is_null());
        assert!(member_u, "rho3 branch member(_vi, U) exists");
        assert!(chase.max_level() <= 8);
    }

    #[test]
    fn bounded_chase_of_acyclic_query_completes() {
        let q = parse_query("q(A) :- mandatory(A, t), type(t, A, u).").unwrap();
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 50,
                max_conjuncts: 100_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(chase.outcome(), ChaseOutcome::Completed);
        // ρ5 invents one value; ρ1 types it; ρ6/ρ10 do not cycle since u
        // has no mandatory attribute.
        assert_eq!(chase.stats().nulls_invented, 1);
        let data: Vec<&Atom> = chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Data)
            .map(|(_, a, _)| a)
            .collect();
        assert_eq!(data.len(), 1);
        assert!(data[0].arg(2).is_null());
        // member(_v1, u) from ρ1.
        assert!(chase
            .conjuncts()
            .any(|(_, a, _)| a.pred() == Pred::Member && a.arg(1) == c("u")));
    }

    #[test]
    fn rho5_not_applicable_when_value_exists() {
        let q = parse_query("q() :- mandatory(a, t), data(t, a, w).").unwrap();
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 50,
                max_conjuncts: 100_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(chase.outcome(), ChaseOutcome::Completed);
        assert_eq!(chase.stats().nulls_invented, 0);
    }

    #[test]
    fn levels_grow_along_the_pump() {
        let q = parse_query("q() :- mandatory(A, T), type(T, A, T).").unwrap();
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 9,
                max_conjuncts: 100_000,
                ..Default::default()
            },
        )
        .unwrap();
        // data at level 1, member at 2, type at 3, mandatory at 3 (type,
        // member parents), next data at 4 ... strictly increasing chain.
        let mut levels: Vec<u32> = chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Data)
            .map(|(_, _, l)| l)
            .collect();
        levels.sort_unstable();
        assert!(levels.windows(2).all(|w| w[0] < w[1]), "{levels:?}");
        assert_eq!(levels[0], 1);
    }

    #[test]
    fn cross_arcs_recorded_in_bounded_phase() {
        // type(T,A,T) + sub(T,U) gives type(T,A,U) at level 0 already; in
        // the bounded phase the same derivations re-fire as cross-arcs.
        let q = parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 6,
                max_conjuncts: 100_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(chase.arcs().any(|a| a.cross), "at least one cross-arc");
    }

    #[test]
    fn ids_survive_merges() {
        let q = parse_query("q(V) :- data(o, a, V), data(o, a, 5), funct(a, o).").unwrap();
        let chase = chase_minus(&q);
        // Whatever id we look up, atoms resolve.
        for (id, atom, _) in chase.conjuncts() {
            assert_eq!(chase.atom(id), atom);
        }
        assert_eq!(chase.merge_map().apply(v("V")), c("5"));
    }

    #[test]
    fn truncation_cap_applies() {
        let q = parse_query("q() :- mandatory(A, T), type(T, A, T).").unwrap();
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: u32::MAX,
                max_conjuncts: 40,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            chase.outcome(),
            ChaseOutcome::Exhausted {
                reason: ExhaustReason::Conjuncts
            }
        );
        assert!(chase.len() <= 41);
    }

    #[test]
    fn worker_panic_is_caught_as_worker_failed() {
        // The injection flag makes every spawned discovery worker panic;
        // the sequential path spawns none, so only threaded runs fail.
        let q = parse_query("q(X) :- member(X, c1), sub(c1, c2), sub(c2, c3).").unwrap();
        INJECT_WORKER_PANIC.store(true, std::sync::atomic::Ordering::Relaxed);
        let threaded = chase_minus_with(
            &q,
            &ChaseOptions {
                threads: 2,
                ..Default::default()
            },
        );
        let sequential = chase_minus_with(&q, &ChaseOptions::default());
        INJECT_WORKER_PANIC.store(false, std::sync::atomic::Ordering::Relaxed);
        match threaded {
            Err(ChaseError::WorkerFailed { detail }) => {
                assert!(detail.contains("injected"), "{detail}");
            }
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
        // The process survived, and the sequential engine is unaffected.
        assert_eq!(sequential.unwrap().outcome(), ChaseOutcome::Completed);
    }

    #[test]
    fn pre_cancelled_token_stops_before_round_one() {
        let q = parse_query("q() :- mandatory(A, T), type(T, A, T).").unwrap();
        let budget = Budget::default();
        budget.cancel.cancel();
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                budget,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            chase.outcome(),
            ChaseOutcome::Exhausted {
                reason: ExhaustReason::Cancelled
            }
        );
        // Only the query body was materialized: the token was observed at
        // the first checkpoint, before any frontier round ran.
        assert_eq!(chase.len(), q.size());
    }

    #[test]
    fn elapsed_deadline_exhausts_immediately() {
        let q = parse_query("q() :- mandatory(A, T), type(T, A, T).").unwrap();
        let budget = Budget::with_timeout(std::time::Duration::ZERO);
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                budget,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            chase.outcome(),
            ChaseOutcome::Exhausted {
                reason: ExhaustReason::Deadline
            }
        );
        assert!(chase.len() >= q.size(), "partial chase retained");
    }

    #[test]
    fn step_budget_is_deterministic_across_thread_counts() {
        let q = parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
        let run = |threads: usize| {
            chase_bounded(
                &q,
                &ChaseOptions {
                    threads,
                    budget: Budget::unlimited().steps(200),
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let a = run(1);
        assert_eq!(
            a.outcome(),
            ChaseOutcome::Exhausted {
                reason: ExhaustReason::Steps
            }
        );
        for threads in [2, 4] {
            let b = run(threads);
            assert_eq!(a.outcome(), b.outcome());
            assert_eq!(a.len(), b.len(), "threads={threads}");
            assert_eq!(a.stats(), b.stats(), "threads={threads}");
            assert_eq!(a.max_level(), b.max_level(), "threads={threads}");
        }
    }

    #[test]
    fn byte_budget_exhausts_pump() {
        let q = parse_query("q() :- mandatory(A, T), type(T, A, T).").unwrap();
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                budget: Budget::unlimited().bytes(16 * 1024),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            chase.outcome(),
            ChaseOutcome::Exhausted {
                reason: ExhaustReason::Bytes
            }
        );
        // The estimate is checked at round boundaries, so the overshoot is
        // at most one round of the pump.
        assert!(chase.approx_bytes() < 10 * 16 * 1024);
    }

    #[test]
    fn parents_and_rules_recorded() {
        let q = parse_query("q(X) :- member(X, c1), sub(c1, c2).").unwrap();
        let chase = chase_minus(&q);
        let derived = chase.find(&Atom::member(v("X"), c("c2"))).unwrap();
        assert_eq!(chase.rule_of(derived), Some(RuleId::R3));
        let parents = chase.parents_of(derived);
        assert_eq!(parents.len(), 2);
        let parent_atoms: Vec<&Atom> = parents.iter().map(|&p| chase.atom(p)).collect();
        assert!(parent_atoms.contains(&&Atom::member(v("X"), c("c1"))));
        assert!(parent_atoms.contains(&&Atom::sub(c("c1"), c("c2"))));
    }
}
