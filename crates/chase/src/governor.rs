//! Resource governor for chase runs: wall-clock deadlines, step and byte
//! budgets, and cooperative cancellation.
//!
//! The governor is observed at *chase-level granularity*: the engine checks
//! the budget at frontier-round boundaries (and at deterministic per-candidate
//! counts for the step budget). Checks only ever *read* state — they never
//! reorder rule applications — so a run that finishes without exhausting its
//! budget is bit-identical to an ungoverned run, for every thread count.
//! A run that does exhaust its budget ends with
//! [`ChaseOutcome::Exhausted`](crate::ChaseOutcome::Exhausted) and keeps the
//! partial chase (conjuncts, levels, stats) for the caller to inspect.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative cancellation handle.
///
/// Cloning shares the flag: cancel any clone and every chase run holding one
/// observes it at its next checkpoint (within one frontier round). A default
/// token is fresh and uncancelled.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resource limits for a chase run (and everything built on top of one).
///
/// The default budget is unlimited: no deadline, no step or byte cap, and a
/// fresh cancellation token nobody else holds. Limits compose — the first
/// one exceeded ends the run with the matching [`ExhaustReason`].
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock deadline; the run stops at the first checkpoint past it.
    pub deadline: Option<Instant>,
    /// Cap on resolution steps (candidate rule instances examined). Unlike
    /// the deadline this is a deterministic, count-based limit: the same
    /// budget exhausts at the same point for every thread count.
    pub max_steps: Option<u64>,
    /// Approximate cap on bytes materialized by the chase graph.
    pub max_bytes: Option<usize>,
    /// Cooperative cancellation; checked at every checkpoint.
    pub cancel: CancelToken,
}

impl Budget {
    /// An unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget whose deadline is `timeout` from *now*. Computing the
    /// deadline eagerly means one budget value can govern a whole batch:
    /// every pair shares the same absolute deadline.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + timeout),
            ..Budget::default()
        }
    }

    /// Sets the step cap (builder style).
    pub fn steps(mut self, max_steps: u64) -> Budget {
        self.max_steps = Some(max_steps);
        self
    }

    /// Sets the approximate byte cap (builder style).
    pub fn bytes(mut self, max_bytes: usize) -> Budget {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Attaches a cancellation token (builder style).
    pub fn cancelled_by(mut self, token: CancelToken) -> Budget {
        self.cancel = token;
        self
    }

    /// True when no limit is set and the token is uncancelled — the engine
    /// uses this to skip checkpoint bookkeeping entirely on the hot path.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_steps.is_none()
            && self.max_bytes.is_none()
            && !self.cancel.is_cancelled()
    }
}

/// Which limit ended an exhausted chase run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExhaustReason {
    /// The `max_conjuncts` cap was hit.
    Conjuncts,
    /// The wall-clock deadline passed.
    Deadline,
    /// The resolution-step cap was hit.
    Steps,
    /// The approximate byte cap was hit.
    Bytes,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExhaustReason::Conjuncts => "conjunct cap",
            ExhaustReason::Deadline => "deadline",
            ExhaustReason::Steps => "step cap",
            ExhaustReason::Bytes => "byte cap",
            ExhaustReason::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// A true error from the chase engine — as opposed to budget exhaustion,
/// which is an *outcome* ([`ChaseOutcome::Exhausted`]) carrying the partial
/// chase.
///
/// [`ChaseOutcome::Exhausted`]: crate::ChaseOutcome::Exhausted
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// A parallel discovery worker panicked. The panic is caught at the
    /// join, so one poisoned query pair cannot abort the whole process
    /// (or a whole `contains_batch`).
    WorkerFailed {
        /// The worker's panic payload, when it was a string.
        detail: String,
    },
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::WorkerFailed { detail } => {
                write!(f, "chase discovery worker failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ChaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(u.is_cancelled());
    }

    #[test]
    fn default_budget_is_unlimited() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        assert!(Budget::unlimited().is_unlimited());
    }

    #[test]
    fn builders_set_limits() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        assert!(!b.is_unlimited());
        assert!(b.deadline.is_some());
        let b = Budget::unlimited().steps(10).bytes(1 << 20);
        assert_eq!(b.max_steps, Some(10));
        assert_eq!(b.max_bytes, Some(1 << 20));
        let t = CancelToken::new();
        let b = Budget::unlimited().cancelled_by(t.clone());
        assert!(b.is_unlimited());
        t.cancel();
        assert!(!b.is_unlimited());
    }

    #[test]
    fn reasons_and_errors_display() {
        for (r, s) in [
            (ExhaustReason::Conjuncts, "conjunct cap"),
            (ExhaustReason::Deadline, "deadline"),
            (ExhaustReason::Steps, "step cap"),
            (ExhaustReason::Bytes, "byte cap"),
            (ExhaustReason::Cancelled, "cancelled"),
        ] {
            assert_eq!(r.to_string(), s);
        }
        let e = ChaseError::WorkerFailed {
            detail: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
    }
}
