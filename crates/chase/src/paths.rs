//! Primary paths (Definition 7) and parallel paths (Definition 8) — the
//! structures behind the excision argument of Lemmas 9–11.
//!
//! A *primary path* follows the chase's generation chains from low levels
//! to high ones: each arc is either primary (level `k` → `k + 1`) or the
//! special `type`-conjunct hop of Definition 7(ii) (a `type` conjunct's
//! outgoing generation arc reaches a conjunct two levels up, because ρ1
//! combines it with the `data` conjunct invented in between). Two paths
//! are *parallel* when their arcs carry the same rule labels position by
//! position — the paper uses parallel paths to "excise" repeated segments
//! and pull homomorphism images below the Theorem 12 level bound.

use flogic_model::RuleId;

use crate::engine::Chase;
use crate::graph::{equivalent_conjuncts, ChaseArc, ConjunctId};

/// A path in the chase graph: the visited conjuncts and the arcs between
/// them (`arcs.len() == nodes.len() - 1`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// The conjuncts on the path, in order.
    pub nodes: Vec<ConjunctId>,
    /// The arcs traversed.
    pub arcs: Vec<ChaseArc>,
}

impl Path {
    /// Number of arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// True for the single-node path.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// The rule labels along the path.
    pub fn labels(&self) -> Vec<RuleId> {
        self.arcs.iter().map(|a| a.rule).collect()
    }
}

/// Is `arc` admissible in a primary path (Definition 7)?
///
/// Either (i) a primary arc (level +1), or (ii) an arc out of a `type`
/// conjunct that lands two levels up. Cross-arcs are excluded: they record
/// *suppressed duplicate* derivations, and the uniqueness of primary paths
/// (used in the Lemma 11 proof) only holds for the generation structure.
pub fn is_primary_path_arc(chase: &Chase, arc: &ChaseArc) -> bool {
    if arc.cross {
        return false;
    }
    let from_level = chase.level(arc.from);
    let to_level = chase.level(arc.to);
    if to_level == from_level + 1 {
        return true;
    }
    let from_is_type = chase.atom(arc.from).pred() == flogic_model::Pred::Type;
    from_is_type && to_level == from_level + 2
}

/// Enumerates the primary-path arcs leaving `node`.
fn primary_successors(chase: &Chase, node: ConjunctId) -> Vec<ChaseArc> {
    chase
        .arcs()
        .filter(|a| a.from == node && is_primary_path_arc(chase, a))
        .collect()
}

/// Finds a primary path from `from` to `to`, if one exists (DFS over
/// primary-path arcs; the paper argues such paths are essentially unique —
/// [`max_primary_path_multiplicity`] measures the ρ1-diamond slack).
pub fn primary_path(chase: &Chase, from: ConjunctId, to: ConjunctId) -> Option<Path> {
    fn dfs(
        chase: &Chase,
        current: ConjunctId,
        to: ConjunctId,
        nodes: &mut Vec<ConjunctId>,
        arcs: &mut Vec<ChaseArc>,
    ) -> bool {
        if current == to {
            return true;
        }
        for arc in primary_successors(chase, current) {
            // Levels strictly increase along primary-path arcs, so the
            // search cannot cycle.
            nodes.push(arc.to);
            arcs.push(arc);
            if dfs(chase, arc.to, to, nodes, arcs) {
                return true;
            }
            arcs.pop();
            nodes.pop();
        }
        false
    }
    let mut nodes = vec![from];
    let mut arcs = Vec::new();
    dfs(chase, from, to, &mut nodes, &mut arcs).then_some(Path { nodes, arcs })
}

/// Counts distinct primary paths between two conjuncts (used to validate
/// the uniqueness claim in the proof of Lemma 11).
pub fn count_primary_paths(chase: &Chase, from: ConjunctId, to: ConjunctId) -> usize {
    fn dfs(chase: &Chase, current: ConjunctId, to: ConjunctId) -> usize {
        if current == to {
            return 1;
        }
        primary_successors(chase, current)
            .into_iter()
            .map(|arc| dfs(chase, arc.to, to))
            .sum()
    }
    dfs(chase, from, to)
}

/// The largest number of distinct primary paths between any pair of
/// conjuncts.
///
/// The Lemma 11 proof sketch speaks of primary paths being "unique"; in
/// the literal Definition 7 reading they are unique *per premise choice*
/// but rule ρ1 has two premises (`type` via the +2 hop and `data` via the
/// +1 arc), so a bounded diamond multiplicity arises: both routes traverse
/// the same pump segment and land on the same conjunct. The multiplicity
/// is bounded by `2^(pump iterations)` in principle but the *labels* of
/// the two routes differ only in the ρ1-premise choice, so the excision
/// argument is unaffected. This function lets tests pin the observed
/// multiplicity.
pub fn max_primary_path_multiplicity(chase: &Chase) -> usize {
    let ids: Vec<ConjunctId> = chase.conjuncts().map(|(id, _, _)| id).collect();
    let mut max = 0;
    for &from in &ids {
        for &to in &ids {
            if chase.level(to) > chase.level(from) {
                max = max.max(count_primary_paths(chase, from, to));
            }
        }
    }
    max
}

/// Are two paths *parallel* (Definition 8)? Same length, and the arcs at
/// each position are labelled with the same rule (which forces the visited
/// conjuncts to have the same relation symbols).
pub fn parallel(p1: &Path, p2: &Path) -> bool {
    p1.len() == p2.len() && p1.arcs.iter().zip(&p2.arcs).all(|(a, b)| a.rule == b.rule)
}

/// Finds a pair of *equivalent* conjuncts (Definition 6) on a path, i.e.
/// the repetition that the Lemma 9 excision removes. Returns positions
/// `(i, j)` with `i < j`.
pub fn find_equivalent_pair(chase: &Chase, path: &Path) -> Option<(usize, usize)> {
    for i in 0..path.nodes.len() {
        for j in (i + 1)..path.nodes.len() {
            if equivalent_conjuncts(chase.atom(path.nodes[i]), chase.atom(path.nodes[j])) {
                return Some((i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{chase_bounded, ChaseOptions};
    use flogic_model::{Atom, Pred};
    use flogic_syntax::parse_query;
    use flogic_term::Term;

    fn example2(bound: u32) -> Chase {
        let q = parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
        chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: bound,
                max_conjuncts: 100_000,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn primary_path_follows_the_pump() {
        let chase = example2(9);
        let start = chase
            .find(&Atom::mandatory(Term::var("A"), Term::var("T")))
            .unwrap();
        // Find a deep data conjunct.
        let deep = chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Data)
            .max_by_key(|&(_, _, l)| l)
            .map(|(id, _, _)| id)
            .unwrap();
        let path = primary_path(&chase, start, deep).expect("pump is connected");
        assert!(path.len() >= 3);
        // Levels never decrease along the path.
        let levels: Vec<u32> = path.nodes.iter().map(|&n| chase.level(n)).collect();
        assert!(levels.windows(2).all(|w| w[1] > w[0]), "{levels:?}");
        // The path uses rho5 repeatedly (the pump).
        assert!(
            path.labels()
                .iter()
                .filter(|&&r| r == flogic_model::RuleId::R5)
                .count()
                >= 1
        );
    }

    #[test]
    fn type_conjuncts_use_the_two_level_hop() {
        // Definition 7(ii): arcs out of type conjuncts may jump +2 levels.
        let chase = example2(9);
        let hop = chase.arcs().any(|a| {
            chase.atom(a.from).pred() == Pred::Type
                && chase.level(a.to) == chase.level(a.from) + 2
                && is_primary_path_arc(&chase, &a)
        });
        assert!(hop, "the +2 hop of Definition 7(ii) occurs in Example 2");
    }

    #[test]
    fn primary_path_multiplicity_is_small_on_example_2() {
        // Diamonds arise only from the two-premise rule rho1 (the type
        // +2 hop vs the data +1 arc); at bound 7 one diamond has formed.
        let chase = example2(7);
        let m = max_primary_path_multiplicity(&chase);
        assert!((1..=2).contains(&m), "multiplicity {m}");
    }

    #[test]
    fn long_paths_contain_equivalent_pairs() {
        // Lemma 9's pigeonhole: past ~2|q| levels a primary path must
        // repeat an equivalence class.
        let chase = example2(9);
        let start = chase
            .find(&Atom::mandatory(Term::var("A"), Term::var("T")))
            .unwrap();
        let deep = chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Data)
            .max_by_key(|&(_, _, l)| l)
            .map(|(id, _, _)| id)
            .unwrap();
        let path = primary_path(&chase, start, deep).unwrap();
        let (i, j) = find_equivalent_pair(&chase, &path).expect("repetition exists");
        assert!(i < j);
    }

    #[test]
    fn parallel_paths_detected() {
        let chase = example2(9);
        // Two pump iterations: data(T,A,_v1) -> ... -> data(_v1,A,_v2) and
        // the next one are parallel by construction.
        let datas: Vec<ConjunctId> = {
            let mut v: Vec<(u32, ConjunctId)> = chase
                .conjuncts()
                .filter(|(_, a, _)| a.pred() == Pred::Data)
                .map(|(id, _, l)| (l, id))
                .collect();
            v.sort();
            v.into_iter().map(|(_, id)| id).collect()
        };
        assert!(datas.len() >= 3);
        let p1 = primary_path(&chase, datas[0], datas[1]).unwrap();
        let p2 = primary_path(&chase, datas[1], datas[2]).unwrap();
        assert!(parallel(&p1, &p2), "{:?} vs {:?}", p1.labels(), p2.labels());
        assert!(!parallel(
            &p1,
            &Path {
                nodes: vec![datas[0]],
                arcs: vec![]
            }
        ));
    }

    #[test]
    fn no_primary_path_between_unrelated_conjuncts() {
        let chase = example2(5);
        let sub = chase
            .find(&Atom::sub(Term::var("T"), Term::var("U")))
            .unwrap();
        let mand = chase
            .find(&Atom::mandatory(Term::var("A"), Term::var("T")))
            .unwrap();
        // Both at level 0 and neither generated from the other.
        assert!(primary_path(&chase, sub, mand).is_none());
    }
}
