//! Rendering chase graphs (Definition 3) as Graphviz DOT and as text —
//! the machine-checked counterpart of the paper's Figure 1.

use std::fmt::Write as _;

use crate::engine::Chase;

/// Renders the chase graph in Graphviz DOT format.
///
/// Nodes are conjuncts labelled with their atom, their level, and — for
/// derived conjuncts — the `Σ_FL` rule that invented them, ranked by
/// level (level 0 at the top, like the paper's Figure 1); solid arcs are
/// ordinary arcs, dashed arcs are cross-arcs; every arc is labelled with
/// the rule (ρi) that produced it.
pub fn to_dot(chase: &Chase) -> String {
    let mut out = String::from(
        "digraph chase {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    let max_level = chase.max_level();
    for level in 0..=max_level {
        let ids = chase.at_level(level);
        if ids.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  {{ rank=same; /* level {level} */");
        for id in ids {
            let atom = chase.atom(id);
            match chase.rule_of(id) {
                Some(rule) => {
                    let _ = writeln!(out, "    {id} [label=\"{atom}\\nlevel {level} ({rule})\"];");
                }
                None => {
                    let _ = writeln!(out, "    {id} [label=\"{atom}\\nlevel {level}\"];");
                }
            }
        }
        out.push_str("  }\n");
    }
    for arc in chase.arcs() {
        let style = if arc.cross { ", style=dashed" } else { "" };
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"{}];",
            arc.from, arc.to, arc.rule, style
        );
    }
    out.push_str("}\n");
    out
}

/// Renders the chase level by level as indented text (a terminal-friendly
/// Figure 1).
pub fn to_text(chase: &Chase) -> String {
    let mut out = String::new();
    for level in 0..=chase.max_level() {
        let ids = chase.at_level(level);
        if ids.is_empty() {
            continue;
        }
        let _ = writeln!(out, "level {level}:");
        for id in ids {
            let atom = chase.atom(id);
            match chase.rule_of(id) {
                Some(rule) => {
                    let parents: Vec<String> = chase
                        .parents_of(id)
                        .iter()
                        .map(|p| chase.atom(*p).to_string())
                        .collect();
                    let _ = writeln!(out, "  {atom}    [{rule} from {}]", parents.join(", "));
                }
                None => {
                    let _ = writeln!(out, "  {atom}");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{chase_bounded, ChaseOptions};
    use flogic_syntax::parse_query;

    fn example2() -> Chase {
        let q = parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
        chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 5,
                max_conjuncts: 10_000,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn dot_contains_nodes_arcs_and_ranks() {
        let dot = to_dot(&example2());
        assert!(dot.starts_with("digraph chase {"));
        assert!(dot.contains("rank=same"));
        assert!(dot.contains("mandatory(A, T)"));
        assert!(dot.contains("->"));
        assert!(dot.contains("rho5"), "rho5 arcs labelled");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn text_rendering_groups_by_level() {
        let text = to_text(&example2());
        assert!(text.contains("level 0:"));
        assert!(text.contains("level 1:"));
        assert!(text.contains("[rho5 from mandatory(A, T)]"));
    }

    /// Parses the DOT output back and checks its structural invariants:
    /// every node is declared exactly once inside a `rank=same` block whose
    /// level comment matches the node's `level N` label, derived nodes (the
    /// target of at least one arc) carry an inventing-rule annotation
    /// `(rhoN)`, and every arc endpoint refers to a declared node.
    #[test]
    fn dot_parses_its_own_node_and_edge_invariants() {
        let dot = to_dot(&example2());
        let mut declared: std::collections::HashMap<String, (u32, String)> =
            std::collections::HashMap::new();
        let mut edges: Vec<(String, String)> = Vec::new();
        let mut current_level: Option<u32> = None;
        for line in dot.lines() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("{ rank=same; /* level ") {
                let n = rest.trim_end_matches(" */").parse().unwrap();
                current_level = Some(n);
            } else if t == "}" && current_level.is_some() {
                current_level = None;
            } else if let Some((from_s, rest)) = t.split_once(" -> ") {
                let to_s = rest.split(' ').next().unwrap();
                edges.push((from_s.to_string(), to_s.to_string()));
            } else if let Some((id_s, rest)) = t.split_once(" [label=\"") {
                if !id_s.starts_with('c') {
                    continue; // the global `node [...]` attribute line
                }
                let label = rest.strip_suffix("\"];").expect("label line terminator");
                let level = current_level.expect("node declared outside a rank block");
                assert!(
                    label.contains(&format!("\\nlevel {level}")),
                    "node {id_s} label `{label}` disagrees with block level {level}"
                );
                assert!(
                    declared
                        .insert(id_s.to_string(), (level, label.to_string()))
                        .is_none(),
                    "node {id_s} declared twice"
                );
            }
        }
        assert!(!declared.is_empty() && !edges.is_empty());
        for (from, to) in &edges {
            assert!(
                declared.contains_key(from),
                "arc from undeclared node {from}"
            );
            assert!(declared.contains_key(to), "arc to undeclared node {to}");
        }
        // Derived conjuncts carry the inventing rule; initial (level-0,
        // never-targeted) conjuncts do not.
        let targets: std::collections::HashSet<&String> = edges.iter().map(|(_, to)| to).collect();
        let mut annotated = 0usize;
        for (id, (_, label)) in &declared {
            if targets.contains(id) {
                assert!(
                    label.contains("(rho"),
                    "derived node {id} label `{label}` lacks its inventing rule"
                );
                annotated += 1;
            }
        }
        assert!(annotated > 0, "Example 2 derives at least one conjunct");
        assert!(dot.contains("(rho5)"), "a rho5 invention is annotated");
    }

    #[test]
    fn dot_marks_cross_arcs_dashed() {
        let dot = to_dot(&example2());
        assert!(dot.contains("style=dashed"), "Example 2 has cross-arcs");
    }
}
