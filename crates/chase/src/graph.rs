//! Chase-graph node/arc types and graph-level analyses.

use std::fmt;

use flogic_model::{Atom, RuleId};

use crate::engine::Chase;

/// Identifier of a conjunct (node) in a chase graph.
///
/// Ids are stable for the lifetime of a chase; when ρ4 merges two
/// conjuncts, the loser id is *redirected* to the winner and both resolve
/// to the same node thereafter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConjunctId(pub(crate) u32);

impl ConjunctId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ConjunctId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ConjunctId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An arc of the chase graph (Definition 3): the application of `rule` on
/// premise `from` contributed conclusion `to`.
///
/// `cross` marks *cross-arcs* — applications whose conclusion was already
/// present in the chase (Definition 3(4)). Arcs from a node at level `k` to
/// a node at level `k + 1` are *primary*, all others *secondary*
/// (Definition 3(5)); see [`ChaseArc::is_primary`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChaseArc {
    /// Premise conjunct.
    pub from: ConjunctId,
    /// Conclusion conjunct.
    pub to: ConjunctId,
    /// Rule whose application created the arc.
    pub rule: RuleId,
    /// True for cross-arcs.
    pub cross: bool,
}

impl ChaseArc {
    /// Primary arcs go from level `k` to level `k + 1` (Definition 3(5)).
    pub fn is_primary(&self, chase: &Chase) -> bool {
        chase.level(self.to) == chase.level(self.from) + 1
    }
}

/// Conjunct equivalence `c1 ~ c2` (Definition 6): same relation symbol, and
/// the two conjuncts agree on every position where either holds a rigid
/// (non-fresh) constant. Positions holding variables or labelled nulls are
/// wildcards.
pub fn equivalent_conjuncts(c1: &Atom, c2: &Atom) -> bool {
    if c1.pred() != c2.pred() {
        return false;
    }
    c1.args().iter().zip(c2.args()).all(|(a, b)| {
        if a.is_const() || b.is_const() {
            a == b
        } else {
            true
        }
    })
}

/// A violation of the locality property of Lemma 5.
#[derive(Clone, Copy, Debug)]
pub struct LocalityViolation {
    /// The offending arc.
    pub arc: ChaseArc,
    /// Level of the arc's source.
    pub from_level: u32,
    /// Level of the arc's target.
    pub to_level: u32,
}

/// Checks Lemma 5 (locality) on a finished chase: every *secondary* arc
/// involved in the **generation** of a conjunct `c` with `level(c) ≥ 1`
/// must start at a conjunct `d` with `level(d) = 0` or
/// `level(d) = level(c) − 2`.
///
/// Cross-arcs whose target is not above their source are excluded: they
/// record *suppressed duplicate* derivations (the conclusion already
/// existed, possibly at the same or a lower level), not generation
/// structure, and Lemma 5's excision argument only relies on how conjuncts
/// are generated.
///
/// Returns all violations (empty if the lemma holds on this chase — which
/// the paper proves it always does; the function exists so the property can
/// be asserted over randomized workloads).
pub fn locality_violations(chase: &Chase) -> Vec<LocalityViolation> {
    let mut out = Vec::new();
    for arc in chase.arcs() {
        let to_level = chase.level(arc.to);
        if to_level == 0 {
            continue;
        }
        let from_level = chase.level(arc.from);
        if arc.cross && to_level <= from_level {
            continue;
        }
        let primary = to_level == from_level + 1;
        if primary {
            continue;
        }
        let ok = from_level == 0 || from_level + 2 == to_level;
        if !ok {
            out.push(LocalityViolation {
                arc,
                from_level,
                to_level,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_term::{NullGen, Term};

    fn c(n: &str) -> Term {
        Term::constant(n)
    }
    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn equivalence_ignores_vars_and_nulls() {
        let mut g = NullGen::new();
        let n = Term::Null(g.fresh());
        let a1 = Atom::typ(v("X"), c("age"), c("number"));
        let a2 = Atom::typ(n, c("age"), c("number"));
        assert!(equivalent_conjuncts(&a1, &a2));
    }

    #[test]
    fn equivalence_requires_constant_agreement() {
        let a1 = Atom::typ(v("X"), c("age"), c("number"));
        let a2 = Atom::typ(v("X"), c("name"), c("number"));
        assert!(!equivalent_conjuncts(&a1, &a2));
    }

    #[test]
    fn equivalence_requires_same_predicate() {
        let a1 = Atom::member(v("X"), v("Y"));
        let a2 = Atom::sub(v("X"), v("Y"));
        assert!(!equivalent_conjuncts(&a1, &a2));
    }

    #[test]
    fn constant_vs_var_is_equivalent_only_one_way_mattering() {
        // A constant against a variable is fine per Definition 6 only when
        // the *other* is not a constant... it is a constant, so they must
        // be equal — and a variable is not equal to it.
        let a1 = Atom::member(c("john"), c("student"));
        let a2 = Atom::member(v("X"), c("student"));
        assert!(!equivalent_conjuncts(&a1, &a2));
    }

    #[test]
    fn conjunct_id_display() {
        assert_eq!(ConjunctId(3).to_string(), "c3");
        assert_eq!(format!("{:?}", ConjunctId(3)), "c3");
    }
}
