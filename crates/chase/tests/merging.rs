//! Stress tests for ρ4 merging: head side-effects, id stability, index
//! consistency and interactions with the other rules.

use flogic_chase::{chase_bounded, chase_minus, ChaseOptions, ChaseOutcome};
use flogic_model::Pred;
use flogic_syntax::parse_query;
use flogic_term::Term;

fn c(n: &str) -> Term {
    Term::constant(n)
}
fn v(n: &str) -> Term {
    Term::var(n)
}

#[test]
fn chain_of_merges_collapses_transitively() {
    // X=Y via (o,a), Y=Z via (p,b) where Y links both: all three collapse.
    let q = parse_query(
        "q(X, Y, Z) :- data(o, a, X), data(o, a, Y), funct(a, o), \
                       data(p, b, Y), data(p, b, Z), funct(b, p).",
    )
    .unwrap();
    let chase = chase_minus(&q);
    assert!(!chase.is_failed());
    let head = chase.head();
    assert_eq!(head[0], head[1]);
    assert_eq!(head[1], head[2]);
    // Only two data conjuncts remain (one per (object, attribute) pair).
    assert_eq!(
        chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Data)
            .count(),
        2
    );
}

#[test]
fn merge_into_constant_propagates_to_all_positions() {
    // X merges into constant k; X also occurs as a class elsewhere.
    let q =
        parse_query("q(X) :- data(o, a, X), data(o, a, k), funct(a, o), member(m, X).").unwrap();
    let chase = chase_minus(&q);
    assert_eq!(chase.head(), &[c("k")]);
    assert!(chase
        .find(&flogic_model::Atom::member(c("m"), c("k")))
        .is_some());
    // No conjunct still mentions X.
    for (_, atom, _) in chase.conjuncts() {
        assert!(
            atom.args().iter().all(|&t| t != v("X")),
            "stale X in {atom}"
        );
    }
}

#[test]
fn merge_caused_by_derived_funct_through_subclass() {
    // funct is inherited down a 2-hop subclass chain (rho11 twice), then
    // to the member (rho12), and only then rho4 merges.
    let q = parse_query(
        "q(X, Y) :- funct(a, top), sub(mid, top), sub(bot, mid), member(o, bot), \
                    data(o, a, X), data(o, a, Y).",
    )
    .unwrap();
    let chase = chase_minus(&q);
    assert!(!chase.is_failed());
    assert_eq!(chase.head()[0], chase.head()[1]);
}

#[test]
fn merge_failure_through_inheritance_chain() {
    let q = parse_query(
        "q() :- funct(a, top), sub(bot, top), member(o, bot), \
                data(o, a, v1), data(o, a, v2).",
    )
    .unwrap();
    let chase = chase_minus(&q);
    assert!(chase.is_failed());
    let ChaseOutcome::Failed { left, right } = chase.outcome() else {
        panic!()
    };
    assert_eq!((left, right), (c("v1"), c("v2")));
}

#[test]
fn merges_can_enable_new_rule_applications() {
    // Before the merge, member(X, c1) and sub(Y, c2) do not join. rho4
    // merges X and Y... they are different positions: instead, merging
    // class variables: data values X, Y name *classes*; after X=Y the
    // member/sub pair joins and rho3 fires.
    let q = parse_query(
        "q(O) :- data(s, a, X), data(s, a, Y), funct(a, s), \
                 member(O, X), sub(Y, super).",
    )
    .unwrap();
    let chase = chase_minus(&q);
    assert!(!chase.is_failed());
    // After X=Y (merged to the lexicographically smaller, X), rho3 derives
    // member(O, super).
    assert!(
        chase
            .find(&flogic_model::Atom::member(v("O"), c("super")))
            .is_some(),
        "merge must re-trigger rho3"
    );
}

#[test]
fn merged_nulls_in_bounded_phase() {
    // Two mandatory attributes on the same object with funct: the two
    // invented nulls must merge into one.
    let q = parse_query("q() :- mandatory(a, o), funct(a, o), data(o, a, w).").unwrap();
    let chase = chase_bounded(
        &q,
        &ChaseOptions {
            level_bound: 10,
            max_conjuncts: 10_000,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(chase.outcome(), ChaseOutcome::Completed);
    // rho5 is not applicable (w exists), so exactly one data conjunct.
    assert_eq!(
        chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Data)
            .count(),
        1
    );
    assert_eq!(chase.stats().nulls_invented, 0);
}

#[test]
fn null_merges_into_value_when_funct_arrives_late() {
    // mandatory fires first (inventing a null), then funct forces the null
    // to merge with the real value arriving via a member/class edge.
    let q =
        parse_query("q(V) :- mandatory(a, o), member(o, k), funct(a, k), data(o, a, V).").unwrap();
    let chase = chase_bounded(
        &q,
        &ChaseOptions {
            level_bound: 10,
            max_conjuncts: 10_000,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!chase.is_failed());
    // All data conjuncts for (o, a) collapsed onto the variable V.
    let data: Vec<_> = chase
        .conjuncts()
        .filter(|(_, a, _)| a.pred() == Pred::Data && a.arg(0) == c("o"))
        .collect();
    assert_eq!(data.len(), 1);
    assert_eq!(
        data[0].1.arg(2),
        v("V"),
        "null merged into the query variable"
    );
}

#[test]
fn arcs_survive_merges_with_resolved_endpoints() {
    let q = parse_query(
        "q(X) :- data(o, a, X), data(o, a, k), funct(a, o), member(k, cls), sub(cls, sup).",
    )
    .unwrap();
    let chase = chase_minus(&q);
    for arc in chase.arcs() {
        // Every endpoint resolves to a live conjunct with a valid atom.
        let _ = chase.atom(arc.from);
        let _ = chase.atom(arc.to);
    }
    // The rho3 conclusion exists and cites live parents.
    let derived = chase
        .find(&flogic_model::Atom::member(c("k"), c("sup")))
        .unwrap();
    for p in chase.parents_of(derived) {
        let _ = chase.atom(p);
    }
}

#[test]
fn merge_map_is_exposed_and_normalized() {
    let q =
        parse_query("q() :- data(o, a, X), data(o, a, Y), data(o, a, k), funct(a, o).").unwrap();
    let chase = chase_minus(&q);
    let m = chase.merge_map();
    assert_eq!(m.apply(v("X")), c("k"));
    assert_eq!(m.apply(v("Y")), c("k"));
}
