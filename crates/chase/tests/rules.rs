//! Rule-by-rule validation of the chase: each of the twelve rules of
//! `Σ_FL` (Section 2 of the paper) is exercised in isolation — the chase
//! must derive exactly the conjuncts that rule licenses.

use flogic_chase::{chase_bounded, chase_minus, ChaseOptions, ChaseOutcome};
use flogic_model::{Atom, Pred, RuleId};
use flogic_syntax::parse_query;
use flogic_term::Term;

fn c(n: &str) -> Term {
    Term::constant(n)
}
fn v(n: &str) -> Term {
    Term::var(n)
}

fn minus(src: &str) -> flogic_chase::Chase {
    chase_minus(&parse_query(src).unwrap())
}

#[test]
fn rho1_type_correctness() {
    // member(V, T) :- type(O, A, T), data(O, A, V).
    let chase = minus("q() :- type(o, a, t), data(o, a, w).");
    let derived = chase
        .find(&Atom::member(c("w"), c("t")))
        .expect("rho1 fired");
    assert_eq!(chase.rule_of(derived), Some(RuleId::R1));
    // No spurious member conjuncts.
    assert_eq!(
        chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Member)
            .count(),
        1
    );
}

#[test]
fn rho1_requires_matching_object_and_attribute() {
    let chase = minus("q() :- type(o, a, t), data(o, b, w).");
    assert!(
        chase.find(&Atom::member(c("w"), c("t"))).is_none(),
        "different attribute"
    );
    let chase = minus("q() :- type(o, a, t), data(p, a, w).");
    assert!(
        chase.find(&Atom::member(c("w"), c("t"))).is_none(),
        "different object"
    );
}

#[test]
fn rho2_subclass_transitivity() {
    let chase = minus("q() :- sub(a, b), sub(b, cc), sub(cc, d).");
    for (lo, hi) in [("a", "cc"), ("a", "d"), ("b", "d")] {
        let id = chase
            .find(&Atom::sub(c(lo), c(hi)))
            .expect("transitive edge");
        assert_eq!(chase.rule_of(id), Some(RuleId::R2));
    }
    assert_eq!(
        chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Sub)
            .count(),
        6
    );
}

#[test]
fn rho3_membership_property() {
    let chase = minus("q() :- member(o, a), sub(a, b).");
    let id = chase
        .find(&Atom::member(c("o"), c("b")))
        .expect("rho3 fired");
    assert_eq!(chase.rule_of(id), Some(RuleId::R3));
}

#[test]
fn rho4_merges_and_fails_correctly() {
    // Merge: variable folded into the other value.
    let chase = minus("q() :- data(o, a, X), data(o, a, Y), funct(a, o).");
    assert_eq!(
        chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Data)
            .count(),
        1,
        "X and Y merged into one conjunct"
    );
    // Failure: two distinct constants.
    let chase = minus("q() :- data(o, a, u), data(o, a, w), funct(a, o).");
    assert!(chase.is_failed());
}

#[test]
fn rho4_merge_prefers_lexicographically_smaller() {
    let chase = minus("q(X, Y) :- data(o, a, X), data(o, a, Y), funct(a, o).");
    // X precedes Y: Y is rewritten into X everywhere, including the head.
    assert_eq!(chase.head(), &[v("X"), v("X")]);
}

#[test]
fn rho5_invents_value_with_fresh_null() {
    let q = parse_query("q() :- mandatory(a, o).").unwrap();
    let chase = chase_bounded(
        &q,
        &ChaseOptions {
            level_bound: 10,
            max_conjuncts: 1000,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(chase.outcome(), ChaseOutcome::Completed);
    let data: Vec<_> = chase
        .conjuncts()
        .filter(|(_, a, _)| a.pred() == Pred::Data)
        .collect();
    assert_eq!(data.len(), 1);
    let (id, atom, level) = data[0];
    assert_eq!(atom.arg(0), c("o"));
    assert_eq!(atom.arg(1), c("a"));
    assert!(atom.arg(2).is_null(), "value is a fresh labelled null");
    assert_eq!(level, 1);
    assert_eq!(chase.rule_of(id), Some(RuleId::R5));
}

#[test]
fn rho5_restricted_applicability() {
    // A value exists: rho5 must not fire.
    let q = parse_query("q() :- mandatory(a, o), data(o, a, w).").unwrap();
    let chase = chase_bounded(
        &q,
        &ChaseOptions {
            level_bound: 10,
            max_conjuncts: 1000,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(chase.stats().nulls_invented, 0);
    assert_eq!(
        chase
            .conjuncts()
            .filter(|(_, a, _)| a.pred() == Pred::Data)
            .count(),
        1
    );
}

#[test]
fn rho6_type_inheritance_to_members() {
    let chase = minus("q() :- member(o, k), type(k, a, t).");
    let id = chase
        .find(&Atom::typ(c("o"), c("a"), c("t")))
        .expect("rho6 fired");
    assert_eq!(chase.rule_of(id), Some(RuleId::R6));
}

#[test]
fn rho7_type_inheritance_to_subclasses() {
    let chase = minus("q() :- sub(k, m), type(m, a, t).");
    let id = chase
        .find(&Atom::typ(c("k"), c("a"), c("t")))
        .expect("rho7 fired");
    assert_eq!(chase.rule_of(id), Some(RuleId::R7));
}

#[test]
fn rho8_supertyping() {
    let chase = minus("q() :- type(k, a, t1), sub(t1, t2).");
    let id = chase
        .find(&Atom::typ(c("k"), c("a"), c("t2")))
        .expect("rho8 fired");
    assert_eq!(chase.rule_of(id), Some(RuleId::R8));
}

#[test]
fn rho9_mandatory_inheritance_to_subclasses() {
    let chase = minus("q() :- sub(k, m), mandatory(a, m).");
    let id = chase
        .find(&Atom::mandatory(c("a"), c("k")))
        .expect("rho9 fired");
    assert_eq!(chase.rule_of(id), Some(RuleId::R9));
}

#[test]
fn rho10_mandatory_inheritance_to_members() {
    let chase = minus("q() :- member(o, k), mandatory(a, k).");
    let id = chase
        .find(&Atom::mandatory(c("a"), c("o")))
        .expect("rho10 fired");
    assert_eq!(chase.rule_of(id), Some(RuleId::R10));
}

#[test]
fn rho11_funct_inheritance_to_subclasses() {
    let chase = minus("q() :- sub(k, m), funct(a, m).");
    let id = chase
        .find(&Atom::funct(c("a"), c("k")))
        .expect("rho11 fired");
    assert_eq!(chase.rule_of(id), Some(RuleId::R11));
}

#[test]
fn rho12_funct_inheritance_to_members() {
    let chase = minus("q() :- member(o, k), funct(a, k).");
    let id = chase
        .find(&Atom::funct(c("a"), c("o")))
        .expect("rho12 fired");
    assert_eq!(chase.rule_of(id), Some(RuleId::R12));
}

#[test]
fn inheritance_rules_do_not_fire_backwards() {
    // rho3 must not derive member(o, a) from member(o, b), sub(a, b).
    let chase = minus("q() :- member(o, b), sub(a, b).");
    assert!(chase.find(&Atom::member(c("o"), c("a"))).is_none());
    // rho9 must not propagate mandatory *up* the hierarchy.
    let chase = minus("q() :- sub(k, m), mandatory(a, k).");
    assert!(chase.find(&Atom::mandatory(c("a"), c("m"))).is_none());
    // rho8 must not derive subtypes.
    let chase = minus("q() :- type(k, a, t2), sub(t1, t2).");
    assert!(chase.find(&Atom::typ(c("k"), c("a"), c("t1"))).is_none());
}

#[test]
fn rule_interactions_compose() {
    // member + sub chain + class-level type: rho3 lifts membership, rho7
    // pushes the type down the hierarchy, rho6 instantiates it on o, rho1
    // types the value.
    let chase = minus("q() :- member(o, k1), sub(k1, k2), type(k2, a, t), data(o, a, w).");
    assert!(chase.find(&Atom::member(c("o"), c("k2"))).is_some(), "rho3");
    assert!(
        chase.find(&Atom::typ(c("k1"), c("a"), c("t"))).is_some(),
        "rho7"
    );
    assert!(
        chase.find(&Atom::typ(c("o"), c("a"), c("t"))).is_some(),
        "rho6"
    );
    assert!(chase.find(&Atom::member(c("w"), c("t"))).is_some(), "rho1");
}

#[test]
fn chase_is_order_insensitive_for_conjunct_sets() {
    // The same query with permuted body atoms yields the same conjunct set.
    let a = minus("q() :- member(o, k1), sub(k1, k2), type(k2, a, t).");
    let b = minus("q() :- type(k2, a, t), member(o, k1), sub(k1, k2).");
    let mut sa: Vec<String> = a.conjuncts().map(|(_, at, _)| at.to_string()).collect();
    let mut sb: Vec<String> = b.conjuncts().map(|(_, at, _)| at.to_string()).collect();
    sa.sort();
    sb.sort();
    assert_eq!(sa, sb);
}
