//! Generic relations, atoms, rules and fact stores.

use std::collections::{HashMap, HashSet};
use std::fmt;

use flogic_term::{Subst, Symbol, Term};

use crate::DatalogError;

/// A generic relational atom `rel(t1, …, tn)` over an arbitrary relation
/// name (not restricted to `P_FL`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RAtom {
    /// The relation name.
    pub rel: Symbol,
    /// The arguments.
    pub args: Vec<Term>,
}

impl RAtom {
    /// Creates an atom.
    pub fn new(rel: &str, args: Vec<Term>) -> RAtom {
        RAtom {
            rel: Symbol::intern(rel),
            args,
        }
    }

    /// True if all arguments are ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| t.is_ground())
    }

    /// Applies a substitution, returning a new atom.
    pub fn apply(&self, s: &Subst) -> RAtom {
        RAtom {
            rel: self.rel,
            args: self.args.iter().map(|&t| s.apply(t)).collect(),
        }
    }
}

impl fmt::Display for RAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A positive Datalog rule `head :- body`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: RAtom,
    /// The body atoms (conjunction).
    pub body: Vec<RAtom>,
}

impl Rule {
    /// Creates a rule (validate with [`Rule::validate`] or via
    /// [`crate::Program::new`]).
    pub fn new(head: RAtom, body: Vec<RAtom>) -> Rule {
        Rule { head, body }
    }

    /// Checks range restriction: every head variable occurs in the body.
    pub fn validate(&self) -> Result<(), DatalogError> {
        let body_vars: HashSet<Term> = self
            .body
            .iter()
            .flat_map(|a| a.args.iter().copied())
            .filter(|t| t.is_var())
            .collect();
        for &t in &self.head.args {
            if t.is_var() && !body_vars.contains(&t) {
                return Err(DatalogError::UnboundHeadVariable {
                    var: t,
                    rule: self.to_string(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

/// A mutable set of ground facts, grouped by relation.
///
/// Tuples are deduplicated; per relation, insertion order is preserved for
/// deterministic iteration. Arity is fixed by the first tuple inserted for
/// a relation.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    rels: HashMap<Symbol, RelData>,
}

#[derive(Clone, Debug)]
struct RelData {
    arity: usize,
    seen: HashSet<Vec<Term>>,
    tuples: Vec<Vec<Term>>,
    /// Tuple indices per `(argument position, term)` — the selective index
    /// used by [`FactStore::match_pattern`]; without it, recursive joins
    /// degenerate to full scans per body atom and the `Σ_FL` closure of
    /// databases with invented values becomes quadratic per round.
    by_pos: HashMap<(u8, Term), Vec<usize>>,
}

impl FactStore {
    /// The empty store.
    pub fn new() -> FactStore {
        FactStore::default()
    }

    /// Inserts a ground fact. Returns `Ok(true)` if new.
    pub fn insert(&mut self, fact: RAtom) -> Result<bool, DatalogError> {
        if !fact.is_ground() {
            return Err(DatalogError::NonGroundFact {
                fact: fact.to_string(),
            });
        }
        let entry = self.rels.entry(fact.rel);
        let data = match entry {
            std::collections::hash_map::Entry::Occupied(o) => {
                let data = o.into_mut();
                if data.arity != fact.args.len() {
                    return Err(DatalogError::ArityMismatch {
                        rel: fact.rel.as_str().to_owned(),
                        expected: data.arity,
                        got: fact.args.len(),
                    });
                }
                data
            }
            std::collections::hash_map::Entry::Vacant(v) => v.insert(RelData {
                arity: fact.args.len(),
                seen: HashSet::new(),
                tuples: Vec::new(),
                by_pos: HashMap::new(),
            }),
        };
        if data.seen.insert(fact.args.clone()) {
            let idx = data.tuples.len();
            for (pos, &term) in fact.args.iter().enumerate() {
                data.by_pos.entry((pos as u8, term)).or_default().push(idx);
            }
            data.tuples.push(fact.args);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Tuples of `rel` whose argument at `pos` equals `term` (indexed).
    pub fn tuples_with(
        &self,
        rel: Symbol,
        pos: usize,
        term: Term,
    ) -> impl Iterator<Item = &[Term]> {
        let data = self.rels.get(&rel);
        let indices: &[usize] = data
            .and_then(|d| d.by_pos.get(&(pos as u8, term)))
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        indices
            .iter()
            .map(move |&i| data.expect("index entries imply relation exists").tuples[i].as_slice())
    }

    /// Membership test.
    pub fn contains(&self, fact: &RAtom) -> bool {
        self.rels
            .get(&fact.rel)
            .is_some_and(|d| d.seen.contains(&fact.args))
    }

    /// Tuples of one relation, in insertion order.
    pub fn tuples(&self, rel: Symbol) -> &[Vec<Term>] {
        self.rels
            .get(&rel)
            .map(|d| d.tuples.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of facts across relations.
    pub fn len(&self) -> usize {
        self.rels.values().map(|d| d.tuples.len()).sum()
    }

    /// True if no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all facts.
    pub fn iter(&self) -> impl Iterator<Item = RAtom> + '_ {
        self.rels.iter().flat_map(|(&rel, d)| {
            d.tuples.iter().map(move |args| RAtom {
                rel,
                args: args.clone(),
            })
        })
    }

    /// Enumerates extensions of `s` matching `pattern` against this store.
    /// `found` returning `true` stops the enumeration early.
    pub fn match_pattern(
        &self,
        pattern: &[RAtom],
        s: &Subst,
        found: &mut dyn FnMut(&Subst) -> bool,
    ) -> bool {
        match pattern.split_first() {
            None => found(s),
            Some((first, rest)) => {
                let Some(data) = self.rels.get(&first.rel) else {
                    return false;
                };
                // Candidate retrieval: the most selective (position, term)
                // index available (bound pattern variables have ground
                // images because facts are ground, so applying `s` is safe
                // here), falling back to the full relation. Candidates
                // still require full unification.
                let mut best: Option<&[usize]> = None;
                for (pos, &arg) in first.args.iter().enumerate() {
                    let effective = s.apply(arg);
                    if effective.is_var() {
                        continue;
                    }
                    let list: &[usize] = data
                        .by_pos
                        .get(&(pos as u8, effective))
                        .map(|v| v.as_slice())
                        .unwrap_or(&[]);
                    if best.map_or(true, |b| list.len() < b.len()) {
                        best = Some(list);
                    }
                }
                let mut try_tuple = |tuple: &Vec<Term>| -> bool {
                    if tuple.len() != first.args.len() {
                        return false;
                    }
                    if let Some(ext) = unify_tuple(&first.args, tuple, s) {
                        if self.match_pattern(rest, &ext, found) {
                            return true;
                        }
                    }
                    false
                };
                match best {
                    Some(list) => {
                        for &i in list {
                            if try_tuple(&data.tuples[i]) {
                                return true;
                            }
                        }
                    }
                    None => {
                        for tuple in &data.tuples {
                            if try_tuple(tuple) {
                                return true;
                            }
                        }
                    }
                }
                false
            }
        }
    }
}

/// Extends `s` so that `pattern.apply(s) == tuple`, or `None` on clash.
pub(crate) fn unify_tuple(pattern: &[Term], tuple: &[Term], s: &Subst) -> Option<Subst> {
    let mut out = s.clone();
    for (&p, &t) in pattern.iter().zip(tuple) {
        let p = out.apply(p);
        if p.is_var() {
            out.bind(p, t);
        } else if p != t {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }
    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn insert_dedups() {
        let mut s = FactStore::new();
        assert!(s.insert(RAtom::new("edge", vec![c("a"), c("b")])).unwrap());
        assert!(!s.insert(RAtom::new("edge", vec![c("a"), c("b")])).unwrap());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn arity_enforced_per_relation() {
        let mut s = FactStore::new();
        s.insert(RAtom::new("edge", vec![c("a"), c("b")])).unwrap();
        let err = s.insert(RAtom::new("edge", vec![c("a")])).unwrap_err();
        assert!(matches!(
            err,
            DatalogError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn non_ground_fact_rejected() {
        let mut s = FactStore::new();
        assert!(s.insert(RAtom::new("edge", vec![v("X"), c("b")])).is_err());
    }

    #[test]
    fn rule_validation_catches_unbound_head_vars() {
        let bad = Rule::new(
            RAtom::new("out", vec![v("X"), v("Z")]),
            vec![RAtom::new("in", vec![v("X"), v("Y")])],
        );
        assert!(matches!(
            bad.validate(),
            Err(DatalogError::UnboundHeadVariable { var, .. }) if var == v("Z")
        ));
        let good = Rule::new(
            RAtom::new("out", vec![v("X")]),
            vec![RAtom::new("in", vec![v("X"), v("Y")])],
        );
        assert!(good.validate().is_ok());
    }

    #[test]
    fn match_pattern_joins() {
        let mut s = FactStore::new();
        s.insert(RAtom::new("edge", vec![c("a"), c("b")])).unwrap();
        s.insert(RAtom::new("edge", vec![c("b"), c("cc")])).unwrap();
        let pattern = [
            RAtom::new("edge", vec![v("X"), v("Y")]),
            RAtom::new("edge", vec![v("Y"), v("Z")]),
        ];
        let mut hits = Vec::new();
        s.match_pattern(&pattern, &Subst::new(), &mut |b| {
            hits.push((b.apply(v("X")), b.apply(v("Z"))));
            false
        });
        assert_eq!(hits, vec![(c("a"), c("cc"))]);
    }

    #[test]
    fn display_forms() {
        let r = Rule::new(
            RAtom::new("path", vec![v("X"), v("Y")]),
            vec![RAtom::new("edge", vec![v("X"), v("Y")])],
        );
        assert_eq!(r.to_string(), "path(X, Y) :- edge(X, Y).");
    }
}
