//! Closing a finite database under `Σ_FL`.

use flogic_model::{sigma_fl, Atom, Database, Pred, SigmaRule};
use flogic_term::{NullGen, Term};

use crate::engine::seminaive;
use crate::store::{FactStore, RAtom, Rule};
use crate::{DatalogError, Program, UnionFind};

/// Budget for the closure; mandatory-attribute cycles make the closure
/// infinite (Section 4 of the paper analyses the same phenomenon on the
/// query side), so a budget is required for termination.
#[derive(Clone, Copy, Debug)]
pub struct ClosureOptions {
    /// Maximum total number of facts before giving up.
    pub max_facts: usize,
    /// Maximum number of labelled nulls to invent before giving up.
    pub max_nulls: u64,
}

impl Default for ClosureOptions {
    fn default() -> Self {
        ClosureOptions {
            max_facts: 20_000,
            max_nulls: 2_000,
        }
    }
}

/// What the closure did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClosureStats {
    /// Outer rounds (datalog saturation + EGD + ρ5).
    pub rounds: usize,
    /// Term merges performed by ρ4.
    pub merges: usize,
    /// Labelled nulls invented by ρ5.
    pub nulls_invented: u64,
    /// Facts in the closed database.
    pub facts: usize,
}

/// The ten plain-Datalog rules of `Σ_FL` (everything except ρ4 and ρ5),
/// translated into the generic engine's rule type.
pub fn sigma_datalog_program() -> Program {
    let rules = sigma_fl()
        .iter()
        .filter(|r| r.is_datalog())
        .map(|r| {
            let SigmaRule::Tgd(t) = r else {
                unreachable!("is_datalog implies TGD")
            };
            Rule::new(to_ratom(&t.head), t.body.iter().map(to_ratom).collect())
        })
        .collect();
    Program::new(rules).expect("Sigma_FL datalog rules are range-restricted")
}

fn to_ratom(a: &Atom) -> RAtom {
    RAtom::new(a.pred().name(), a.args().to_vec())
}

fn to_store(db: &Database) -> FactStore {
    let mut store = FactStore::new();
    for a in db.iter() {
        store
            .insert(to_ratom(a))
            .expect("database atoms are ground");
    }
    store
}

fn from_store(store: &FactStore) -> Result<Database, DatalogError> {
    let mut db = Database::new();
    for f in store.iter() {
        let pred = Pred::from_name(f.rel.as_str()).expect("closure only produces P_FL relations");
        let atom = Atom::new(pred, &f.args).expect("arity preserved");
        db.insert(atom).map_err(|e| DatalogError::NonGroundFact {
            fact: e.to_string(),
        })?;
    }
    Ok(db)
}

/// Closes `db` under all twelve rules of `Σ_FL`:
///
/// 1. saturate under the ten Datalog rules (semi-naive evaluation);
/// 2. resolve all ρ4 obligations at once through a union–find (two distinct
///    rigid constants in one class ⇒ [`DatalogError::Inconsistent`]) and
///    rewrite the database through the resulting merge map;
/// 3. apply ρ5 in restricted-chase style: `mandatory(a, o)` with no
///    `data(o, a, _)` fact invents one labelled null;
/// 4. repeat until fixpoint or until the budget is exhausted.
///
/// On success the returned database satisfies `Σ_FL`
/// ([`Database::satisfies_sigma`]).
///
/// ```
/// use flogic_syntax::parse_database;
/// use flogic_datalog::{close_database, ClosureOptions};
/// let db = parse_database("john:student. student::person.").unwrap();
/// let (closed, _) = close_database(&db, &ClosureOptions::default()).unwrap();
/// assert!(closed.satisfies_sigma());
/// assert_eq!(closed.len(), 3); // + member(john, person) by rho3
/// ```
pub fn close_database(
    db: &Database,
    opts: &ClosureOptions,
) -> Result<(Database, ClosureStats), DatalogError> {
    let mut store = to_store(db);
    let mut stats = ClosureStats::default();
    // Continue null ids above any null already present in the input.
    let max_null = db
        .iter()
        .flat_map(|a| a.args().iter())
        .filter_map(|t| match t {
            Term::Null(n) => Some(n.0),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut nulls = NullGen::new();
    for _ in 0..max_null {
        nulls.fresh();
    }

    let program = sigma_datalog_program();
    let data_rel = flogic_term::Symbol::intern(Pred::Data.name());
    let mandatory_rel = flogic_term::Symbol::intern(Pred::Mandatory.name());
    let funct_rel = flogic_term::Symbol::intern(Pred::Funct.name());

    loop {
        stats.rounds += 1;
        seminaive(&program, &mut store)?;
        if store.len() > opts.max_facts {
            return Err(DatalogError::BudgetExceeded {
                facts: store.len(),
                nulls: stats.nulls_invented,
            });
        }

        // ρ4: for every funct(a, o), all values of data(o, a, ·) must agree.
        let mut uf = UnionFind::new();
        for fu in store.tuples(funct_rel).to_vec() {
            let (a, o) = (fu[0], fu[1]);
            let mut first: Option<Term> = None;
            for d in store.tuples_with(data_rel, 0, o) {
                if d[1] == a {
                    match first {
                        None => first = Some(d[2]),
                        Some(f) => uf.union(f, d[2])?,
                    }
                }
            }
        }
        if !uf.is_trivial() {
            let merge = uf.to_subst();
            stats.merges += merge.len();
            let mut rewritten = FactStore::new();
            for f in store.iter() {
                rewritten.insert(f.apply(&merge))?;
            }
            store = rewritten;
            continue;
        }

        // ρ5 (restricted): invent a value only when none exists.
        let mut to_add: Vec<RAtom> = Vec::new();
        for m in store.tuples(mandatory_rel) {
            let (a, o) = (m[0], m[1]);
            let has_value = store.tuples_with(data_rel, 0, o).any(|d| d[1] == a);
            if !has_value {
                to_add.push(RAtom {
                    rel: data_rel,
                    args: vec![o, a, Term::Null(nulls.fresh())],
                });
                stats.nulls_invented += 1;
                if stats.nulls_invented > opts.max_nulls {
                    return Err(DatalogError::BudgetExceeded {
                        facts: store.len(),
                        nulls: stats.nulls_invented,
                    });
                }
            }
        }
        if to_add.is_empty() {
            break;
        }
        for f in to_add {
            store.insert(f)?;
        }
    }

    stats.facts = store.len();
    Ok((from_store(&store)?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    #[test]
    fn datalog_program_has_ten_rules() {
        assert_eq!(sigma_datalog_program().rules().len(), 10);
    }

    #[test]
    fn closure_of_closed_db_is_identity() {
        let db: Database = [Atom::member(c("john"), c("student"))]
            .into_iter()
            .collect();
        let (closed, stats) = close_database(&db, &ClosureOptions::default()).unwrap();
        assert_eq!(closed.len(), 1);
        assert_eq!(stats.nulls_invented, 0);
        assert!(closed.satisfies_sigma());
    }

    #[test]
    fn closure_derives_inherited_facts() {
        // john:freshman, freshman::student, student::person, person[age*=>number]
        let db: Database = [
            Atom::member(c("john"), c("freshman")),
            Atom::sub(c("freshman"), c("student")),
            Atom::sub(c("student"), c("person")),
            Atom::typ(c("person"), c("age"), c("number")),
        ]
        .into_iter()
        .collect();
        let (closed, _) = close_database(&db, &ClosureOptions::default()).unwrap();
        // ρ2: sub transitivity; ρ3: membership; ρ7: type inheritance to
        // subclasses; ρ6: type inheritance to members.
        assert!(closed.contains(&Atom::sub(c("freshman"), c("person"))));
        assert!(closed.contains(&Atom::member(c("john"), c("student"))));
        assert!(closed.contains(&Atom::member(c("john"), c("person"))));
        assert!(closed.contains(&Atom::typ(c("student"), c("age"), c("number"))));
        assert!(closed.contains(&Atom::typ(c("john"), c("age"), c("number"))));
        assert!(closed.satisfies_sigma());
    }

    #[test]
    fn rho5_invents_a_value_and_rho1_types_it() {
        // mandatory(name, john), type(john, name, string):
        // ρ5 invents data(john, name, _v1), ρ1 derives member(_v1, string).
        let db: Database = [
            Atom::mandatory(c("name"), c("john")),
            Atom::typ(c("john"), c("name"), c("string")),
        ]
        .into_iter()
        .collect();
        let (closed, stats) = close_database(&db, &ClosureOptions::default()).unwrap();
        assert_eq!(stats.nulls_invented, 1);
        let data = closed.pred_facts(Pred::Data);
        assert_eq!(data.len(), 1);
        let value = data[0].arg(2);
        assert!(value.is_null());
        assert!(closed.contains(&Atom::member(value, c("string"))));
        assert!(closed.satisfies_sigma());
    }

    #[test]
    fn rho5_not_applied_when_value_exists() {
        let db: Database = [
            Atom::mandatory(c("name"), c("john")),
            Atom::data(c("john"), c("name"), c("j")),
        ]
        .into_iter()
        .collect();
        let (closed, stats) = close_database(&db, &ClosureOptions::default()).unwrap();
        assert_eq!(stats.nulls_invented, 0);
        assert_eq!(closed.pred_facts(Pred::Data).len(), 1);
    }

    #[test]
    fn rho4_merges_null_into_constant() {
        // funct(age, john) with an invented value and a real one: the null
        // must merge into 33.
        let db: Database = [
            Atom::funct(c("age"), c("john")),
            Atom::mandatory(c("age"), c("john")),
            Atom::data(c("john"), c("age"), c("33")),
        ]
        .into_iter()
        .collect();
        let (closed, _) = close_database(&db, &ClosureOptions::default()).unwrap();
        let data = closed.pred_facts(Pred::Data);
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].arg(2), c("33"));
        assert!(closed.satisfies_sigma());
    }

    #[test]
    fn rho4_on_two_constants_is_inconsistent() {
        let db: Database = [
            Atom::funct(c("age"), c("john")),
            Atom::data(c("john"), c("age"), c("33")),
            Atom::data(c("john"), c("age"), c("34")),
        ]
        .into_iter()
        .collect();
        let err = close_database(&db, &ClosureOptions::default()).unwrap_err();
        assert!(matches!(err, DatalogError::Inconsistent { .. }));
    }

    #[test]
    fn inherited_funct_triggers_merge() {
        // funct on the class, two values on the member: ρ12 then ρ4.
        let db: Database = [
            Atom::funct(c("age"), c("person")),
            Atom::member(c("john"), c("person")),
            Atom::data(c("john"), c("age"), c("33")),
            Atom::data(c("john"), c("age"), c("34")),
        ]
        .into_iter()
        .collect();
        let err = close_database(&db, &ClosureOptions::default()).unwrap_err();
        assert!(matches!(err, DatalogError::Inconsistent { .. }));
    }

    #[test]
    fn mandatory_cycle_exhausts_budget() {
        // The paper's infinite-chase pattern (Section 4): a cycle of
        // mandatory attributes with types closing the loop.
        let db: Database = [
            Atom::mandatory(c("a"), c("t")),
            Atom::typ(c("t"), c("a"), c("t")),
            Atom::member(c("o"), c("t")),
        ]
        .into_iter()
        .collect();
        let err = close_database(
            &db,
            &ClosureOptions {
                max_facts: 500,
                max_nulls: 50,
            },
        )
        .unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { .. }));
    }

    #[test]
    fn closure_is_idempotent() {
        let db: Database = [
            Atom::member(c("john"), c("freshman")),
            Atom::sub(c("freshman"), c("student")),
            Atom::mandatory(c("name"), c("student")),
        ]
        .into_iter()
        .collect();
        let (closed1, _) = close_database(&db, &ClosureOptions::default()).unwrap();
        let (closed2, stats2) = close_database(&closed1, &ClosureOptions::default()).unwrap();
        assert_eq!(closed1.len(), closed2.len());
        assert_eq!(stats2.nulls_invented, 0);
    }
}
