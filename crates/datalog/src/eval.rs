//! Evaluating conjunctive meta-queries over concrete databases.

use std::collections::BTreeSet;

use flogic_model::{ConjunctiveQuery, Database};
use flogic_term::{Subst, Term};

use crate::{close_database, ClosureOptions, DatalogError};

/// Evaluates `q` over `db`, returning the set of answer tuples
/// (`q(B)` in the paper's notation).
///
/// The database is used as-is; callers who start from a raw fact base
/// should close it first (see [`answers_closed`]) because the containment
/// theory quantifies only over databases that satisfy `Σ_FL`.
pub fn answers(q: &ConjunctiveQuery, db: &Database) -> BTreeSet<Vec<Term>> {
    let mut out = BTreeSet::new();
    let mut s = Subst::new();
    db.match_body(q.body(), &mut s, &mut |binding| {
        out.insert(q.head().iter().map(|&t| binding.apply(t)).collect());
        false
    });
    out
}

/// True if `q` has at least one answer over `db` (Boolean queries).
pub fn boolean_answer(q: &ConjunctiveQuery, db: &Database) -> bool {
    let mut s = Subst::new();
    db.match_body(q.body(), &mut s, &mut |_| true)
}

/// Closes `db` under `Σ_FL` and evaluates `q` over the closure.
pub fn answers_closed(
    q: &ConjunctiveQuery,
    db: &Database,
    opts: &ClosureOptions,
) -> Result<BTreeSet<Vec<Term>>, DatalogError> {
    let (closed, _) = close_database(db, opts)?;
    Ok(answers(q, &closed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_model::Atom;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }
    fn v(n: &str) -> Term {
        Term::var(n)
    }
    fn q(head: Vec<Term>, body: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery::new(flogic_term::Symbol::intern("q"), head, body).unwrap()
    }

    fn sample_db() -> Database {
        [
            Atom::member(c("john"), c("student")),
            Atom::member(c("mary"), c("student")),
            Atom::sub(c("student"), c("person")),
            Atom::member(c("john"), c("person")),
            Atom::member(c("mary"), c("person")),
            Atom::typ(c("student"), c("name"), c("string")),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn answers_returns_all_tuples() {
        let db = sample_db();
        let query = q(vec![v("X")], vec![Atom::member(v("X"), c("student"))]);
        let res = answers(&query, &db);
        assert_eq!(res.len(), 2);
        assert!(res.contains(&vec![c("john")]));
        assert!(res.contains(&vec![c("mary")]));
    }

    #[test]
    fn meta_query_returns_schema_objects() {
        // "?- X::person." returns classes, not data — meta-querying.
        let db = sample_db();
        let query = q(vec![v("X")], vec![Atom::sub(v("X"), c("person"))]);
        let res = answers(&query, &db);
        assert_eq!(res, BTreeSet::from([vec![c("student")]]));
    }

    #[test]
    fn boolean_answer_detects_emptiness() {
        let db = sample_db();
        let yes = q(vec![], vec![Atom::member(v("X"), c("person"))]);
        let no = q(vec![], vec![Atom::funct(v("A"), v("O"))]);
        assert!(boolean_answer(&yes, &db));
        assert!(!boolean_answer(&no, &db));
    }

    #[test]
    fn duplicate_bindings_collapse_in_answer_set() {
        let db = sample_db();
        // Both john and mary witness X=student.
        let query = q(vec![v("C")], vec![Atom::member(v("X"), v("C"))]);
        let res = answers(&query, &db);
        assert_eq!(res, BTreeSet::from([vec![c("student")], vec![c("person")]]));
    }

    #[test]
    fn answers_closed_sees_derived_facts() {
        // Raw db lacks member(john, person); the closure derives it.
        let db: Database = [
            Atom::member(c("john"), c("student")),
            Atom::sub(c("student"), c("person")),
        ]
        .into_iter()
        .collect();
        let query = q(vec![v("X")], vec![Atom::member(v("X"), c("person"))]);
        assert!(answers(&query, &db).is_empty());
        let res = answers_closed(&query, &db, &ClosureOptions::default()).unwrap();
        assert_eq!(res, BTreeSet::from([vec![c("john")]]));
    }

    #[test]
    fn head_constants_pass_through() {
        let db = sample_db();
        let query = q(
            vec![c("hit"), v("X")],
            vec![Atom::member(v("X"), c("student"))],
        );
        let res = answers(&query, &db);
        assert!(res.iter().all(|t| t[0] == c("hit")));
        assert_eq!(res.len(), 2);
    }
}
