//! Errors of the Datalog engine and the `Σ_FL` closure.

use std::fmt;

use flogic_term::Term;

/// Errors raised by the Datalog engine and the closure procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatalogError {
    /// A rule head uses a variable that is not bound in the body
    /// (range-restriction violation).
    UnboundHeadVariable {
        /// The offending variable.
        var: Term,
        /// The rule, rendered.
        rule: String,
    },
    /// Two tuples of the same relation disagree in arity.
    ArityMismatch {
        /// Relation name.
        rel: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        got: usize,
    },
    /// A non-ground tuple was inserted as a fact.
    NonGroundFact {
        /// The fact, rendered.
        fact: String,
    },
    /// The EGD ρ4 equated two distinct rigid constants — the database is
    /// inconsistent with `Σ_FL`.
    Inconsistent {
        /// First constant.
        left: Term,
        /// Second constant.
        right: Term,
    },
    /// The closure did not reach a fixpoint within the configured budget
    /// (e.g. a cycle of mandatory attributes makes it infinite).
    BudgetExceeded {
        /// Facts present when the budget ran out.
        facts: usize,
        /// Nulls invented when the budget ran out.
        nulls: u64,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::UnboundHeadVariable { var, rule } => {
                write!(f, "head variable `{var}` unbound in body of rule `{rule}`")
            }
            DatalogError::ArityMismatch { rel, expected, got } => {
                write!(
                    f,
                    "relation `{rel}` used with arity {got}, expected {expected}"
                )
            }
            DatalogError::NonGroundFact { fact } => {
                write!(f, "fact `{fact}` is not ground")
            }
            DatalogError::Inconsistent { left, right } => {
                write!(
                    f,
                    "rho4 requires `{left}` = `{right}`, but both are rigid constants: \
                     database inconsistent with Sigma_FL"
                )
            }
            DatalogError::BudgetExceeded { facts, nulls } => {
                write!(
                    f,
                    "Sigma_FL closure exceeded its budget ({facts} facts, {nulls} nulls): \
                     likely a cycle of mandatory attributes (infinite closure)"
                )
            }
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DatalogError::Inconsistent {
            left: Term::constant("a"),
            right: Term::constant("b"),
        };
        assert!(e.to_string().contains("rho4"));
        let e = DatalogError::BudgetExceeded {
            facts: 10,
            nulls: 5,
        };
        assert!(e.to_string().contains("mandatory"));
    }
}
