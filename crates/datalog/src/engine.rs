//! Naive and semi-naive bottom-up evaluation.

use flogic_term::Subst;

use crate::store::unify_tuple;
use crate::{DatalogError, FactStore, Program, RAtom};

/// Statistics of an evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint iterations.
    pub iterations: usize,
    /// Number of facts derived (beyond the EDB).
    pub derived: usize,
}

/// Naive bottom-up evaluation: repeat all rules until no new fact appears.
///
/// Kept as a reference implementation; [`seminaive`] computes the same
/// fixpoint and is asymptotically better. Used by tests to cross-check.
pub fn naive(program: &Program, store: &mut FactStore) -> Result<EvalStats, DatalogError> {
    let mut stats = EvalStats::default();
    loop {
        stats.iterations += 1;
        let mut new_facts: Vec<RAtom> = Vec::new();
        for rule in program.rules() {
            store.match_pattern(&rule.body, &Subst::new(), &mut |binding| {
                let head = rule.head.apply(binding);
                if !store.contains(&head) {
                    new_facts.push(head);
                }
                false
            });
        }
        let mut grew = false;
        for f in new_facts {
            if store.insert(f)? {
                grew = true;
                stats.derived += 1;
            }
        }
        if !grew {
            return Ok(stats);
        }
    }
}

/// Semi-naive bottom-up evaluation: each iteration only considers rule
/// instantiations that use at least one fact derived in the previous
/// iteration (the *delta*), which avoids re-deriving everything each round.
pub fn seminaive(program: &Program, store: &mut FactStore) -> Result<EvalStats, DatalogError> {
    let mut stats = EvalStats::default();
    // Round 0: all EDB facts are the initial delta.
    let mut delta: Vec<RAtom> = store.iter().collect();
    while !delta.is_empty() {
        stats.iterations += 1;
        let mut next_delta: Vec<RAtom> = Vec::new();
        for rule in program.rules() {
            for (pos, pivot) in rule.body.iter().enumerate() {
                // Pin the pivot body atom to a delta fact, join the rest
                // against the full store. To avoid deriving the same
                // instantiation once per delta-atom it contains, only pin
                // the *first* body position that can match a delta fact
                // for this particular fact (standard semi-naive with
                // ordered deltas would track iteration stamps; for the
                // small programs here, deduplication via `contains` keeps
                // this correct, the `pos` loop keeps it complete).
                for fact in &delta {
                    if fact.rel != pivot.rel || fact.args.len() != pivot.args.len() {
                        continue;
                    }
                    let Some(binding) = unify_tuple(&pivot.args, &fact.args, &Subst::new()) else {
                        continue;
                    };
                    let mut rest: Vec<RAtom> = Vec::with_capacity(rule.body.len() - 1);
                    rest.extend(rule.body[..pos].iter().cloned());
                    rest.extend(rule.body[pos + 1..].iter().cloned());
                    store.match_pattern(&rest, &binding, &mut |full| {
                        let head = rule.head.apply(full);
                        if !store.contains(&head) && !next_delta.contains(&head) {
                            next_delta.push(head);
                        }
                        false
                    });
                }
            }
        }
        delta.clear();
        for f in next_delta {
            if store.insert(f.clone())? {
                stats.derived += 1;
                delta.push(f);
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;
    use flogic_term::Term;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }
    fn v(n: &str) -> Term {
        Term::var(n)
    }

    /// Transitive closure of a chain a -> b -> c -> d.
    fn chain_store() -> FactStore {
        let mut s = FactStore::new();
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "d")] {
            s.insert(RAtom::new("edge", vec![c(x), c(y)])).unwrap();
        }
        s
    }

    fn tc_program() -> Program {
        Program::new(vec![
            Rule::new(
                RAtom::new("path", vec![v("X"), v("Y")]),
                vec![RAtom::new("edge", vec![v("X"), v("Y")])],
            ),
            Rule::new(
                RAtom::new("path", vec![v("X"), v("Z")]),
                vec![
                    RAtom::new("path", vec![v("X"), v("Y")]),
                    RAtom::new("edge", vec![v("Y"), v("Z")]),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn naive_computes_transitive_closure() {
        let mut s = chain_store();
        naive(&tc_program(), &mut s).unwrap();
        assert_eq!(s.tuples(flogic_term::Symbol::intern("path")).len(), 6);
        assert!(s.contains(&RAtom::new("path", vec![c("a"), c("d")])));
    }

    #[test]
    fn seminaive_matches_naive() {
        let mut s1 = chain_store();
        let mut s2 = chain_store();
        naive(&tc_program(), &mut s1).unwrap();
        let stats = seminaive(&tc_program(), &mut s2).unwrap();
        let p = flogic_term::Symbol::intern("path");
        let mut t1: Vec<_> = s1.tuples(p).to_vec();
        let mut t2: Vec<_> = s2.tuples(p).to_vec();
        t1.sort();
        t2.sort();
        assert_eq!(t1, t2);
        assert_eq!(stats.derived, 6);
    }

    #[test]
    fn seminaive_on_empty_store_is_noop() {
        let mut s = FactStore::new();
        let stats = seminaive(&tc_program(), &mut s).unwrap();
        assert_eq!(stats.derived, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn recursive_same_relation_join() {
        // sg(X,Y) :- flat(X,Y).
        // sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).   (same-generation)
        let prog = Program::new(vec![
            Rule::new(
                RAtom::new("sg", vec![v("X"), v("Y")]),
                vec![RAtom::new("flat", vec![v("X"), v("Y")])],
            ),
            Rule::new(
                RAtom::new("sg", vec![v("X"), v("Y")]),
                vec![
                    RAtom::new("up", vec![v("X"), v("X1")]),
                    RAtom::new("sg", vec![v("X1"), v("Y1")]),
                    RAtom::new("down", vec![v("Y1"), v("Y")]),
                ],
            ),
        ])
        .unwrap();
        let mut s = FactStore::new();
        s.insert(RAtom::new("flat", vec![c("m"), c("n")])).unwrap();
        s.insert(RAtom::new("up", vec![c("a"), c("m")])).unwrap();
        s.insert(RAtom::new("down", vec![c("n"), c("b")])).unwrap();
        s.insert(RAtom::new("up", vec![c("p"), c("a")])).unwrap();
        s.insert(RAtom::new("down", vec![c("b"), c("q")])).unwrap();
        seminaive(&prog, &mut s).unwrap();
        assert!(s.contains(&RAtom::new("sg", vec![c("a"), c("b")])));
        assert!(s.contains(&RAtom::new("sg", vec![c("p"), c("q")])));
    }

    #[test]
    fn constants_in_rule_bodies_filter() {
        let prog = Program::new(vec![Rule::new(
            RAtom::new("from_a", vec![v("Y")]),
            vec![RAtom::new("edge", vec![c("a"), v("Y")])],
        )])
        .unwrap();
        let mut s = chain_store();
        seminaive(&prog, &mut s).unwrap();
        let f = flogic_term::Symbol::intern("from_a");
        assert_eq!(s.tuples(f), &[vec![c("b")]]);
    }

    #[test]
    fn program_rejects_invalid_rules() {
        let bad = Rule::new(
            RAtom::new("out", vec![v("Z")]),
            vec![RAtom::new("in", vec![v("X")])],
        );
        assert!(Program::new(vec![bad]).is_err());
    }
}
