//! A bottom-up Datalog engine and the `Σ_FL` closure of finite databases.
//!
//! The paper's encoding turns an F-logic Lite knowledge base into "a
//! relational database augmented with a set of rules for deriving new
//! information and for expressing constraints" (Section 2). This crate is
//! that runtime:
//!
//! * a **generic positive-Datalog engine** ([`Program`], [`FactStore`],
//!   [`seminaive`]) with semi-naive evaluation — the substrate used to
//!   saturate a database under the ten plain-Datalog rules of `Σ_FL`, and
//!   usable on its own for arbitrary positive Datalog programs;
//! * a **`Σ_FL` closure** ([`close_database`]) that combines Datalog
//!   saturation with the EGD ρ4 (via a union–find over terms) and the
//!   existential TGD ρ5 (labelled nulls, restricted-chase applicability),
//!   producing a database that satisfies all twelve rules — or reporting
//!   that the data is inconsistent / that the closure does not terminate
//!   within the configured budget (mandatory-attribute cycles make the
//!   closure infinite, exactly the phenomenon Section 4 of the paper
//!   analyses on the query side);
//! * **conjunctive-query evaluation** ([`answers`]) over ground databases,
//!   used by the test suite and the benchmark harness to cross-validate
//!   containment verdicts against concrete databases (`q1 ⊆_ΣFL q2` iff
//!   `q1(B) ⊆ q2(B)` for every `B` satisfying `Σ_FL`).

mod closure;
mod engine;
mod error;
mod eval;
mod store;
mod uf;

pub use closure::{close_database, sigma_datalog_program, ClosureOptions, ClosureStats};
pub use engine::{naive, seminaive, EvalStats};
pub use error::DatalogError;
pub use eval::{answers, answers_closed, boolean_answer};
pub use store::{FactStore, RAtom, Rule};
pub use uf::UnionFind;

/// A generic Datalog program: a list of rules over named relations.
#[derive(Clone, Debug, Default)]
pub struct Program {
    rules: Vec<Rule>,
}

impl Program {
    /// Creates a program from rules, validating each (range restriction).
    pub fn new(rules: Vec<Rule>) -> Result<Program, DatalogError> {
        for r in &rules {
            r.validate()?;
        }
        Ok(Program { rules })
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }
}
