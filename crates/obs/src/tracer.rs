//! The thread-aware tracer and the zero-cost handle threaded through the
//! runtime.
//!
//! A [`Tracer`] owns one [`Ring`] per worker slot. The coordinating thread
//! records under worker 0; each parallel discovery worker gets its own
//! slot via [`TraceHandle::worker`]. Rings are created lazily under a
//! mutex (worker counts aren't known up front), but *appending* is
//! lock-free: an enabled handle caches the `Arc<Ring>` it writes to.
//!
//! [`TraceHandle`] is the type instrumentation sites see. `Disabled` (the
//! default) makes [`TraceHandle::emit`] a single enum-discriminant branch:
//! the payload closure is never called and no clock is read, which is the
//! crate's zero-cost contract.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{ChaseEvent, Recorded, SpanKind};
use crate::ring::Ring;

/// Default per-worker ring capacity in records (1 MiB of payload per
/// worker at 32 bytes/record — ample for every workload in the bench
/// suite while still bounding memory on runaway chases).
pub const DEFAULT_RING_CAPACITY: usize = 32_768;

/// The shared event sink: one bounded ring per worker slot.
pub struct Tracer {
    /// Per-worker rings, indexed by worker id; grown lazily.
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Capacity of each per-worker ring, fixed at construction.
    ring_capacity: usize,
}

impl Tracer {
    /// Creates a tracer whose per-worker rings hold `ring_capacity`
    /// records each.
    pub fn new(ring_capacity: usize) -> Arc<Tracer> {
        Arc::new(Tracer {
            rings: Mutex::new(Vec::new()),
            ring_capacity: ring_capacity.max(1),
        })
    }

    /// Creates a tracer with [`DEFAULT_RING_CAPACITY`].
    pub fn with_default_capacity() -> Arc<Tracer> {
        Tracer::new(DEFAULT_RING_CAPACITY)
    }

    /// Returns worker `id`'s ring, creating any missing slots up to `id`.
    fn ring(&self, id: u32) -> Arc<Ring> {
        let mut rings = self.rings.lock().expect("tracer ring registry poisoned");
        let idx = id as usize;
        while rings.len() <= idx {
            rings.push(Arc::new(Ring::new(self.ring_capacity)));
        }
        Arc::clone(&rings[idx])
    }

    /// Merges all per-worker rings into one deterministic event sequence,
    /// ordered by `(worker, seq)`. Call when writers are quiescent (e.g.
    /// after worker threads are joined).
    pub fn snapshot(self: &Arc<Tracer>) -> TraceSnapshot {
        let rings = self.rings.lock().expect("tracer ring registry poisoned");
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for (worker, ring) in rings.iter().enumerate() {
            dropped = dropped.saturating_add(ring.dropped());
            for (seq, record) in ring.snapshot() {
                // Torn or foreign records decode to None and are skipped.
                if let Some(event) = ChaseEvent::decode(&record) {
                    events.push(Recorded {
                        worker: worker as u32,
                        seq,
                        event,
                    });
                }
            }
        }
        // Rings were visited in worker order and each ring yields seqs
        // ascending, so `events` is already (worker, seq)-sorted.
        TraceSnapshot { events, dropped }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let workers = self.rings.lock().map(|r| r.len()).unwrap_or(0);
        f.debug_struct("Tracer")
            .field("workers", &workers)
            .field("ring_capacity", &self.ring_capacity)
            .finish()
    }
}

/// A merged, deterministic view of everything the tracer recorded.
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// All decoded events in `(worker, seq)` order.
    pub events: Vec<Recorded>,
    /// Total records overwritten across all rings (newest were kept).
    pub dropped: u64,
}

impl TraceSnapshot {
    /// An empty snapshot (what a disabled run exports).
    pub fn empty() -> TraceSnapshot {
        TraceSnapshot {
            events: Vec::new(),
            dropped: 0,
        }
    }
}

/// The handle instrumentation sites hold. Cheap to clone; `Disabled` is
/// the default and reduces [`TraceHandle::emit`] to one branch.
#[derive(Clone, Debug, Default)]
pub enum TraceHandle {
    /// Tracing off: `emit` never evaluates its payload closure.
    #[default]
    Disabled,
    /// Tracing on: events append to `ring` (this handle's worker slot).
    Enabled {
        /// The shared tracer (for snapshots and sibling worker handles).
        tracer: Arc<Tracer>,
        /// This handle's cached ring — appends take no lock.
        ring: Arc<Ring>,
        /// This handle's worker slot (0 = coordinating thread).
        worker: u32,
    },
}

impl TraceHandle {
    /// An enabled handle recording under worker 0 of `tracer`.
    pub fn enabled(tracer: &Arc<Tracer>) -> TraceHandle {
        TraceHandle::Enabled {
            ring: tracer.ring(0),
            tracer: Arc::clone(tracer),
            worker: 0,
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, TraceHandle::Enabled { .. })
    }

    /// Records the event built by `f` — or does nothing, without calling
    /// `f`, when disabled.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> ChaseEvent) {
        if let TraceHandle::Enabled { ring, .. } = self {
            ring.append(f().encode());
        }
    }

    /// A handle recording under worker slot `id` of the same tracer.
    /// Disabled handles return disabled handles, so call sites never
    /// branch.
    pub fn worker(&self, id: u32) -> TraceHandle {
        match self {
            TraceHandle::Disabled => TraceHandle::Disabled,
            TraceHandle::Enabled { tracer, .. } => TraceHandle::Enabled {
                ring: tracer.ring(id),
                tracer: Arc::clone(tracer),
                worker: id,
            },
        }
    }

    /// The shared tracer, if enabled (for taking snapshots).
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        match self {
            TraceHandle::Disabled => None,
            TraceHandle::Enabled { tracer, .. } => Some(tracer),
        }
    }

    /// Starts a timed span. Emits `SpanStart` now and `SpanEnd` (with the
    /// elapsed nanoseconds) when the guard drops. When disabled, no clock
    /// is read and nothing is recorded.
    pub fn span(&self, kind: SpanKind) -> SpanGuard {
        match self {
            TraceHandle::Disabled => SpanGuard {
                handle: TraceHandle::Disabled,
                kind,
                start: None,
            },
            TraceHandle::Enabled { .. } => {
                self.emit(|| ChaseEvent::SpanStart { span: kind });
                SpanGuard {
                    handle: self.clone(),
                    kind,
                    start: Some(Instant::now()),
                }
            }
        }
    }
}

/// RAII guard for a timed span; emits `SpanEnd` on drop.
#[derive(Debug)]
pub struct SpanGuard {
    handle: TraceHandle,
    kind: SpanKind,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let kind = self.kind;
            self.handle
                .emit(|| ChaseEvent::SpanEnd { span: kind, nanos });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_evaluates_payload() {
        let handle = TraceHandle::default();
        assert!(!handle.is_enabled());
        handle.emit(|| unreachable!("payload closure must not run when disabled"));
        // Worker derivation stays disabled, and spans record nothing.
        let w = handle.worker(3);
        assert!(!w.is_enabled());
        drop(w.span(SpanKind::Decide));
    }

    #[test]
    fn events_record_under_the_right_worker() {
        let tracer = Tracer::new(16);
        let handle = TraceHandle::enabled(&tracer);
        handle.emit(|| ChaseEvent::CacheLookup { hit: true });
        let w2 = handle.worker(2);
        w2.emit(|| ChaseEvent::HomPrune { depth: 1 });
        handle.emit(|| ChaseEvent::CacheLookup { hit: false });

        let snap = tracer.snapshot();
        assert_eq!(snap.dropped, 0);
        let got: Vec<(u32, u64, ChaseEvent)> = snap
            .events
            .iter()
            .map(|r| (r.worker, r.seq, r.event))
            .collect();
        assert_eq!(
            got,
            vec![
                (0, 0, ChaseEvent::CacheLookup { hit: true }),
                (0, 1, ChaseEvent::CacheLookup { hit: false }),
                (2, 0, ChaseEvent::HomPrune { depth: 1 }),
            ]
        );
    }

    #[test]
    fn snapshot_merges_workers_in_worker_then_seq_order() {
        let tracer = Tracer::new(16);
        let handle = TraceHandle::enabled(&tracer);
        // Interleave appends across workers in a scrambled order; the
        // snapshot must still come out (worker, seq)-sorted.
        let w1 = handle.worker(1);
        let w2 = handle.worker(2);
        w2.emit(|| ChaseEvent::HomExpand { depth: 0 });
        handle.emit(|| ChaseEvent::HomExpand { depth: 1 });
        w1.emit(|| ChaseEvent::HomExpand { depth: 2 });
        w2.emit(|| ChaseEvent::HomExpand { depth: 3 });
        handle.emit(|| ChaseEvent::HomExpand { depth: 4 });

        let snap = tracer.snapshot();
        let keys: Vec<(u32, u64)> = snap.events.iter().map(|r| (r.worker, r.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(
            keys,
            vec![(0, 0), (0, 1), (1, 0), (2, 0), (2, 1)],
            "one seq stream per worker, merged in worker order"
        );
    }

    #[test]
    fn overflow_is_surfaced_in_the_snapshot() {
        let tracer = Tracer::new(2);
        let handle = TraceHandle::enabled(&tracer);
        for depth in 0..5 {
            handle.emit(|| ChaseEvent::HomExpand { depth });
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.dropped, 3);
        let got: Vec<ChaseEvent> = snap.events.iter().map(|r| r.event).collect();
        assert_eq!(
            got,
            vec![
                ChaseEvent::HomExpand { depth: 3 },
                ChaseEvent::HomExpand { depth: 4 },
            ],
            "newest events survive overflow"
        );
        // Seq numbers keep their pre-overflow values.
        assert_eq!(snap.events[0].seq, 3);
        assert_eq!(snap.events[1].seq, 4);
    }

    #[test]
    fn span_guard_emits_matched_start_end_pair() {
        let tracer = Tracer::new(16);
        let handle = TraceHandle::enabled(&tracer);
        {
            let _g = handle.span(SpanKind::HomSearch);
            handle.emit(|| ChaseEvent::HomExpand { depth: 0 });
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(
            snap.events[0].event,
            ChaseEvent::SpanStart {
                span: SpanKind::HomSearch
            }
        );
        match snap.events[2].event {
            ChaseEvent::SpanEnd { span, .. } => assert_eq!(span, SpanKind::HomSearch),
            other => panic!("expected SpanEnd, got {other:?}"),
        }
    }
}
