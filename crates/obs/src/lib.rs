//! Structured chase tracing: typed events, per-worker ring buffers, and
//! profile rollups.
//!
//! The paper's central quantitative claim is the *bounded* chase:
//! containment is decided inside the first `2·|q1|·|q2|` levels of
//! `chase_ΣFL(q1)` (Theorems 4, 12, 13). Aggregate wall-clock totals
//! (`flogic_term::Metrics`) cannot show *which* of the twelve `Σ_FL` rules
//! fired, how the frontier grew per level, or how far below the theoretical
//! bound real workloads stop. This crate records exactly that:
//!
//! * [`ChaseEvent`] — the typed event vocabulary: rule firings per `Σ_FL`
//!   rule, ρ4 merges with union-find depth, ρ5 value inventions with the
//!   invented-null level, per-round frontier/atom counts, governor stops,
//!   homomorphism-search node expansions/backtracks/prunes, and
//!   containment-cache lookups, plus span start/end pairs for phase timing;
//! * [`Tracer`] / [`TraceHandle`] — a thread-aware sink: each worker
//!   appends to its own bounded [`Ring`] without locks (single-writer
//!   discipline), and a snapshot merges the per-worker buffers in
//!   deterministic `(worker, seq)` order;
//! * [`ChaseProfile`] — the rollup: per-rule firing histogram, per-level
//!   growth curve, observed chase depth vs. the Theorem 12 bound, and
//!   per-phase timing;
//! * [`export`] — JSONL and CSV renderings of traces and profiles, plus a
//!   line-oriented JSONL parser for external validators;
//! * [`Histogram`] / [`RequestSpan`] — the request-level layer `flqd`
//!   builds on: a lock-free log2-bucketed latency histogram with
//!   mergeable, Prometheus-renderable snapshots, and an allocation-free
//!   per-request span that ids a request and times its named stages.
//!
//! **Overhead contract.** Tracing is opt-in per run. The disabled handle
//! ([`TraceHandle::Disabled`], the default) reduces every instrumentation
//! site to one enum-discriminant branch; event payloads are built inside
//! closures that are never called when disabled, and no clock is read.
//!
//! **Determinism contract.** Recording only *observes*: no instrumentation
//! site influences rule matching, application order, or verdicts. Enabling
//! tracing at any thread count leaves chase results bit-identical (this is
//! enforced by `tests/parallel_determinism.rs` in the workspace root).
//!
//! This crate is dependency-free (std only) so that every other crate in
//! the workspace can sit on top of it.

mod event;
mod profile;
mod ring;
mod tracer;

pub mod export;
pub mod hist;
pub mod span;

pub use event::{ChaseEvent, Recorded, SpanKind, SPAN_KIND_COUNT};
pub use hist::{
    bucket_lower_bound, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKET_COUNT,
};
pub use profile::{ChaseProfile, LevelGrowth, RoundGrowth};
pub use ring::{Ring, RECORD_WORDS};
pub use span::{RequestSpan, MAX_STAGES};
pub use tracer::{SpanGuard, TraceHandle, TraceSnapshot, Tracer, DEFAULT_RING_CAPACITY};

/// Number of rules in `Σ_FL` (the paper's ρ1…ρ12). Mirrors
/// `flogic_model::SIGMA_RULE_COUNT`, restated here because this crate is
/// dependency-free.
pub const RULE_COUNT: usize = 12;
