//! A bounded, single-writer ring buffer of fixed-width event records.
//!
//! Each chase worker owns one [`Ring`] and is the only thread that ever
//! appends to it (single-writer discipline, enforced by the tracer handing
//! each worker its own ring). Appends are lock-free: plain relaxed stores
//! of the payload words followed by a `Release` publish of the head
//! counter; readers `Acquire` the head and then read the payload words.
//!
//! The head counter is the number of records *ever appended* — it never
//! wraps conceptually (a `u64` at one increment per event outlives any
//! run). When the ring is full, new records overwrite the oldest ones, so
//! a snapshot always holds the newest `min(head, capacity)` records and
//! [`Ring::dropped`] reports how many old records were overwritten.
//!
//! The workspace forbids `unsafe`, so the storage is a `Box<[AtomicU64]>`
//! rather than a raw buffer. A reader that snapshots *while* the writer is
//! mid-append could observe a torn record; in this workspace snapshots are
//! only taken after workers are joined (quiescent), and even a torn read is
//! merely a garbage word — [`crate::ChaseEvent::decode`] rejects records
//! with unknown tags, so it can never become undefined behavior.

use std::sync::atomic::{AtomicU64, Ordering};

/// Words per event record: tag + three payload words.
pub const RECORD_WORDS: usize = 4;

/// A bounded single-writer ring of `[u64; RECORD_WORDS]` records.
pub struct Ring {
    /// Record slots, `capacity * RECORD_WORDS` words.
    words: Box<[AtomicU64]>,
    /// Records ever appended (monotone). `head % capacity` is the next slot.
    head: AtomicU64,
    /// Capacity in records (power of two not required).
    capacity: u64,
}

impl Ring {
    /// Creates a ring holding up to `capacity` records (min 1).
    pub fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        let words = (0..capacity * RECORD_WORDS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            words,
            head: AtomicU64::new(0),
            capacity: capacity as u64,
        }
    }

    /// Capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Records ever appended (including any since overwritten).
    pub fn appended(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.appended().saturating_sub(self.capacity)
    }

    /// Appends one record, overwriting the oldest if full.
    ///
    /// Must only be called by the ring's single writer thread.
    pub fn append(&self, record: [u64; RECORD_WORDS]) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = (head % self.capacity) as usize * RECORD_WORDS;
        for (i, &w) in record.iter().enumerate() {
            self.words[slot + i].store(w, Ordering::Relaxed);
        }
        // Publish: everything stored above happens-before a reader that
        // Acquire-loads the incremented head.
        self.head.store(head + 1, Ordering::Release);
    }

    /// Copies out the newest `min(appended, capacity)` records, oldest
    /// first, paired with their global sequence numbers (0-based index in
    /// append order). Intended to be called when the writer is quiescent.
    pub fn snapshot(&self) -> Vec<(u64, [u64; RECORD_WORDS])> {
        let head = self.head.load(Ordering::Acquire);
        let len = head.min(self.capacity);
        let first_seq = head - len;
        let mut out = Vec::with_capacity(len as usize);
        for seq in first_seq..head {
            let slot = (seq % self.capacity) as usize * RECORD_WORDS;
            let mut record = [0u64; RECORD_WORDS];
            for (i, word) in record.iter_mut().enumerate() {
                *word = self.words[slot + i].load(Ordering::Relaxed);
            }
            out.push((seq, record));
        }
        out
    }
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity)
            .field("appended", &self.appended())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n: u64) -> [u64; RECORD_WORDS] {
        [n, n + 1, n + 2, n + 3]
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let ring = Ring::new(8);
        for n in 0..5 {
            ring.append(rec(n));
        }
        assert_eq!(ring.appended(), 5);
        assert_eq!(ring.dropped(), 0);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        for (i, (seq, record)) in snap.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*record, rec(i as u64));
        }
    }

    #[test]
    fn overflow_keeps_newest_and_counts_dropped() {
        let ring = Ring::new(4);
        for n in 0..10 {
            ring.append(rec(n));
        }
        assert_eq!(ring.appended(), 10);
        assert_eq!(ring.dropped(), 6);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        // The newest four records (6..10), oldest first, with true seqs.
        for (i, (seq, record)) in snap.iter().enumerate() {
            let n = 6 + i as u64;
            assert_eq!(*seq, n);
            assert_eq!(*record, rec(n));
        }
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = Ring::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.append(rec(1));
        ring.append(rec(2));
        assert_eq!(ring.snapshot(), vec![(1, rec(2))]);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn empty_ring_snapshot_is_empty() {
        let ring = Ring::new(4);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.dropped(), 0);
    }
}
