//! Per-request stage timing: [`RequestSpan`].
//!
//! A span follows one request through a pipeline of named stages
//! (parse → queue → decide → write, say), recording the wall-clock
//! nanoseconds each stage took. It is built for a reactor hot path:
//! no allocation (stages live in a fixed inline array), no locking
//! (the id comes from one relaxed atomic increment), and the clock is
//! read exactly once per stage boundary — marking a stage closes it
//! and opens the next.
//!
//! Spans cross threads by move: the reactor begins a span at parse
//! time, the worker marks the queue/decide stages, and the reactor
//! marks the final write stage when the response bytes reach the
//! socket. [`RequestSpan::mark_at`] exists for the seams where the
//! boundary instant was captured earlier than it is recorded (e.g. a
//! cache-fill closure that started inside another call).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Cap on named stages per span; marks beyond it are dropped (the
/// serving pipeline uses seven).
pub const MAX_STAGES: usize = 8;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// One request's identity and per-stage timings.
#[derive(Clone, Debug)]
pub struct RequestSpan {
    id: u64,
    started: Instant,
    last: Instant,
    stages: [(&'static str, u64); MAX_STAGES],
    len: usize,
}

impl RequestSpan {
    /// Begins a span now, assigning the next monotonically increasing
    /// request id (process-wide, starting at 1).
    pub fn begin() -> RequestSpan {
        RequestSpan::begin_at(Instant::now())
    }

    /// Begins a span whose first stage started at `start` (e.g. the
    /// instant the request's first byte was read, captured before
    /// parsing began).
    pub fn begin_at(start: Instant) -> RequestSpan {
        RequestSpan {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            started: start,
            last: start,
            stages: [("", 0); MAX_STAGES],
            len: 0,
        }
    }

    /// This request's id. Ids increase monotonically across all spans
    /// in the process, so they order requests by arrival.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Closes the current stage now, naming it `stage`; the next mark
    /// times from this instant. Returns the stage's nanoseconds.
    pub fn mark(&mut self, stage: &'static str) -> u64 {
        self.mark_at(stage, Instant::now())
    }

    /// Closes the current stage at `now` (a caller-captured instant),
    /// naming it `stage`. Returns the stage's nanoseconds. Instants
    /// earlier than the previous boundary record 0.
    pub fn mark_at(&mut self, stage: &'static str, now: Instant) -> u64 {
        let nanos =
            u64::try_from(now.saturating_duration_since(self.last).as_nanos()).unwrap_or(u64::MAX);
        self.last = now;
        if self.len < MAX_STAGES {
            self.stages[self.len] = (stage, nanos);
            self.len += 1;
        }
        nanos
    }

    /// The recorded stages, in mark order.
    pub fn stages(&self) -> &[(&'static str, u64)] {
        &self.stages[..self.len]
    }

    /// The nanoseconds of the named stage, if it was marked (first
    /// match wins).
    pub fn stage_nanos(&self, stage: &str) -> Option<u64> {
        self.stages()
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|&(_, n)| n)
    }

    /// Nanoseconds from span begin to the last mark — the request's
    /// end-to-end latency once the final stage is marked.
    pub fn total_nanos(&self) -> u64 {
        u64::try_from(self.last.saturating_duration_since(self.started).as_nanos())
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ids_increase_monotonically() {
        let a = RequestSpan::begin();
        let b = RequestSpan::begin();
        let c = RequestSpan::begin();
        assert!(a.id() < b.id() && b.id() < c.id());
    }

    #[test]
    fn marks_name_stages_in_order_and_sum_to_total() {
        let t0 = Instant::now();
        let mut span = RequestSpan::begin_at(t0);
        span.mark_at("parse", t0 + Duration::from_nanos(100));
        span.mark_at("queue", t0 + Duration::from_nanos(250));
        span.mark_at("decide", t0 + Duration::from_nanos(1_250));
        assert_eq!(
            span.stages(),
            &[("parse", 100), ("queue", 150), ("decide", 1_000)]
        );
        assert_eq!(span.stage_nanos("queue"), Some(150));
        assert_eq!(span.stage_nanos("write"), None);
        assert_eq!(span.total_nanos(), 1_250);
    }

    #[test]
    fn out_of_order_instants_clamp_to_zero() {
        let t0 = Instant::now();
        let mut span = RequestSpan::begin_at(t0 + Duration::from_nanos(500));
        assert_eq!(span.mark_at("early", t0), 0);
    }

    #[test]
    fn marks_beyond_the_cap_are_dropped() {
        let mut span = RequestSpan::begin();
        for _ in 0..MAX_STAGES + 3 {
            span.mark("s");
        }
        assert_eq!(span.stages().len(), MAX_STAGES);
    }
}
