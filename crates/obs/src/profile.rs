//! The `ChaseProfile` rollup: aggregate a trace snapshot into the tables
//! `flq profile` prints and the bench harness exports.

use std::fmt;

use crate::event::{ChaseEvent, SpanKind, SPAN_KIND_COUNT};
use crate::tracer::TraceSnapshot;
use crate::RULE_COUNT;

/// Conjuncts created at one chase level (the per-level growth curve).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelGrowth {
    /// Chase level (Definition 3(3)); level 0 is the initial query body.
    pub level: u32,
    /// Conjuncts created at this level by rule firings.
    pub created: u64,
    /// ρ5 value inventions at this level.
    pub inventions: u64,
}

/// One engine frontier round, as observed at its start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundGrowth {
    /// Round counter (0-based).
    pub round: u32,
    /// Deepest live conjunct level when the round started.
    pub max_level: u32,
    /// Conjuncts in the round's frontier.
    pub frontier: u64,
    /// Total live conjuncts when the round started.
    pub atoms: u64,
}

/// Aggregated view of one traced run.
#[derive(Clone, Debug, Default)]
pub struct ChaseProfile {
    /// Firings per `Σ_FL` rule, dense-indexed (`0 ↦ ρ1 … 11 ↦ ρ12`).
    /// ρ4's slot counts EGD merge rounds (the EGD "fires" by merging).
    pub rule_firings: [u64; RULE_COUNT],
    /// Conjuncts created per level, ascending by level.
    pub level_growth: Vec<LevelGrowth>,
    /// Frontier rounds in order.
    pub rounds: Vec<RoundGrowth>,
    /// Deepest level any event observed.
    pub observed_depth: u32,
    /// The Theorem 12 bound `2·|q1|·|q2|` (0 when no `Bound` event).
    pub theorem_bound: u64,
    /// The effective level bound the chase ran with (0 when untraced).
    pub level_bound: u64,
    /// Terms rewritten across all ρ4 merge rounds.
    pub egd_terms_merged: u64,
    /// Deepest union-find chain walked during ρ4 merging.
    pub egd_max_depth: u32,
    /// ρ5 labelled nulls invented.
    pub nulls_invented: u64,
    /// Homomorphism-search node expansions.
    pub hom_expansions: u64,
    /// Homomorphism-search backtracks.
    pub hom_backtracks: u64,
    /// Homomorphism-search candidate prunes.
    pub hom_prunes: u64,
    /// Containment-cache hits.
    pub cache_hits: u64,
    /// Containment-cache misses.
    pub cache_misses: u64,
    /// Governor interventions.
    pub governor_stops: u64,
    /// Parallel discovery chunks processed.
    pub discovery_chunks: u64,
    /// Total span nanoseconds per [`SpanKind`], dense-indexed.
    pub span_nanos: [u64; SPAN_KIND_COUNT],
    /// Completed spans per [`SpanKind`], dense-indexed.
    pub span_counts: [u64; SPAN_KIND_COUNT],
    /// Events the rings overwrote (profile may undercount if nonzero).
    pub dropped: u64,
}

impl ChaseProfile {
    /// Rolls a snapshot up into a profile.
    pub fn from_snapshot(snapshot: &TraceSnapshot) -> ChaseProfile {
        let mut p = ChaseProfile {
            dropped: snapshot.dropped,
            ..ChaseProfile::default()
        };
        // Level → (created, inventions); levels are small (bounded by the
        // theorem bound), so a dense Vec keyed by level is fine.
        let mut levels: Vec<(u64, u64)> = Vec::new();
        let bump_level = |levels: &mut Vec<(u64, u64)>, level: u32, invention: bool| {
            let idx = level as usize;
            if levels.len() <= idx {
                levels.resize(idx + 1, (0, 0));
            }
            if invention {
                levels[idx].1 += 1;
            } else {
                levels[idx].0 += 1;
            }
        };
        for rec in &snapshot.events {
            match rec.event {
                ChaseEvent::RuleFired { rule, level } => {
                    if let Some(slot) = p.rule_firings.get_mut(rule as usize) {
                        *slot += 1;
                    }
                    bump_level(&mut levels, level, false);
                    p.observed_depth = p.observed_depth.max(level);
                }
                ChaseEvent::EgdMerge { merged, depth } => {
                    // ρ4 is the EGD: its histogram slot counts merge rounds.
                    p.rule_firings[3] += 1;
                    p.egd_terms_merged += u64::from(merged);
                    p.egd_max_depth = p.egd_max_depth.max(depth);
                }
                ChaseEvent::NullInvented { level, .. } => {
                    p.nulls_invented += 1;
                    bump_level(&mut levels, level, true);
                    p.observed_depth = p.observed_depth.max(level);
                }
                ChaseEvent::Frontier {
                    round,
                    max_level,
                    frontier,
                    atoms,
                } => {
                    p.rounds.push(RoundGrowth {
                        round,
                        max_level,
                        frontier,
                        atoms,
                    });
                    p.observed_depth = p.observed_depth.max(max_level);
                }
                ChaseEvent::GovernorStop { .. } => p.governor_stops += 1,
                ChaseEvent::HomExpand { .. } => p.hom_expansions += 1,
                ChaseEvent::HomBacktrack { .. } => p.hom_backtracks += 1,
                ChaseEvent::HomPrune { .. } => p.hom_prunes += 1,
                ChaseEvent::CacheLookup { hit } => {
                    if hit {
                        p.cache_hits += 1;
                    } else {
                        p.cache_misses += 1;
                    }
                }
                ChaseEvent::SpanStart { .. } => {}
                ChaseEvent::SpanEnd { span, nanos } => {
                    p.span_nanos[span.index()] = p.span_nanos[span.index()].saturating_add(nanos);
                    p.span_counts[span.index()] += 1;
                }
                ChaseEvent::Bound {
                    level_bound,
                    theorem_bound,
                } => {
                    p.level_bound = level_bound;
                    p.theorem_bound = theorem_bound;
                }
                ChaseEvent::DiscoveryChunk { .. } => p.discovery_chunks += 1,
            }
        }
        p.level_growth = levels
            .into_iter()
            .enumerate()
            .map(|(level, (created, inventions))| LevelGrowth {
                level: level as u32,
                created,
                inventions,
            })
            .collect();
        p
    }

    /// Observed depth as a fraction of the theorem bound; `None` when no
    /// bound was recorded.
    pub fn depth_ratio(&self) -> Option<f64> {
        if self.theorem_bound == 0 {
            None
        } else {
            Some(f64::from(self.observed_depth) / self.theorem_bound as f64)
        }
    }

    /// Total rule firings across the histogram.
    pub fn total_firings(&self) -> u64 {
        self.rule_firings.iter().sum()
    }

    /// Total nanoseconds recorded for a span kind.
    pub fn span_total(&self, kind: SpanKind) -> u64 {
        self.span_nanos[kind.index()]
    }

    /// Merges another profile into this one (for aggregating a batch of
    /// runs in the bench harness). Rounds and level curves are summed
    /// pointwise; bounds keep the maximum seen.
    pub fn absorb(&mut self, other: &ChaseProfile) {
        for (a, b) in self.rule_firings.iter_mut().zip(other.rule_firings) {
            *a += b;
        }
        for lg in &other.level_growth {
            let idx = lg.level as usize;
            if self.level_growth.len() <= idx {
                for level in self.level_growth.len()..=idx {
                    self.level_growth.push(LevelGrowth {
                        level: level as u32,
                        created: 0,
                        inventions: 0,
                    });
                }
            }
            self.level_growth[idx].created += lg.created;
            self.level_growth[idx].inventions += lg.inventions;
        }
        self.observed_depth = self.observed_depth.max(other.observed_depth);
        self.theorem_bound = self.theorem_bound.max(other.theorem_bound);
        self.level_bound = self.level_bound.max(other.level_bound);
        self.egd_terms_merged += other.egd_terms_merged;
        self.egd_max_depth = self.egd_max_depth.max(other.egd_max_depth);
        self.nulls_invented += other.nulls_invented;
        self.hom_expansions += other.hom_expansions;
        self.hom_backtracks += other.hom_backtracks;
        self.hom_prunes += other.hom_prunes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.governor_stops += other.governor_stops;
        self.discovery_chunks += other.discovery_chunks;
        for (a, b) in self.span_nanos.iter_mut().zip(other.span_nanos) {
            *a = a.saturating_add(b);
        }
        for (a, b) in self.span_counts.iter_mut().zip(other.span_counts) {
            *a += b;
        }
        self.dropped += other.dropped;
    }
}

impl fmt::Display for ChaseProfile {
    /// The human-readable rendering `flq profile` prints: rule histogram
    /// (all twelve rows, so ρ4/ρ5 coverage is visible even at zero),
    /// level-growth table, phase timings, and the depth-vs-bound line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rule firings (Σ_FL):")?;
        for (i, &count) in self.rule_firings.iter().enumerate() {
            let note = match i {
                3 => "  (EGD merge rounds)",
                4 => "  (value invention)",
                _ => "",
            };
            writeln!(f, "  rho{:<2} {:>8}{}", i + 1, count, note)?;
        }
        writeln!(f, "  total {:>8}", self.total_firings())?;

        writeln!(f, "level growth:")?;
        writeln!(f, "  {:>5} {:>10} {:>10}", "level", "created", "invented")?;
        for lg in &self.level_growth {
            writeln!(
                f,
                "  {:>5} {:>10} {:>10}",
                lg.level, lg.created, lg.inventions
            )?;
        }
        if !self.rounds.is_empty() {
            writeln!(f, "frontier rounds:")?;
            writeln!(
                f,
                "  {:>5} {:>9} {:>10} {:>10}",
                "round", "max_lvl", "frontier", "atoms"
            )?;
            for r in &self.rounds {
                writeln!(
                    f,
                    "  {:>5} {:>9} {:>10} {:>10}",
                    r.round, r.max_level, r.frontier, r.atoms
                )?;
            }
        }

        writeln!(f, "phase timing:")?;
        for kind in SpanKind::ALL {
            let i = kind.index();
            if self.span_counts[i] > 0 {
                writeln!(
                    f,
                    "  {:<13} {:>10.3} ms  ({} span{})",
                    kind.name(),
                    self.span_nanos[i] as f64 / 1e6,
                    self.span_counts[i],
                    if self.span_counts[i] == 1 { "" } else { "s" }
                )?;
            }
        }

        writeln!(
            f,
            "egd: {} merge rounds, {} terms merged, max union-find depth {}",
            self.rule_firings[3], self.egd_terms_merged, self.egd_max_depth
        )?;
        writeln!(f, "nulls invented (rho5): {}", self.nulls_invented)?;
        writeln!(
            f,
            "hom search: {} expansions, {} backtracks, {} prunes",
            self.hom_expansions, self.hom_backtracks, self.hom_prunes
        )?;
        writeln!(
            f,
            "cache: {} hits, {} misses",
            self.cache_hits, self.cache_misses
        )?;
        if self.governor_stops > 0 {
            writeln!(f, "governor stops: {}", self.governor_stops)?;
        }
        if self.discovery_chunks > 0 {
            writeln!(f, "parallel discovery chunks: {}", self.discovery_chunks)?;
        }
        match self.depth_ratio() {
            Some(ratio) => writeln!(
                f,
                "observed depth {} / theorem bound {} = {:.3} (level bound {})",
                self.observed_depth, self.theorem_bound, ratio, self.level_bound
            )?,
            None => writeln!(
                f,
                "observed depth {} (no bound recorded)",
                self.observed_depth
            )?,
        }
        if self.dropped > 0 {
            writeln!(
                f,
                "warning: {} events dropped (ring overflow); counts undercount",
                self.dropped
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Recorded;

    fn rec(event: ChaseEvent) -> Recorded {
        Recorded {
            worker: 0,
            seq: 0,
            event,
        }
    }

    fn sample_snapshot() -> TraceSnapshot {
        TraceSnapshot {
            events: vec![
                rec(ChaseEvent::Bound {
                    level_bound: 6,
                    theorem_bound: 24,
                }),
                rec(ChaseEvent::SpanStart {
                    span: SpanKind::ChaseBounded,
                }),
                rec(ChaseEvent::Frontier {
                    round: 0,
                    max_level: 0,
                    frontier: 3,
                    atoms: 3,
                }),
                rec(ChaseEvent::RuleFired { rule: 0, level: 1 }),
                rec(ChaseEvent::RuleFired { rule: 4, level: 1 }),
                rec(ChaseEvent::NullInvented { null: 9, level: 1 }),
                rec(ChaseEvent::EgdMerge {
                    merged: 2,
                    depth: 3,
                }),
                rec(ChaseEvent::RuleFired { rule: 0, level: 2 }),
                rec(ChaseEvent::SpanEnd {
                    span: SpanKind::ChaseBounded,
                    nanos: 500,
                }),
                rec(ChaseEvent::HomExpand { depth: 0 }),
                rec(ChaseEvent::HomPrune { depth: 1 }),
                rec(ChaseEvent::HomBacktrack { depth: 0 }),
                rec(ChaseEvent::CacheLookup { hit: false }),
                rec(ChaseEvent::CacheLookup { hit: true }),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn rollup_aggregates_every_event_kind() {
        let p = ChaseProfile::from_snapshot(&sample_snapshot());
        assert_eq!(p.rule_firings[0], 2, "rho1 fired twice");
        assert_eq!(p.rule_firings[3], 1, "rho4 slot counts EGD merge rounds");
        assert_eq!(p.rule_firings[4], 1, "rho5 fired once");
        assert_eq!(p.total_firings(), 4);
        assert_eq!(p.nulls_invented, 1);
        assert_eq!(p.egd_terms_merged, 2);
        assert_eq!(p.egd_max_depth, 3);
        assert_eq!(p.observed_depth, 2);
        assert_eq!(p.theorem_bound, 24);
        assert_eq!(p.level_bound, 6);
        assert_eq!(p.depth_ratio(), Some(2.0 / 24.0));
        assert_eq!(p.hom_expansions, 1);
        assert_eq!(p.hom_prunes, 1);
        assert_eq!(p.hom_backtracks, 1);
        assert_eq!(p.cache_hits, 1);
        assert_eq!(p.cache_misses, 1);
        assert_eq!(p.span_total(SpanKind::ChaseBounded), 500);
        assert_eq!(p.span_counts[SpanKind::ChaseBounded.index()], 1);
        assert_eq!(p.rounds.len(), 1);
        // Level curve: level 0 untouched, level 1 has 2 created + 1 invented,
        // level 2 has 1 created.
        assert_eq!(
            p.level_growth,
            vec![
                LevelGrowth {
                    level: 0,
                    created: 0,
                    inventions: 0
                },
                LevelGrowth {
                    level: 1,
                    created: 2,
                    inventions: 1
                },
                LevelGrowth {
                    level: 2,
                    created: 1,
                    inventions: 0
                },
            ]
        );
    }

    #[test]
    fn empty_snapshot_profiles_to_zeroes() {
        let p = ChaseProfile::from_snapshot(&TraceSnapshot::empty());
        assert_eq!(p.total_firings(), 0);
        assert_eq!(p.observed_depth, 0);
        assert_eq!(p.depth_ratio(), None);
        assert!(p.level_growth.is_empty());
        // Display must not panic on the empty profile.
        let _ = p.to_string();
    }

    #[test]
    fn absorb_sums_histograms_and_keeps_max_depth() {
        let mut a = ChaseProfile::from_snapshot(&sample_snapshot());
        let b = ChaseProfile::from_snapshot(&sample_snapshot());
        a.absorb(&b);
        assert_eq!(a.rule_firings[0], 4);
        assert_eq!(a.total_firings(), 8);
        assert_eq!(a.observed_depth, 2);
        assert_eq!(a.theorem_bound, 24);
        assert_eq!(a.nulls_invented, 2);
        assert_eq!(a.level_growth[1].created, 4);
        assert_eq!(a.span_total(SpanKind::ChaseBounded), 1000);
    }

    #[test]
    fn display_mentions_rho4_and_rho5_even_at_zero() {
        let text = ChaseProfile::from_snapshot(&TraceSnapshot::empty()).to_string();
        assert!(text.contains("rho4"), "rho4 row always printed:\n{text}");
        assert!(text.contains("rho5"), "rho5 row always printed:\n{text}");
        assert!(text.contains("rho12"), "all twelve rows printed:\n{text}");
    }
}
