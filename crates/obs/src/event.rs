//! The typed event vocabulary and its fixed-width binary encoding.
//!
//! Every event encodes into exactly [`RECORD_WORDS`](crate::RECORD_WORDS)
//! `u64` words (tag + three payload words) so the per-worker ring buffers
//! can store them in place without allocation. Encoding and decoding are
//! exact inverses for every constructible event (see the round-trip test).

use std::fmt;

use crate::ring::RECORD_WORDS;

/// Number of span kinds (the length of per-kind timing arrays).
pub const SPAN_KIND_COUNT: usize = 4;

/// A timed phase of the decision procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// The preliminary chase `chase⁻ = chase_{Σ_FL − ρ5}` (level 0).
    ChaseMinus,
    /// The level-bounded phase with all twelve rules (ρ5 may invent).
    ChaseBounded,
    /// The backtracking homomorphism search `body(q2) → chase(q1)`.
    HomSearch,
    /// One whole containment decision (chase + hom + bookkeeping).
    Decide,
}

impl SpanKind {
    /// All kinds, in dense-index order.
    pub const ALL: [SpanKind; SPAN_KIND_COUNT] = [
        SpanKind::ChaseMinus,
        SpanKind::ChaseBounded,
        SpanKind::HomSearch,
        SpanKind::Decide,
    ];

    /// Dense index in `0..SPAN_KIND_COUNT`.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable machine-readable name (used in the JSONL export).
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::ChaseMinus => "chase_minus",
            SpanKind::ChaseBounded => "chase_bounded",
            SpanKind::HomSearch => "hom_search",
            SpanKind::Decide => "decide",
        }
    }

    fn from_index(i: u64) -> Option<SpanKind> {
        SpanKind::ALL.get(usize::try_from(i).ok()?).copied()
    }

    /// Parses a [`SpanKind::name`] back.
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured observation from the chase runtime.
///
/// `rule` fields are dense `Σ_FL` rule indexes (`0 ↦ ρ1 … 11 ↦ ρ12`) and
/// `reason` fields are the governor's exhaust-reason index — plain integers
/// because this crate sits below `flogic-model` and `flogic-chase`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseEvent {
    /// A TGD application succeeded: `rule` fired and created a conjunct at
    /// `level`.
    RuleFired {
        /// Dense rule index (`0 ↦ ρ1 … 11 ↦ ρ12`).
        rule: u8,
        /// Level of the created conjunct (Definition 3(3)).
        level: u32,
    },
    /// One ρ4 (EGD) merge round: `merged` terms were rewritten into their
    /// representatives; `depth` is the longest union-find chain walked
    /// while computing those representatives.
    EgdMerge {
        /// Terms rewritten in this round.
        merged: u32,
        /// Longest union-find parent chain observed.
        depth: u32,
    },
    /// ρ5 invented a fresh labelled null.
    NullInvented {
        /// The invented null's id.
        null: u64,
        /// Level of the conjunct carrying the fresh value.
        level: u32,
    },
    /// A frontier round is about to run: the chase currently has `atoms`
    /// live conjuncts, `frontier` of them are new since the last round, and
    /// the deepest live conjunct sits at `max_level`.
    Frontier {
        /// Round counter within one engine run (0-based).
        round: u32,
        /// Deepest live conjunct level when the round started.
        max_level: u32,
        /// Conjuncts in this round's frontier.
        frontier: u64,
        /// Total live conjuncts when the round started.
        atoms: u64,
    },
    /// The resource governor stopped the run.
    GovernorStop {
        /// Exhaust-reason index (`flogic_chase::ExhaustReason` order:
        /// 0 conjuncts, 1 deadline, 2 steps, 3 bytes, 4 cancelled).
        reason: u8,
    },
    /// The homomorphism search descended into a deeper node.
    HomExpand {
        /// Source atoms already mapped when the expansion happened.
        depth: u32,
    },
    /// The homomorphism search exhausted a node's candidates and unwound.
    HomBacktrack {
        /// Source atoms mapped at the abandoned node.
        depth: u32,
    },
    /// A candidate conjunct failed unification and was pruned.
    HomPrune {
        /// Source atoms mapped when the candidate was rejected.
        depth: u32,
    },
    /// A containment-decision cache lookup.
    CacheLookup {
        /// Whether the canonical pair was already memoized.
        hit: bool,
    },
    /// A timed phase began.
    SpanStart {
        /// Which phase.
        span: SpanKind,
    },
    /// A timed phase ended after `nanos` wall-clock nanoseconds.
    SpanEnd {
        /// Which phase.
        span: SpanKind,
        /// Wall-clock duration of the span in nanoseconds (saturating).
        nanos: u64,
    },
    /// The level bounds governing a containment decision, emitted once at
    /// the start so a trace is self-describing: validators can check
    /// observed depth against the Theorem 12 bound without re-deriving it.
    Bound {
        /// The effective level bound the chase ran with.
        level_bound: u64,
        /// The Theorem 12 bound `2·|q1|·|q2|`.
        theorem_bound: u64,
    },
    /// A parallel discovery worker finished one frontier chunk.
    DiscoveryChunk {
        /// Conjuncts in the chunk.
        conjuncts: u64,
        /// Applicable rule instances the chunk produced.
        candidates: u64,
    },
}

/// Event tags of the binary encoding (word 0 of a record).
mod tag {
    pub const RULE_FIRED: u64 = 0;
    pub const EGD_MERGE: u64 = 1;
    pub const NULL_INVENTED: u64 = 2;
    pub const FRONTIER: u64 = 3;
    pub const GOVERNOR_STOP: u64 = 4;
    pub const HOM_EXPAND: u64 = 5;
    pub const HOM_BACKTRACK: u64 = 6;
    pub const HOM_PRUNE: u64 = 7;
    pub const CACHE_LOOKUP: u64 = 8;
    pub const SPAN_START: u64 = 9;
    pub const SPAN_END: u64 = 10;
    pub const BOUND: u64 = 11;
    pub const DISCOVERY_CHUNK: u64 = 12;
}

/// Packs two `u32`s into one word (`lo` in the low half).
fn pack(lo: u32, hi: u32) -> u64 {
    u64::from(lo) | (u64::from(hi) << 32)
}

/// Splits a packed word back into `(lo, hi)`.
fn unpack(w: u64) -> (u32, u32) {
    (w as u32, (w >> 32) as u32)
}

impl ChaseEvent {
    /// Encodes the event into one fixed-width record.
    pub fn encode(&self) -> [u64; RECORD_WORDS] {
        match *self {
            ChaseEvent::RuleFired { rule, level } => {
                [tag::RULE_FIRED, u64::from(rule), u64::from(level), 0]
            }
            ChaseEvent::EgdMerge { merged, depth } => {
                [tag::EGD_MERGE, u64::from(merged), u64::from(depth), 0]
            }
            ChaseEvent::NullInvented { null, level } => {
                [tag::NULL_INVENTED, null, u64::from(level), 0]
            }
            ChaseEvent::Frontier {
                round,
                max_level,
                frontier,
                atoms,
            } => [tag::FRONTIER, pack(round, max_level), frontier, atoms],
            ChaseEvent::GovernorStop { reason } => [tag::GOVERNOR_STOP, u64::from(reason), 0, 0],
            ChaseEvent::HomExpand { depth } => [tag::HOM_EXPAND, u64::from(depth), 0, 0],
            ChaseEvent::HomBacktrack { depth } => [tag::HOM_BACKTRACK, u64::from(depth), 0, 0],
            ChaseEvent::HomPrune { depth } => [tag::HOM_PRUNE, u64::from(depth), 0, 0],
            ChaseEvent::CacheLookup { hit } => [tag::CACHE_LOOKUP, u64::from(hit), 0, 0],
            ChaseEvent::SpanStart { span } => [tag::SPAN_START, span.index() as u64, 0, 0],
            ChaseEvent::SpanEnd { span, nanos } => [tag::SPAN_END, span.index() as u64, nanos, 0],
            ChaseEvent::Bound {
                level_bound,
                theorem_bound,
            } => [tag::BOUND, level_bound, theorem_bound, 0],
            ChaseEvent::DiscoveryChunk {
                conjuncts,
                candidates,
            } => [tag::DISCOVERY_CHUNK, conjuncts, candidates, 0],
        }
    }

    /// Decodes a record; `None` for an unknown tag or out-of-range payload
    /// (a torn or foreign record — skipped rather than trusted).
    pub fn decode(words: &[u64; RECORD_WORDS]) -> Option<ChaseEvent> {
        let ev = match words[0] {
            tag::RULE_FIRED => ChaseEvent::RuleFired {
                rule: u8::try_from(words[1]).ok().filter(|&r| r < 12)?,
                level: u32::try_from(words[2]).ok()?,
            },
            tag::EGD_MERGE => ChaseEvent::EgdMerge {
                merged: u32::try_from(words[1]).ok()?,
                depth: u32::try_from(words[2]).ok()?,
            },
            tag::NULL_INVENTED => ChaseEvent::NullInvented {
                null: words[1],
                level: u32::try_from(words[2]).ok()?,
            },
            tag::FRONTIER => {
                let (round, max_level) = unpack(words[1]);
                ChaseEvent::Frontier {
                    round,
                    max_level,
                    frontier: words[2],
                    atoms: words[3],
                }
            }
            tag::GOVERNOR_STOP => ChaseEvent::GovernorStop {
                reason: u8::try_from(words[1]).ok()?,
            },
            tag::HOM_EXPAND => ChaseEvent::HomExpand {
                depth: u32::try_from(words[1]).ok()?,
            },
            tag::HOM_BACKTRACK => ChaseEvent::HomBacktrack {
                depth: u32::try_from(words[1]).ok()?,
            },
            tag::HOM_PRUNE => ChaseEvent::HomPrune {
                depth: u32::try_from(words[1]).ok()?,
            },
            tag::CACHE_LOOKUP => ChaseEvent::CacheLookup { hit: words[1] != 0 },
            tag::SPAN_START => ChaseEvent::SpanStart {
                span: SpanKind::from_index(words[1])?,
            },
            tag::SPAN_END => ChaseEvent::SpanEnd {
                span: SpanKind::from_index(words[1])?,
                nanos: words[2],
            },
            tag::BOUND => ChaseEvent::Bound {
                level_bound: words[1],
                theorem_bound: words[2],
            },
            tag::DISCOVERY_CHUNK => ChaseEvent::DiscoveryChunk {
                conjuncts: words[1],
                candidates: words[2],
            },
            _ => return None,
        };
        Some(ev)
    }

    /// Stable machine-readable event-type name (used in the JSONL export).
    pub const fn type_name(&self) -> &'static str {
        match self {
            ChaseEvent::RuleFired { .. } => "rule_fired",
            ChaseEvent::EgdMerge { .. } => "egd_merge",
            ChaseEvent::NullInvented { .. } => "null_invented",
            ChaseEvent::Frontier { .. } => "frontier",
            ChaseEvent::GovernorStop { .. } => "governor_stop",
            ChaseEvent::HomExpand { .. } => "hom_expand",
            ChaseEvent::HomBacktrack { .. } => "hom_backtrack",
            ChaseEvent::HomPrune { .. } => "hom_prune",
            ChaseEvent::CacheLookup { .. } => "cache_lookup",
            ChaseEvent::SpanStart { .. } => "span_start",
            ChaseEvent::SpanEnd { .. } => "span_end",
            ChaseEvent::Bound { .. } => "bound",
            ChaseEvent::DiscoveryChunk { .. } => "discovery_chunk",
        }
    }
}

/// An event as it came out of a tracer snapshot: which worker recorded it
/// and its per-worker sequence number. Snapshots are ordered by
/// `(worker, seq)`, which is a pure function of what each worker appended —
/// never of scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Recorded {
    /// The recording worker's slot (0 is the coordinating thread).
    pub worker: u32,
    /// Per-worker append sequence number (monotone, gap-free unless the
    /// ring dropped old events).
    pub seq: u64,
    /// The event.
    pub event: ChaseEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ChaseEvent> {
        vec![
            ChaseEvent::RuleFired { rule: 4, level: 3 },
            ChaseEvent::EgdMerge {
                merged: 2,
                depth: 5,
            },
            ChaseEvent::NullInvented { null: 77, level: 1 },
            ChaseEvent::Frontier {
                round: 9,
                max_level: 4,
                frontier: 12,
                atoms: 40,
            },
            ChaseEvent::GovernorStop { reason: 2 },
            ChaseEvent::HomExpand { depth: 2 },
            ChaseEvent::HomBacktrack { depth: 1 },
            ChaseEvent::HomPrune { depth: 3 },
            ChaseEvent::CacheLookup { hit: true },
            ChaseEvent::CacheLookup { hit: false },
            ChaseEvent::SpanStart {
                span: SpanKind::ChaseMinus,
            },
            ChaseEvent::SpanEnd {
                span: SpanKind::Decide,
                nanos: 123_456,
            },
            ChaseEvent::Bound {
                level_bound: 9,
                theorem_bound: 24,
            },
            ChaseEvent::DiscoveryChunk {
                conjuncts: 8,
                candidates: 31,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for ev in samples() {
            let words = ev.encode();
            assert_eq!(ChaseEvent::decode(&words), Some(ev), "{ev:?}");
        }
    }

    #[test]
    fn unknown_tag_and_bad_payload_decode_to_none() {
        assert_eq!(ChaseEvent::decode(&[999, 0, 0, 0]), None);
        // Rule index out of range.
        assert_eq!(ChaseEvent::decode(&[0, 12, 0, 0]), None);
        // Span index out of range.
        assert_eq!(ChaseEvent::decode(&[9, 99, 0, 0]), None);
    }

    #[test]
    fn span_kind_names_round_trip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(SpanKind::from_name("nope"), None);
    }
}
