//! A lock-free, fixed-size log2-bucketed latency histogram.
//!
//! `flqd` needs latency *distributions*, not just totals: a p99 that
//! doubles while the mean holds still is exactly the regression a flat
//! counter dump cannot show. [`Histogram`] is built for the reactor's
//! constraints — recording a sample is three relaxed atomic adds and
//! one atomic max (no locks, no allocation, no clock reads beyond the
//! caller's own), so it can sit on the per-request hot path of every
//! stage without perturbing what it measures.
//!
//! Buckets are powers of two: bucket `i` holds samples whose bit length
//! is `i` — the half-open value range `[2^(i-1), 2^i - 1]` (bucket 0
//! holds exactly the value 0). Sixty-four buckets therefore cover the
//! whole `u64` nanosecond range with a worst-case relative error of 2×,
//! tightened by linear interpolation inside the winning bucket and
//! clamped by the exactly-tracked maximum. Snapshots are plain arrays:
//! mergeable across workers, diffable across scrapes, and renderable as
//! Prometheus cumulative `_bucket{le="..."}` series.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit length of a `u64` sample.
pub const BUCKET_COUNT: usize = 64;

/// The bucket a value lands in: its bit length, clamped to the last
/// bucket (so bucket 63 also absorbs 64-bit values).
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKET_COUNT - 1)
}

/// Inclusive lower bound of bucket `i` (`0`, then `2^(i-1)`).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`; the last bucket is
/// unbounded and reports `u64::MAX`).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKET_COUNT - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free log2-bucketed histogram of `u64` samples (nanoseconds by
/// convention). Recording never blocks, never allocates, and is safe
/// from any number of threads; snapshots are taken with relaxed loads
/// and are exact once writers quiesce.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Three relaxed `fetch_add`s and one
    /// `fetch_max`; callable concurrently from any thread.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`]: mergeable, diffable, and
/// renderable. All fields are public so external tooling (e.g. a load
/// generator diffing two Prometheus scrapes) can reconstruct one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` = bit length `i`).
    pub buckets: [u64; BUCKET_COUNT],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (exact, not bucketed).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self` (bucket-wise sums; `max` takes the
    /// larger). Merging per-worker snapshots then taking a percentile
    /// equals taking the percentile of the union of samples, up to the
    /// same in-bucket interpolation.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `p` in `[0, 1]`: the winning bucket is
    /// found by cumulative rank, then the position inside it is
    /// linearly interpolated and clamped by the exact recorded maximum.
    /// Returns 0 on an empty snapshot.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        if rank == self.count {
            return self.max;
        }
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lo = bucket_lower_bound(i);
                let hi = bucket_upper_bound(i).min(self.max);
                let within = (rank - cum - 1) as f64 / c as f64;
                return lo + ((hi.saturating_sub(lo)) as f64 * within).round() as u64;
            }
            cum += c;
        }
        self.max
    }

    /// The median (`percentile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Appends this snapshot as Prometheus cumulative histogram sample
    /// lines: `<name>_bucket{<labels>,le="..."}` for every bucket up to
    /// the highest non-empty one, the mandatory `le="+Inf"` bucket, and
    /// the `_sum` / `_count` series. `labels` is either empty or a
    /// comma-joined `key="value"` list without braces. The caller emits
    /// the family's `# TYPE <name> histogram` header once.
    pub fn render_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write as _;
        let highest = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        let mut cum = 0u64;
        for i in 0..highest {
            cum += self.buckets[i];
            let le = bucket_upper_bound(i);
            match labels.is_empty() {
                true => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                }
                false => {
                    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cum}");
                }
            }
        }
        let (lb, rb) = if labels.is_empty() {
            (String::from("{"), String::from("}"))
        } else {
            (format!("{{{labels},"), String::from("}"))
        };
        let _ = writeln!(out, "{name}_bucket{lb}le=\"+Inf\"{rb} {}", self.count);
        let sep = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(out, "{name}_sum{sep} {}", self.sum);
        let _ = writeln!(out, "{name}_count{sep} {}", self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for i in 1..BUCKET_COUNT - 1 {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            assert_eq!(hi, 2u64.pow(i as u32) - 1, "bucket {i} upper bound");
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1, "first value past bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);

        // Recording exactly the boundary values lands each in its own
        // bucket, observable through the snapshot.
        let h = Histogram::new();
        for v in [0u64, 1, 511, 512, 1023, 1024] {
            h.record_nanos(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1, "value 0");
        assert_eq!(s.buckets[1], 1, "value 1");
        assert_eq!(s.buckets[9], 1, "511 has 9 bits");
        assert_eq!(s.buckets[10], 2, "512 and 1023 have 10 bits");
        assert_eq!(s.buckets[11], 1, "1024 has 11 bits");
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 1024);
    }

    #[test]
    fn concurrent_records_from_eight_threads_sum_to_the_total() {
        const PER_THREAD: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record_nanos(t * 1000 + (i % 97));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8 * PER_THREAD);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8 * PER_THREAD);
        let expected_sum: u64 = (0..8u64)
            .flat_map(|t| (0..PER_THREAD).map(move |i| t * 1000 + (i % 97)))
            .sum();
        assert_eq!(s.sum, expected_sum);
        assert_eq!(s.max, 7 * 1000 + 96);
    }

    #[test]
    fn merge_then_percentile_equals_percentile_of_merged() {
        let a = Histogram::new();
        let b = Histogram::new();
        let union = Histogram::new();
        for v in 0..500u64 {
            let sample = v * v % 70_000;
            if v % 2 == 0 {
                a.record_nanos(sample);
            } else {
                b.record_nanos(sample);
            }
            union.record_nanos(sample);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let direct = union.snapshot();
        assert_eq!(merged, direct);
        for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.percentile(p), direct.percentile(p), "p={p}");
        }
        assert_eq!(merged.max, direct.max);
    }

    #[test]
    fn zero_count_snapshot_renders_valid_exposition() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        let mut out = String::new();
        s.render_prometheus(&mut out, "x_nanos", "stage=\"parse\"");
        assert_eq!(
            out,
            "x_nanos_bucket{stage=\"parse\",le=\"+Inf\"} 0\n\
             x_nanos_sum{stage=\"parse\"} 0\n\
             x_nanos_count{stage=\"parse\"} 0\n"
        );
        let mut bare = String::new();
        s.render_prometheus(&mut bare, "x_nanos", "");
        assert!(bare.contains("x_nanos_bucket{le=\"+Inf\"} 0\n"), "{bare}");
    }

    #[test]
    fn rendered_buckets_are_cumulative_and_monotone() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 5_000, 5_001, 70_000] {
            h.record_nanos(v);
        }
        let mut out = String::new();
        h.snapshot().render_prometheus(&mut out, "d", "");
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in out.lines().filter(|l| l.starts_with("d_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone bucket line: {line}");
            last = v;
            bucket_lines += 1;
        }
        assert!(bucket_lines > 3);
        assert!(out.ends_with("d_count 7\n"), "{out}");
        assert!(out.contains("le=\"+Inf\"} 7"), "{out}");
    }

    #[test]
    fn percentiles_interpolate_and_clamp_to_max() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record_nanos(1000);
        }
        let s = h.snapshot();
        // Every sample is 1000: all percentiles clamp inside
        // [512, min(1023, max)] = [512, 1000].
        for p in [0.5, 0.9, 0.99, 1.0] {
            let v = s.percentile(p);
            assert!((512..=1000).contains(&v), "p{p} = {v}");
        }
        assert_eq!(s.percentile(1.0), 1000, "p100 is the exact max");
        assert_eq!(s.max, 1000);
    }
}
