//! Trace and profile exporters: JSONL for events, CSV for profile tables,
//! plus a strict line-oriented JSONL parser so external validators (the
//! CI smoke binary) can re-read traces without a JSON dependency.
//!
//! One event is one JSON object on one line, flat, with only string /
//! unsigned-integer / boolean values — e.g.
//!
//! ```text
//! {"worker":0,"seq":3,"type":"rule_fired","rule":5,"level":1}
//! ```
//!
//! `rule` fields are exported 1-based (`5 ↦ ρ5`) to match the paper's
//! naming; in-memory [`ChaseEvent::RuleFired`] keeps the dense 0-based
//! index. An empty trace exports as an empty file, which is valid JSONL.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::event::{ChaseEvent, Recorded, SpanKind};
use crate::profile::ChaseProfile;
use crate::tracer::TraceSnapshot;
use crate::RULE_COUNT;

/// Renders one recorded event as a single JSONL line (no trailing
/// newline).
pub fn event_to_json(rec: &Recorded) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"worker\":{},\"seq\":{},\"type\":\"{}\"",
        rec.worker,
        rec.seq,
        rec.event.type_name()
    );
    match rec.event {
        ChaseEvent::RuleFired { rule, level } => {
            let _ = write!(s, ",\"rule\":{},\"level\":{}", u32::from(rule) + 1, level);
        }
        ChaseEvent::EgdMerge { merged, depth } => {
            let _ = write!(s, ",\"merged\":{merged},\"depth\":{depth}");
        }
        ChaseEvent::NullInvented { null, level } => {
            let _ = write!(s, ",\"null\":{null},\"level\":{level}");
        }
        ChaseEvent::Frontier {
            round,
            max_level,
            frontier,
            atoms,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"max_level\":{max_level},\"frontier\":{frontier},\"atoms\":{atoms}"
            );
        }
        ChaseEvent::GovernorStop { reason } => {
            let _ = write!(s, ",\"reason\":{reason}");
        }
        ChaseEvent::HomExpand { depth }
        | ChaseEvent::HomBacktrack { depth }
        | ChaseEvent::HomPrune { depth } => {
            let _ = write!(s, ",\"depth\":{depth}");
        }
        ChaseEvent::CacheLookup { hit } => {
            let _ = write!(s, ",\"hit\":{hit}");
        }
        ChaseEvent::SpanStart { span } => {
            let _ = write!(s, ",\"span\":\"{}\"", span.name());
        }
        ChaseEvent::SpanEnd { span, nanos } => {
            let _ = write!(s, ",\"span\":\"{}\",\"nanos\":{nanos}", span.name());
        }
        ChaseEvent::Bound {
            level_bound,
            theorem_bound,
        } => {
            let _ = write!(
                s,
                ",\"level_bound\":{level_bound},\"theorem_bound\":{theorem_bound}"
            );
        }
        ChaseEvent::DiscoveryChunk {
            conjuncts,
            candidates,
        } => {
            let _ = write!(s, ",\"conjuncts\":{conjuncts},\"candidates\":{candidates}");
        }
    }
    s.push('}');
    s
}

/// Writes a snapshot as JSONL, one event per line, in the snapshot's
/// deterministic `(worker, seq)` order. An empty snapshot writes nothing.
pub fn write_jsonl<W: Write>(mut out: W, snapshot: &TraceSnapshot) -> io::Result<()> {
    for rec in &snapshot.events {
        out.write_all(event_to_json(rec).as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// The per-rule firing histogram as CSV (`rule,firings`; rules 1-based,
/// all twelve rows always present).
pub fn rule_profile_csv(profile: &ChaseProfile) -> String {
    let mut s = String::from("rule,firings\n");
    for (i, &count) in profile.rule_firings.iter().enumerate() {
        let _ = writeln!(s, "rho{},{}", i + 1, count);
    }
    debug_assert_eq!(profile.rule_firings.len(), RULE_COUNT);
    s
}

/// The per-level growth curve as CSV (`level,created,invented`). An empty
/// profile yields just the header, which is a valid (empty) CSV table.
pub fn level_growth_csv(profile: &ChaseProfile) -> String {
    let mut s = String::from("level,created,invented\n");
    for lg in &profile.level_growth {
        let _ = writeln!(s, "{},{},{}", lg.level, lg.created, lg.inventions);
    }
    s
}

/// Renders a profile rollup as one JSON object, the HTTP-exportable shape
/// the `flqd` server returns from `GET /profile`.
///
/// The object is flat except for two arrays: `rule_firings` (twelve
/// counters, `ρ1` first; ρ4's slot counts EGD merge rounds) and
/// `level_growth` (`[level, created, invented]` triples, ascending).
/// Span timings are keyed by span name (`span_nanos_<name>` /
/// `span_count_<name>`). Only string keys and unsigned integers appear,
/// so the output round-trips through any JSON parser — including the
/// strict flat-object parser in this module, once the two arrays are
/// removed.
pub fn profile_json(profile: &ChaseProfile) -> String {
    let mut s = String::with_capacity(512);
    s.push('{');
    let _ = write!(s, "\"observed_depth\":{}", profile.observed_depth);
    let _ = write!(s, ",\"theorem_bound\":{}", profile.theorem_bound);
    let _ = write!(s, ",\"level_bound\":{}", profile.level_bound);
    let _ = write!(s, ",\"egd_terms_merged\":{}", profile.egd_terms_merged);
    let _ = write!(s, ",\"egd_max_depth\":{}", profile.egd_max_depth);
    let _ = write!(s, ",\"nulls_invented\":{}", profile.nulls_invented);
    let _ = write!(s, ",\"hom_expansions\":{}", profile.hom_expansions);
    let _ = write!(s, ",\"hom_backtracks\":{}", profile.hom_backtracks);
    let _ = write!(s, ",\"hom_prunes\":{}", profile.hom_prunes);
    let _ = write!(s, ",\"cache_hits\":{}", profile.cache_hits);
    let _ = write!(s, ",\"cache_misses\":{}", profile.cache_misses);
    let _ = write!(s, ",\"governor_stops\":{}", profile.governor_stops);
    let _ = write!(s, ",\"discovery_chunks\":{}", profile.discovery_chunks);
    let _ = write!(s, ",\"dropped\":{}", profile.dropped);
    for kind in SpanKind::ALL {
        let _ = write!(
            s,
            ",\"span_nanos_{}\":{}",
            kind.name(),
            profile.span_nanos[kind.index()]
        );
        let _ = write!(
            s,
            ",\"span_count_{}\":{}",
            kind.name(),
            profile.span_counts[kind.index()]
        );
    }
    s.push_str(",\"rule_firings\":[");
    for (i, count) in profile.rule_firings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{count}");
    }
    s.push_str("],\"level_growth\":[");
    for (i, lg) in profile.level_growth.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{},{},{}]", lg.level, lg.created, lg.inventions);
    }
    s.push_str("]}");
    s
}

/// A scalar value in a flat JSONL event object.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Scalar {
    /// A quoted string (no escapes — the exporter never emits any).
    Str(String),
    /// An unsigned integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
}

/// Parses one flat JSON object of the exporter's shape. Strict: rejects
/// nesting, escapes, floats, and trailing garbage.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key: "name"
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected quoted key at: {rest:?}"))?;
        let close = after_quote
            .find('"')
            .ok_or_else(|| format!("unterminated key at: {rest:?}"))?;
        let key = after_quote[..close].to_string();
        rest = after_quote[close + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key {key:?}"))?
            .trim_start();
        // Value: string, integer, or boolean.
        let (value, remainder) = if let Some(after) = rest.strip_prefix('"') {
            let close = after
                .find('"')
                .ok_or_else(|| format!("unterminated string value for {key:?}"))?;
            let v = &after[..close];
            if v.contains('\\') {
                return Err(format!("escape sequences unsupported in value for {key:?}"));
            }
            (Scalar::Str(v.to_string()), &after[close + 1..])
        } else {
            let end = rest
                .find([',', '}'])
                .map_or(rest.len(), |i| i.min(rest.len()));
            let token = rest[..end].trim();
            let value = match token {
                "true" => Scalar::Bool(true),
                "false" => Scalar::Bool(false),
                t => Scalar::Int(
                    t.parse::<u64>()
                        .map_err(|_| format!("bad scalar {t:?} for key {key:?}"))?,
                ),
            };
            (value, &rest[end..])
        };
        fields.push((key, value));
        rest = remainder.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
            if rest.is_empty() {
                return Err("trailing comma".to_string());
            }
        } else if !rest.is_empty() {
            return Err(format!("trailing garbage: {rest:?}"));
        }
    }
    Ok(fields)
}

/// Looks a key up in a parsed flat object.
fn field<'a>(fields: &'a [(String, Scalar)], key: &str) -> Result<&'a Scalar, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn int_field(fields: &[(String, Scalar)], key: &str) -> Result<u64, String> {
    match field(fields, key)? {
        Scalar::Int(n) => Ok(*n),
        other => Err(format!("field {key:?} is not an integer: {other:?}")),
    }
}

fn u32_field(fields: &[(String, Scalar)], key: &str) -> Result<u32, String> {
    u32::try_from(int_field(fields, key)?).map_err(|_| format!("field {key:?} exceeds u32"))
}

fn str_field<'a>(fields: &'a [(String, Scalar)], key: &str) -> Result<&'a str, String> {
    match field(fields, key)? {
        Scalar::Str(s) => Ok(s),
        other => Err(format!("field {key:?} is not a string: {other:?}")),
    }
}

fn bool_field(fields: &[(String, Scalar)], key: &str) -> Result<bool, String> {
    match field(fields, key)? {
        Scalar::Bool(b) => Ok(*b),
        other => Err(format!("field {key:?} is not a boolean: {other:?}")),
    }
}

fn span_field(fields: &[(String, Scalar)]) -> Result<SpanKind, String> {
    let name = str_field(fields, "span")?;
    SpanKind::from_name(name).ok_or_else(|| format!("unknown span kind {name:?}"))
}

/// Parses one exported JSONL line back into a [`Recorded`] event.
pub fn parse_event_line(line: &str) -> Result<Recorded, String> {
    let fields = parse_flat_object(line)?;
    let worker = u32_field(&fields, "worker")?;
    let seq = int_field(&fields, "seq")?;
    let ty = str_field(&fields, "type")?;
    let event = match ty {
        "rule_fired" => {
            let rule1 = int_field(&fields, "rule")?;
            if !(1..=RULE_COUNT as u64).contains(&rule1) {
                return Err(format!("rule index {rule1} out of range 1..=12"));
            }
            ChaseEvent::RuleFired {
                rule: (rule1 - 1) as u8,
                level: u32_field(&fields, "level")?,
            }
        }
        "egd_merge" => ChaseEvent::EgdMerge {
            merged: u32_field(&fields, "merged")?,
            depth: u32_field(&fields, "depth")?,
        },
        "null_invented" => ChaseEvent::NullInvented {
            null: int_field(&fields, "null")?,
            level: u32_field(&fields, "level")?,
        },
        "frontier" => ChaseEvent::Frontier {
            round: u32_field(&fields, "round")?,
            max_level: u32_field(&fields, "max_level")?,
            frontier: int_field(&fields, "frontier")?,
            atoms: int_field(&fields, "atoms")?,
        },
        "governor_stop" => ChaseEvent::GovernorStop {
            reason: u8::try_from(int_field(&fields, "reason")?)
                .map_err(|_| "reason exceeds u8".to_string())?,
        },
        "hom_expand" => ChaseEvent::HomExpand {
            depth: u32_field(&fields, "depth")?,
        },
        "hom_backtrack" => ChaseEvent::HomBacktrack {
            depth: u32_field(&fields, "depth")?,
        },
        "hom_prune" => ChaseEvent::HomPrune {
            depth: u32_field(&fields, "depth")?,
        },
        "cache_lookup" => ChaseEvent::CacheLookup {
            hit: bool_field(&fields, "hit")?,
        },
        "span_start" => ChaseEvent::SpanStart {
            span: span_field(&fields)?,
        },
        "span_end" => ChaseEvent::SpanEnd {
            span: span_field(&fields)?,
            nanos: int_field(&fields, "nanos")?,
        },
        "bound" => ChaseEvent::Bound {
            level_bound: int_field(&fields, "level_bound")?,
            theorem_bound: int_field(&fields, "theorem_bound")?,
        },
        "discovery_chunk" => ChaseEvent::DiscoveryChunk {
            conjuncts: int_field(&fields, "conjuncts")?,
            candidates: int_field(&fields, "candidates")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(Recorded { worker, seq, event })
}

/// Parses a whole JSONL document (blank lines skipped). Errors carry the
/// 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Recorded>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_event_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;

    fn all_events() -> Vec<ChaseEvent> {
        vec![
            ChaseEvent::RuleFired { rule: 4, level: 2 },
            ChaseEvent::EgdMerge {
                merged: 3,
                depth: 2,
            },
            ChaseEvent::NullInvented { null: 41, level: 1 },
            ChaseEvent::Frontier {
                round: 1,
                max_level: 2,
                frontier: 5,
                atoms: 17,
            },
            ChaseEvent::GovernorStop { reason: 1 },
            ChaseEvent::HomExpand { depth: 4 },
            ChaseEvent::HomBacktrack { depth: 3 },
            ChaseEvent::HomPrune { depth: 2 },
            ChaseEvent::CacheLookup { hit: true },
            ChaseEvent::SpanStart {
                span: SpanKind::ChaseMinus,
            },
            ChaseEvent::SpanEnd {
                span: SpanKind::Decide,
                nanos: 987,
            },
            ChaseEvent::Bound {
                level_bound: 4,
                theorem_bound: 16,
            },
            ChaseEvent::DiscoveryChunk {
                conjuncts: 6,
                candidates: 11,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let events: Vec<Recorded> = all_events()
            .into_iter()
            .enumerate()
            .map(|(i, event)| Recorded {
                worker: (i % 3) as u32,
                seq: i as u64,
                event,
            })
            .collect();
        let snapshot = TraceSnapshot {
            events: events.clone(),
            dropped: 0,
        };
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &snapshot).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn rule_indices_export_one_based() {
        let rec = Recorded {
            worker: 0,
            seq: 0,
            event: ChaseEvent::RuleFired { rule: 4, level: 0 },
        };
        let line = event_to_json(&rec);
        assert!(line.contains("\"rule\":5"), "rho5 exports as 5: {line}");
    }

    #[test]
    fn empty_trace_exports_as_empty_but_valid_jsonl_and_csv() {
        let snapshot = TraceSnapshot::empty();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &snapshot).unwrap();
        assert!(buf.is_empty(), "empty trace is an empty file");
        assert_eq!(parse_jsonl("").unwrap(), vec![]);

        let profile = ChaseProfile::from_snapshot(&snapshot);
        let rules = rule_profile_csv(&profile);
        assert_eq!(rules.lines().count(), 1 + RULE_COUNT, "header + 12 rows");
        assert!(rules.starts_with("rule,firings\n"));
        let growth = level_growth_csv(&profile);
        assert_eq!(growth, "level,created,invented\n", "header only");
    }

    #[test]
    fn parser_rejects_malformed_lines_with_line_numbers() {
        let bad =
            "{\"worker\":0,\"seq\":0,\"type\":\"rule_fired\",\"rule\":5,\"level\":1}\nnot json\n";
        let err = parse_jsonl(bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");

        for bad_line in [
            "{\"worker\":0}",                                // missing fields
            "{\"worker\":0,\"seq\":0,\"type\":\"mystery\"}", // unknown type
            "{\"worker\":0,\"seq\":0,\"type\":\"rule_fired\",\"rule\":13,\"level\":0}", // rule range
            "{\"worker\":-1,\"seq\":0,\"type\":\"cache_lookup\",\"hit\":true}", // negative int
            "{\"worker\":0,\"seq\":0,\"type\":\"cache_lookup\",\"hit\":true} extra", // garbage
        ] {
            assert!(parse_event_line(bad_line).is_err(), "{bad_line}");
        }
    }

    #[test]
    fn profile_json_exports_every_counter_and_both_arrays() {
        let events: Vec<Recorded> = all_events()
            .into_iter()
            .enumerate()
            .map(|(i, event)| Recorded {
                worker: 0,
                seq: i as u64,
                event,
            })
            .collect();
        let snapshot = TraceSnapshot { events, dropped: 2 };
        let profile = ChaseProfile::from_snapshot(&snapshot);
        let json = profile_json(&profile);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in [
            "\"observed_depth\":",
            "\"theorem_bound\":16",
            "\"level_bound\":4",
            "\"egd_terms_merged\":3",
            "\"nulls_invented\":1",
            "\"hom_expansions\":1",
            "\"cache_hits\":1",
            "\"governor_stops\":1",
            "\"discovery_chunks\":1",
            "\"dropped\":2",
            "\"span_nanos_decide\":987",
            "\"span_count_decide\":1",
            "\"rule_firings\":[",
            "\"level_growth\":[",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Twelve rule slots, comma-separated inside the array.
        let rules = json
            .split("\"rule_firings\":[")
            .nth(1)
            .and_then(|rest| rest.split(']').next())
            .unwrap();
        assert_eq!(rules.split(',').count(), RULE_COUNT, "{rules}");
        // Level-growth triples stay [level,created,invented].
        assert!(json.contains("\"level_growth\":[[0,"), "{json}");
    }

    #[test]
    fn level_growth_csv_lists_levels_in_order() {
        let snapshot = TraceSnapshot {
            events: vec![
                Recorded {
                    worker: 0,
                    seq: 0,
                    event: ChaseEvent::RuleFired { rule: 0, level: 1 },
                },
                Recorded {
                    worker: 0,
                    seq: 1,
                    event: ChaseEvent::NullInvented { null: 1, level: 2 },
                },
            ],
            dropped: 0,
        };
        let profile = ChaseProfile::from_snapshot(&snapshot);
        assert_eq!(
            level_growth_csv(&profile),
            "level,created,invented\n0,0,0\n1,1,0\n2,0,1\n"
        );
    }
}
