//! Pretty-printers: render queries back in predicate or F-logic notation.

use std::fmt::Write as _;

use flogic_model::{Atom, ConjunctiveQuery, Pred};

/// Renders a query in low-level predicate notation, e.g.
/// `q(A, B) :- type(T1, A, T2), sub(T2, T3).` — identical to the query's
/// `Display` implementation.
pub fn query_to_predicates(q: &ConjunctiveQuery) -> String {
    q.to_string()
}

/// Renders a query using F-logic surface notation where possible, e.g.
/// `q(A, B) :- T1[A *=> T2], T2 :: T3.`
///
/// A `mandatory(A, C)` (resp. `funct(A, C)`) atom is merged with a matching
/// `type(C, A, T)` atom into the single molecule `C[A {1:*} *=> T]`
/// (resp. `{0:1}`), mirroring how the encoding of Section 2 splits
/// signature statements. A cardinality atom without a matching type atom is
/// rendered with an anonymous type (`C[A {1:*} *=> _]`).
///
/// This rendering is for human consumption: parsing it back yields a query
/// that is *semantically equivalent* but may differ syntactically (the `_`
/// re-parses as a fresh variable).
pub fn query_to_flogic(q: &ConjunctiveQuery) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}(", q.name());
    for (i, t) in q.head().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{t}");
    }
    out.push_str(") :- ");

    let body = q.body();
    let mut consumed = vec![false; body.len()];
    let mut first = true;
    let mut emit = |s: String, out: &mut String| {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&s);
    };

    for i in 0..body.len() {
        if consumed[i] {
            continue;
        }
        let a = &body[i];
        let rendered = match a.pred() {
            Pred::Member => format!("{} : {}", a.arg(0), a.arg(1)),
            Pred::Sub => format!("{} :: {}", a.arg(0), a.arg(1)),
            Pred::Data => format!("{}[{} -> {}]", a.arg(0), a.arg(1), a.arg(2)),
            Pred::Type => format!("{}[{} *=> {}]", a.arg(0), a.arg(1), a.arg(2)),
            Pred::Mandatory | Pred::Funct => {
                let card = if a.pred() == Pred::Mandatory {
                    "{1:*}"
                } else {
                    "{0:1}"
                };
                let (attr, obj) = (a.arg(0), a.arg(1));
                // Merge with a matching type(obj, attr, T) if one exists.
                let partner = body.iter().enumerate().position(|(j, b)| {
                    !consumed[j] && b.pred() == Pred::Type && b.arg(0) == obj && b.arg(1) == attr
                });
                match partner {
                    Some(j) => {
                        consumed[j] = true;
                        format!("{obj}[{attr} {card} *=> {}]", body[j].arg(2))
                    }
                    None => format!("{obj}[{attr} {card} *=> _]"),
                }
            }
        };
        emit(rendered, &mut out);
        consumed[i] = true;
    }
    out.push('.');
    out
}

/// Renders a single `P_FL` atom in F-logic notation (no merging).
pub fn atom_to_flogic(a: &Atom) -> String {
    match a.pred() {
        Pred::Member => format!("{} : {}", a.arg(0), a.arg(1)),
        Pred::Sub => format!("{} :: {}", a.arg(0), a.arg(1)),
        Pred::Data => format!("{}[{} -> {}]", a.arg(0), a.arg(1), a.arg(2)),
        Pred::Type => format!("{}[{} *=> {}]", a.arg(0), a.arg(1), a.arg(2)),
        Pred::Mandatory => format!("{}[{} {{1:*}} *=> _]", a.arg(1), a.arg(0)),
        Pred::Funct => format!("{}[{} {{0:1}} *=> _]", a.arg(1), a.arg(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn flogic_rendering_of_basic_molecules() {
        let q = parse_query("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>X].").unwrap();
        assert_eq!(
            query_to_flogic(&q),
            "q(A, B) :- T1[A *=> T2], T2 :: T3, T3[B *=> X]."
        );
    }

    #[test]
    fn cardinality_atoms_merge_with_type() {
        let q = parse_query(
            "q(Att,Class,Type) :- mandatory(Att, Class), type(Class, Att, Type), member(X, Class).",
        )
        .unwrap();
        assert_eq!(
            query_to_flogic(&q),
            "q(Att, Class, Type) :- Class[Att {1:*} *=> Type], X : Class."
        );
    }

    #[test]
    fn lone_cardinality_uses_anonymous_type() {
        let q = parse_query("q(A) :- funct(A, C), member(O, C), data(O, A, V).").unwrap();
        let s = query_to_flogic(&q);
        assert!(s.contains("C[A {0:1} *=> _]"), "{s}");
    }

    #[test]
    fn flogic_rendering_re_parses_equivalently() {
        let q = parse_query("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>X].").unwrap();
        let q2 = parse_query(&query_to_flogic(&q)).unwrap();
        assert_eq!(q.body(), q2.body());
        assert_eq!(q.head(), q2.head());
    }

    #[test]
    fn atom_rendering() {
        use flogic_term::Term;
        let a = Atom::mandatory(Term::constant("name"), Term::constant("person"));
        assert_eq!(atom_to_flogic(&a), "person[name {1:*} *=> _]");
    }
}
