//! Parser for `.sigma` rule files: user-supplied TGD/EGD sets over the
//! `P_FL` schema.
//!
//! The surface form mirrors how this repo prints `Σ_FL` rules:
//!
//! ```text
//! % a TGD: head :- body.
//! member(V, T) :- type(O, A, T), data(O, A, V).
//! % an existential TGD: a head variable absent from the body is
//! % implicitly existentially quantified.
//! data(O, A, V) :- mandatory(A, O).
//! % an EGD: equated pair :- body.
//! V = W :- data(O, A, V), data(O, A, W), funct(A, O).
//! ```
//!
//! Uppercase/underscore identifiers are variables, lowercase identifiers
//! are constants, a bare `_` is an anonymous variable (each occurrence
//! distinct), `%` starts a line comment.
//!
//! The parser is deliberately *lenient* about predicate names and
//! arities: it records what was written, with spans. Schema validation
//! (unknown predicates, arity mismatches, safety) is the Σ-admission
//! analyzer's job in `flogic-analysis`, which reports them as coded
//! `FL010`/`FL011` diagnostics instead of hard parse errors — so one run
//! surfaces *all* problems of a rule file, not just the first.

use crate::ast::AstTerm;
use crate::error::{Pos, SyntaxError, SyntaxErrorKind};
use crate::lexer::{Lexer, Token, TokenKind};

/// A parsed `.sigma` file: rules in declaration order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SigmaAst {
    /// The rules, in file order.
    pub rules: Vec<SigmaRuleAst>,
}

/// One parsed rule with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SigmaRuleAst {
    /// Position of the rule's first token.
    pub pos: Pos,
    /// TGD or EGD.
    pub kind: SigmaRuleKindAst,
}

/// The two rule forms of a `.sigma` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SigmaRuleKindAst {
    /// `head(args) :- body.` — head variables absent from the body are
    /// implicitly existentially quantified.
    Tgd {
        /// The head atom.
        head: SigmaAtomAst,
        /// The body atoms (at least one).
        body: Vec<SigmaAtomAst>,
    },
    /// `left = right :- body.`
    Egd {
        /// Left side of the equated pair.
        left: SpannedTerm,
        /// Right side of the equated pair.
        right: SpannedTerm,
        /// The body atoms (at least one).
        body: Vec<SigmaAtomAst>,
    },
}

/// A parsed atom: predicate name as written, arguments with spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SigmaAtomAst {
    /// The predicate name as written (validated later).
    pub name: String,
    /// Position of the predicate name.
    pub pos: Pos,
    /// The arguments, in order.
    pub args: Vec<SpannedTerm>,
}

/// A term with the position of its token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedTerm {
    /// The term (constant, variable, or anonymous `_`).
    pub term: AstTerm,
    /// Position of the term's token.
    pub pos: Pos,
}

/// Parses a `.sigma` file (see module docs). Parse errors (malformed
/// tokens or rule shapes) are returned as `Err`; schema-level problems
/// are left for the admission analyzer.
pub fn parse_sigma(input: &str) -> Result<SigmaAst, SyntaxError> {
    let tokens = Lexer::tokenize(input)?;
    let mut parser = SigmaParser { tokens, i: 0 };
    let mut rules = Vec::new();
    while parser.peek().kind != TokenKind::Eof {
        rules.push(parser.rule()?);
    }
    Ok(SigmaAst { rules })
}

struct SigmaParser {
    tokens: Vec<Token>,
    i: usize,
}

impl SigmaParser {
    fn peek(&self) -> &Token {
        &self.tokens[self.i]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.i + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.i].clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, expected: &'static str) -> Result<Token, SyntaxError> {
        let t = self.peek().clone();
        if t.kind == *kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(expected))
        }
    }

    fn unexpected(&self, expected: &'static str) -> SyntaxError {
        let t = self.peek();
        SyntaxError::at(
            t.pos.line,
            t.pos.col,
            match t.kind {
                TokenKind::Eof => SyntaxErrorKind::UnexpectedEof,
                _ => SyntaxErrorKind::UnexpectedToken {
                    expected,
                    got: t.kind.to_string(),
                },
            },
        )
    }

    fn rule(&mut self) -> Result<SigmaRuleAst, SyntaxError> {
        let pos = self.peek().pos;
        // An atom head starts `name(`; anything else must be the equated
        // pair of an EGD.
        let kind = if matches!(self.peek().kind, TokenKind::LIdent(_))
            && self.peek2().kind == TokenKind::LParen
        {
            let head = self.atom()?;
            self.expect(&TokenKind::Implies, "`:-`")?;
            let body = self.body()?;
            SigmaRuleKindAst::Tgd { head, body }
        } else {
            let left = self.term()?;
            self.expect(&TokenKind::Eq, "`=` or a head atom")?;
            let right = self.term()?;
            self.expect(&TokenKind::Implies, "`:-`")?;
            let body = self.body()?;
            SigmaRuleKindAst::Egd { left, right, body }
        };
        self.expect(&TokenKind::Dot, "`.`")?;
        Ok(SigmaRuleAst { pos, kind })
    }

    fn body(&mut self) -> Result<Vec<SigmaAtomAst>, SyntaxError> {
        let mut atoms = vec![self.atom()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            atoms.push(self.atom()?);
        }
        Ok(atoms)
    }

    fn atom(&mut self) -> Result<SigmaAtomAst, SyntaxError> {
        let t = self.peek().clone();
        let TokenKind::LIdent(name) = t.kind else {
            return Err(self.unexpected("a predicate atom"));
        };
        self.bump();
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            args.push(self.term()?);
            while self.peek().kind == TokenKind::Comma {
                self.bump();
                args.push(self.term()?);
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(SigmaAtomAst {
            name,
            pos: t.pos,
            args,
        })
    }

    fn term(&mut self) -> Result<SpannedTerm, SyntaxError> {
        let t = self.peek().clone();
        let term = match t.kind {
            TokenKind::LIdent(s) => AstTerm::Const(s),
            TokenKind::UIdent(s) => AstTerm::Var(s),
            TokenKind::Anon => AstTerm::Anon,
            _ => return Err(self.unexpected("a constant, variable, or `_`")),
        };
        self.bump();
        Ok(SpannedTerm { term, pos: t.pos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tgds_and_egds_with_spans() {
        let src = "% comment\n\
                   member(V, T) :- type(O, A, T), data(O, A, V).\n\
                   V = W :- data(O, A, V), data(O, A, W), funct(A, O).\n";
        let ast = parse_sigma(src).unwrap();
        assert_eq!(ast.rules.len(), 2);
        let SigmaRuleKindAst::Tgd { head, body } = &ast.rules[0].kind else {
            panic!("rule 1 is a TGD")
        };
        assert_eq!(head.name, "member");
        assert_eq!(head.pos, Pos { line: 2, col: 1 });
        assert_eq!(body.len(), 2);
        assert_eq!(body[1].args[2].term, AstTerm::Var("V".into()));
        let SigmaRuleKindAst::Egd { left, right, body } = &ast.rules[1].kind else {
            panic!("rule 2 is an EGD")
        };
        assert_eq!(left.term, AstTerm::Var("V".into()));
        assert_eq!(right.term, AstTerm::Var("W".into()));
        assert_eq!(ast.rules[1].pos, Pos { line: 3, col: 1 });
        assert_eq!(body.len(), 3);
    }

    #[test]
    fn unknown_arities_and_predicates_parse_leniently() {
        // Validation is the admission analyzer's job, not the parser's.
        let ast = parse_sigma("frobnicate(A, B, C, D) :- member(A).").unwrap();
        let SigmaRuleKindAst::Tgd { head, body } = &ast.rules[0].kind else {
            panic!()
        };
        assert_eq!(head.name, "frobnicate");
        assert_eq!(head.args.len(), 4);
        assert_eq!(body[0].args.len(), 1);
    }

    #[test]
    fn missing_dot_is_a_parse_error() {
        let err = parse_sigma("member(A, B) :- sub(A, B)").unwrap_err();
        assert!(matches!(err.kind, SyntaxErrorKind::UnexpectedEof));
    }

    #[test]
    fn bodyless_rule_is_a_parse_error() {
        assert!(parse_sigma("member(A, B) :- .").is_err());
        assert!(parse_sigma("member(A, B).").is_err());
    }

    #[test]
    fn egd_sides_may_be_any_term() {
        // `c = X :- …` parses; safety (sides must be body variables) is
        // an FL011 admission diagnostic, not a parse error.
        let ast = parse_sigma("c = X :- member(X, d).").unwrap();
        let SigmaRuleKindAst::Egd { left, .. } = &ast.rules[0].kind else {
            panic!()
        };
        assert_eq!(left.term, AstTerm::Const("c".into()));
    }

    #[test]
    fn empty_file_parses_to_no_rules() {
        assert_eq!(parse_sigma("  % only comments\n").unwrap().rules.len(), 0);
    }
}
