//! Hand-written lexer for the F-logic Lite surface syntax.

use std::fmt;

use crate::error::{Pos, SyntaxError, SyntaxErrorKind};

/// Kinds of tokens produced by the lexer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Lowercase identifier or number — a constant (`john`, `33`).
    LIdent(String),
    /// Uppercase/underscore identifier — a variable (`X`, `Att`, `_G1`).
    UIdent(String),
    /// A bare `_` — anonymous variable.
    Anon,
    /// `:-`
    Implies,
    /// `::`
    SubSym,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `->`
    Arrow,
    /// `*=>`
    SigArrow,
    /// `*` (inside cardinality braces)
    Star,
    /// `=` — the equated pair of an EGD in `.sigma` rule files.
    Eq,
    /// `?-` — goal prefix for ad-hoc queries.
    Goal,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::LIdent(s) | TokenKind::UIdent(s) => f.write_str(s),
            TokenKind::Anon => f.write_str("_"),
            TokenKind::Implies => f.write_str(":-"),
            TokenKind::SubSym => f.write_str("::"),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::LBracket => f.write_str("["),
            TokenKind::RBracket => f.write_str("]"),
            TokenKind::LBrace => f.write_str("{"),
            TokenKind::RBrace => f.write_str("}"),
            TokenKind::Arrow => f.write_str("->"),
            TokenKind::SigArrow => f.write_str("*=>"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::Goal => f.write_str("?-"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind (and text, for identifiers).
    pub kind: TokenKind,
    /// Position of the first character.
    pub pos: Pos,
}

/// The lexer: an iterator-style tokenizer over `&str`.
pub struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    /// Tokenizes the whole input, appending a final [`TokenKind::Eof`].
    pub fn tokenize(input: &'a str) -> Result<Vec<Token>, SyntaxError> {
        let mut lexer = Lexer::new(input);
        let mut out = Vec::new();
        loop {
            let tok = lexer.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        while let Some(&c) = self.chars.peek() {
            if c.is_whitespace() {
                self.bump();
            } else if c == '%' {
                // Line comment.
                while let Some(&c) = self.chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
            } else {
                break;
            }
        }
    }

    fn err(&self, kind: SyntaxErrorKind) -> SyntaxError {
        SyntaxError::at(self.line, self.col, kind)
    }

    /// Produces the next token.
    pub fn next_token(&mut self) -> Result<Token, SyntaxError> {
        self.skip_trivia();
        let pos = Pos {
            line: self.line,
            col: self.col,
        };
        let Some(&c) = self.chars.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                pos,
            });
        };
        let kind = match c {
            ',' => {
                self.bump();
                TokenKind::Comma
            }
            '.' => {
                self.bump();
                TokenKind::Dot
            }
            '(' => {
                self.bump();
                TokenKind::LParen
            }
            ')' => {
                self.bump();
                TokenKind::RParen
            }
            '[' => {
                self.bump();
                TokenKind::LBracket
            }
            ']' => {
                self.bump();
                TokenKind::RBracket
            }
            '{' => {
                self.bump();
                TokenKind::LBrace
            }
            '}' => {
                self.bump();
                TokenKind::RBrace
            }
            ':' => {
                self.bump();
                match self.chars.peek() {
                    Some(':') => {
                        self.bump();
                        TokenKind::SubSym
                    }
                    Some('-') => {
                        self.bump();
                        TokenKind::Implies
                    }
                    _ => TokenKind::Colon,
                }
            }
            '-' => {
                self.bump();
                if self.chars.peek() == Some(&'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    return Err(self.err(SyntaxErrorKind::UnexpectedChar('-')));
                }
            }
            '=' => {
                self.bump();
                TokenKind::Eq
            }
            '?' => {
                self.bump();
                if self.chars.peek() == Some(&'-') {
                    self.bump();
                    TokenKind::Goal
                } else {
                    return Err(self.err(SyntaxErrorKind::UnexpectedChar('?')));
                }
            }
            '*' => {
                self.bump();
                if self.chars.peek() == Some(&'=') {
                    self.bump();
                    if self.chars.peek() == Some(&'>') {
                        self.bump();
                        TokenKind::SigArrow
                    } else {
                        return Err(self.err(SyntaxErrorKind::UnexpectedChar('=')));
                    }
                } else {
                    TokenKind::Star
                }
            }
            c if c.is_ascii_digit() || c.is_lowercase() => {
                let name = self.lex_ident();
                TokenKind::LIdent(name)
            }
            c if c.is_uppercase() || c == '_' => {
                let name = self.lex_ident();
                if name == "_" {
                    TokenKind::Anon
                } else {
                    TokenKind::UIdent(name)
                }
            }
            other => return Err(self.err(SyntaxErrorKind::UnexpectedChar(other))),
        };
        Ok(Token { kind, pos })
    }

    fn lex_ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_alphanumeric() || c == '_' || c == '\'' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        Lexer::tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_molecule_symbols() {
        use TokenKind::*;
        assert_eq!(
            kinds("john:student."),
            vec![
                LIdent("john".into()),
                Colon,
                LIdent("student".into()),
                Dot,
                Eof
            ]
        );
        assert_eq!(
            kinds("a::b"),
            vec![LIdent("a".into()), SubSym, LIdent("b".into()), Eof]
        );
    }

    #[test]
    fn lexes_arrows() {
        use TokenKind::*;
        assert_eq!(
            kinds("x[a->1]"),
            vec![
                LIdent("x".into()),
                LBracket,
                LIdent("a".into()),
                Arrow,
                LIdent("1".into()),
                RBracket,
                Eof
            ]
        );
        assert!(kinds("p[a*=>t]").contains(&SigArrow));
    }

    #[test]
    fn lexes_cardinality() {
        use TokenKind::*;
        assert_eq!(
            kinds("{0:1}"),
            vec![
                LBrace,
                LIdent("0".into()),
                Colon,
                LIdent("1".into()),
                RBrace,
                Eof
            ]
        );
        assert_eq!(
            kinds("{1,*}"),
            vec![LBrace, LIdent("1".into()), Comma, Star, RBrace, Eof]
        );
    }

    #[test]
    fn lexes_implies_vs_colon() {
        use TokenKind::*;
        assert_eq!(kinds(":- :: :"), vec![Implies, SubSym, Colon, Eof]);
    }

    #[test]
    fn variables_vs_constants() {
        use TokenKind::*;
        assert_eq!(
            kinds("X att _ _G1 33"),
            vec![
                UIdent("X".into()),
                LIdent("att".into()),
                Anon,
                UIdent("_G1".into()),
                LIdent("33".into()),
                Eof
            ]
        );
    }

    #[test]
    fn primed_variables_lex() {
        use TokenKind::*;
        assert_eq!(kinds("A''"), vec![UIdent("A''".into()), Eof]);
    }

    #[test]
    fn comments_skipped_and_positions_tracked() {
        let toks = Lexer::tokenize("% a comment\n  q").unwrap();
        assert_eq!(toks[0].kind, TokenKind::LIdent("q".into()));
        assert_eq!(toks[0].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_character_errors_with_position() {
        let err = Lexer::tokenize("a $ b").unwrap_err();
        assert_eq!(err.pos.unwrap().col, 3);
        assert!(matches!(err.kind, SyntaxErrorKind::UnexpectedChar('$')));
    }

    #[test]
    fn lone_dash_is_an_error() {
        assert!(Lexer::tokenize("a - b").is_err());
    }
}
