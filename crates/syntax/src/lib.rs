//! Surface syntax for F-logic Lite.
//!
//! This crate parses the notation used throughout the paper and pretty-prints
//! it back:
//!
//! * **F-logic molecules** — `john:student`, `freshman::student`,
//!   `john[age->33]`, `person[age*=>number]`,
//!   `person[age {0:1} *=> number]`, `person[name {1:*} *=> string]`;
//! * **low-level predicate notation** — `member(O, C)`, `sub(C1, C2)`,
//!   `data(O, A, V)`, `type(O, A, T)`, `mandatory(A, O)`, `funct(A, O)`;
//! * **queries/rules** — `q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].`
//!
//! Identifiers starting with a lowercase letter or a digit are constants;
//! identifiers starting with an uppercase letter or `_` are variables; a bare
//! `_` is an anonymous variable (each occurrence is a completely new
//! variable, as in the paper). `%` starts a line comment.
//!
//! Molecules are translated to the `P_FL` encoding of Section 2:
//! `o:c` ↦ `member(o,c)`; `c::d` ↦ `sub(c,d)`; `o[a->v]` ↦ `data(o,a,v)`;
//! `o[a*=>t]` ↦ `type(o,a,t)`; `o[a {1:*} *=> t]` ↦ `mandatory(a,o)` (plus
//! `type(o,a,t)` when `t` is not `_`); `o[a {0:1} *=> t]` ↦ `funct(a,o)`
//! (plus `type` likewise). Both `{1:*}` and `{1,*}` separators are accepted,
//! mirroring the paper's own usage.

mod ast;
mod error;
mod lexer;
mod parser;
mod pretty;
mod sigma;
mod translate;

pub use ast::{AstQuery, AstTerm, Card, Molecule, Program, Spec, Statement};
pub use error::{Pos, SyntaxError, SyntaxErrorKind};
pub use lexer::{Lexer, Token, TokenKind};
pub use pretty::{atom_to_flogic, query_to_flogic, query_to_predicates};
pub use sigma::{parse_sigma, SigmaAst, SigmaAtomAst, SigmaRuleAst, SigmaRuleKindAst, SpannedTerm};

use flogic_model::{ConjunctiveQuery, Database};

/// Parses a program into its surface AST without translating to `P_FL`.
///
/// This is the entry point for tooling that inspects programs *as written*
/// (e.g. the `flogic-analysis` lints, which need molecule spans and the raw
/// `_` occurrences that translation replaces with fresh variables).
pub fn parse_ast(input: &str) -> Result<Program, SyntaxError> {
    parser::parse(input)
}

/// Parses a single query/rule, e.g.
/// `q(A,B) :- T1[A*=>T2], T2[B*=>_].`
///
/// The trailing `.` is optional for a single statement.
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, SyntaxError> {
    let program = parser::parse(input)?;
    let mut queries = translate::program_to_queries(&program)?;
    match (queries.len(), program.statements.len()) {
        (1, 1) => Ok(queries.pop().expect("just checked")),
        _ => Err(SyntaxError::whole_input(
            SyntaxErrorKind::ExpectedSingleQuery {
                got: program.statements.len(),
            },
        )),
    }
}

/// Parses a program of `.`-terminated statements and returns all queries in
/// it (fact statements are rejected).
pub fn parse_queries(input: &str) -> Result<Vec<ConjunctiveQuery>, SyntaxError> {
    let program = parser::parse(input)?;
    if program
        .statements
        .iter()
        .any(|s| matches!(s, Statement::Fact(_)))
    {
        return Err(SyntaxError::whole_input(
            SyntaxErrorKind::FactWhereQueryExpected,
        ));
    }
    translate::program_to_queries(&program)
}

/// Parses an ad-hoc goal in the paper's interactive form, e.g.
/// `?- X::person.` or `?- student[Att*=>string], john[Att->Val].`
///
/// The result is a query named `ans` whose head lists the goal's named
/// variables in order of first occurrence; variables starting with `_`
/// (including each `_` occurrence) are projected out.
pub fn parse_goal(input: &str) -> Result<ConjunctiveQuery, SyntaxError> {
    let program = parser::parse(input)?;
    match program.statements.as_slice() {
        [Statement::Goal(body)] => translate::goal(body),
        _ => Err(SyntaxError::whole_input(
            SyntaxErrorKind::ExpectedSingleQuery {
                got: program.statements.len(),
            },
        )),
    }
}

/// Parses a program of ground facts (molecules or predicate atoms) into a
/// [`Database`]. Variables in facts are an error.
pub fn parse_database(input: &str) -> Result<Database, SyntaxError> {
    let program = parser::parse(input)?;
    translate::program_to_database(&program)
}

/// Parses a mixed program and returns its queries and its fact base.
pub fn parse_program(input: &str) -> Result<(Vec<ConjunctiveQuery>, Database), SyntaxError> {
    let program = parser::parse(input)?;
    translate::split_program(&program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_model::Pred;

    #[test]
    fn paper_joinable_attributes_query() {
        let q = parse_query("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].").unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(q.size(), 3);
        assert_eq!(q.body()[0].pred(), Pred::Type);
        assert_eq!(q.body()[1].pred(), Pred::Sub);
        assert_eq!(q.body()[2].pred(), Pred::Type);
    }

    #[test]
    fn paper_mandatory_attribute_query() {
        let q =
            parse_query("q(Att,Class,Type) :- Class[Att {1,*} *=> _], Class[Att*=>Type], _:Class.")
                .unwrap();
        assert_eq!(q.arity(), 3);
        // mandatory(Att, Class), type(Class, Att, Type), member(_, Class)
        assert_eq!(q.size(), 3);
        assert_eq!(q.body()[0].pred(), Pred::Mandatory);
        assert_eq!(q.body()[1].pred(), Pred::Type);
        assert_eq!(q.body()[2].pred(), Pred::Member);
    }

    #[test]
    fn predicate_notation_round_trip() {
        let q = parse_query("q(V1,V2) :- data(O,A,V1), data(O,A,V2), funct(A,C), member(O,C).")
            .unwrap();
        assert_eq!(q.size(), 4);
        assert_eq!(
            q.to_string(),
            "q(V1, V2) :- data(O, A, V1), data(O, A, V2), funct(A, C), member(O, C)."
        );
    }

    #[test]
    fn database_of_molecules() {
        let db = parse_database(
            "john:student. freshman::student. john[age->33].\n\
             person[age {0:1} *=> number]. person[name {1:*} *=> string].",
        )
        .unwrap();
        assert_eq!(db.len(), 7); // member, sub, data, funct+type, mandatory+type
        assert_eq!(db.pred_facts(Pred::Funct).len(), 1);
        assert_eq!(db.pred_facts(Pred::Mandatory).len(), 1);
        assert_eq!(db.pred_facts(Pred::Type).len(), 2);
    }

    #[test]
    fn variables_in_facts_rejected() {
        assert!(parse_database("X:student.").is_err());
        assert!(parse_database("john[age->V].").is_err());
    }

    #[test]
    fn mixed_program_splits() {
        let (queries, db) = parse_program("john:student. q(X) :- member(X, student).").unwrap();
        assert_eq!(queries.len(), 1);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn goal_form_parses_with_inferred_head() {
        // The paper's "?- X::person." form.
        let g = parse_goal("?- X::person.").unwrap();
        assert_eq!(g.name().as_str(), "ans");
        assert_eq!(g.head(), &[flogic_term::Term::var("X")]);
        // Mixed goal: head lists Att then Val, in first-occurrence order.
        let g = parse_goal("?- student[Att*=>string], john[Att->Val].").unwrap();
        assert_eq!(
            g.head(),
            &[flogic_term::Term::var("Att"), flogic_term::Term::var("Val")]
        );
    }

    #[test]
    fn goal_projects_out_underscore_vars() {
        let g = parse_goal("?- member(_Ignored, C), data(_, a, V).").unwrap();
        assert_eq!(
            g.head(),
            &[flogic_term::Term::var("C"), flogic_term::Term::var("V")]
        );
    }

    #[test]
    fn goal_in_database_position_rejected() {
        assert!(parse_database("?- member(X, Y).").is_err());
    }

    #[test]
    fn goal_in_mixed_program_becomes_query() {
        let (queries, db) = parse_program("john:student. ?- X:student.").unwrap();
        assert_eq!(queries.len(), 1);
        assert_eq!(db.len(), 1);
        assert_eq!(queries[0].name().as_str(), "ans");
    }
}
