//! Syntax and translation errors with source positions.

use std::fmt;

use flogic_model::ModelError;

/// Position in the input (1-based line and column).
///
/// Used both for error reporting and for the spans the parser records on
/// AST nodes (see [`crate::Molecule::pos`]). The `Default` value `0:0`
/// marks a synthetic node with no source location.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// What went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyntaxErrorKind {
    /// An unexpected character in the input.
    UnexpectedChar(char),
    /// The lexer or parser hit the end of input prematurely.
    UnexpectedEof,
    /// An unexpected token; `expected` describes what would have been legal.
    UnexpectedToken {
        /// Human description of what was expected.
        expected: &'static str,
        /// The offending token, rendered.
        got: String,
    },
    /// An unknown predicate name in predicate notation.
    UnknownPredicate(String),
    /// A predicate atom with the wrong number of arguments.
    PredicateArity {
        /// The predicate name.
        name: String,
        /// Its declared arity.
        expected: usize,
        /// The number of arguments found.
        got: usize,
    },
    /// A malformed cardinality constraint. F-logic Lite permits only
    /// `{0:1}` and `{1:*}` (Section 2).
    UnsupportedCardinality(String),
    /// A variable (or anonymous `_`) occurred in a fact.
    VariableInFact(String),
    /// A signature fact `o[a*=>_]` without cardinality has no `P_FL`
    /// encoding (nothing to assert).
    EmptySignatureFact,
    /// `parse_query` was given zero or more than one statement.
    ExpectedSingleQuery {
        /// Number of statements actually found.
        got: usize,
    },
    /// `parse_queries` found a fact.
    FactWhereQueryExpected,
    /// The parsed query failed semantic validation (safety, arity, …).
    Semantic(ModelError),
}

/// A syntax error with an optional source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyntaxError {
    /// Position, if attributable to a specific token.
    pub pos: Option<Pos>,
    /// The error kind.
    pub kind: SyntaxErrorKind,
}

impl SyntaxError {
    /// An error at a specific position.
    pub fn at(line: u32, col: u32, kind: SyntaxErrorKind) -> SyntaxError {
        SyntaxError {
            pos: Some(Pos { line, col }),
            kind,
        }
    }

    /// An error about the whole input.
    pub fn whole_input(kind: SyntaxErrorKind) -> SyntaxError {
        SyntaxError { pos: None, kind }
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(pos) = self.pos {
            write!(f, "at {pos}: ")?;
        }
        match &self.kind {
            SyntaxErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            SyntaxErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            SyntaxErrorKind::UnexpectedToken { expected, got } => {
                write!(f, "expected {expected}, got `{got}`")
            }
            SyntaxErrorKind::UnknownPredicate(name) => {
                write!(f, "unknown predicate `{name}` (P_FL has member, sub, data, type, mandatory, funct)")
            }
            SyntaxErrorKind::PredicateArity {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "predicate `{name}` takes {expected} arguments, got {got}"
                )
            }
            SyntaxErrorKind::UnsupportedCardinality(c) => {
                write!(f, "unsupported cardinality `{{{c}}}`: F-logic Lite allows only {{0:1}} and {{1:*}}")
            }
            SyntaxErrorKind::VariableInFact(v) => {
                write!(f, "variable `{v}` not allowed in a fact")
            }
            SyntaxErrorKind::EmptySignatureFact => {
                write!(
                    f,
                    "signature fact with anonymous type and no cardinality asserts nothing"
                )
            }
            SyntaxErrorKind::ExpectedSingleQuery { got } => {
                write!(f, "expected exactly one query, found {got} statements")
            }
            SyntaxErrorKind::FactWhereQueryExpected => {
                write!(f, "found a fact where a query was expected")
            }
            SyntaxErrorKind::Semantic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SyntaxError {}

impl From<ModelError> for SyntaxError {
    fn from(e: ModelError) -> SyntaxError {
        SyntaxError::whole_input(SyntaxErrorKind::Semantic(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = SyntaxError::at(3, 7, SyntaxErrorKind::UnexpectedChar('$'));
        assert_eq!(e.to_string(), "at 3:7: unexpected character `$`");
    }

    #[test]
    fn display_without_position() {
        let e = SyntaxError::whole_input(SyntaxErrorKind::UnexpectedEof);
        assert_eq!(e.to_string(), "unexpected end of input");
    }

    #[test]
    fn cardinality_message_names_the_fragment() {
        let e = SyntaxError::whole_input(SyntaxErrorKind::UnsupportedCardinality("2:3".into()));
        assert!(e.to_string().contains("{0:1}"));
        assert!(e.to_string().contains("{1:*}"));
    }
}
