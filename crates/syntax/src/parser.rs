//! Recursive-descent parser for the F-logic Lite surface syntax.

use crate::ast::{AstQuery, AstTerm, Card, Molecule, Program, Spec, Statement};
use crate::error::{Pos, SyntaxError, SyntaxErrorKind};
use crate::lexer::{Lexer, Token, TokenKind};

/// Parses a whole program.
pub fn parse(input: &str) -> Result<Program, SyntaxError> {
    let tokens = Lexer::tokenize(input)?;
    let mut p = Parser { tokens, idx: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.idx]
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.idx + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.idx].clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn unexpected(&self, expected: &'static str) -> SyntaxError {
        let t = self.peek();
        if t.kind == TokenKind::Eof {
            SyntaxError::at(t.pos.line, t.pos.col, SyntaxErrorKind::UnexpectedEof)
        } else {
            SyntaxError::at(
                t.pos.line,
                t.pos.col,
                SyntaxErrorKind::UnexpectedToken {
                    expected,
                    got: t.kind.to_string(),
                },
            )
        }
    }

    fn eat(&mut self, kind: &TokenKind, expected: &'static str) -> Result<Token, SyntaxError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(expected))
        }
    }

    fn program(&mut self) -> Result<Program, SyntaxError> {
        let mut statements = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            statements.push(self.statement()?);
            // '.' terminates a statement; it may be omitted before EOF.
            if self.peek().kind == TokenKind::Dot {
                self.bump();
            } else if self.peek().kind != TokenKind::Eof {
                return Err(self.unexpected("`.` or end of input"));
            }
        }
        Ok(Program { statements })
    }

    fn statement(&mut self) -> Result<Statement, SyntaxError> {
        // An ad-hoc goal starts with `?-`.
        if self.peek().kind == TokenKind::Goal {
            self.bump();
            return Ok(Statement::Goal(self.body()?));
        }
        // A query starts with `name(args) :-`; anything else is a fact.
        if let TokenKind::LIdent(_) = &self.peek().kind {
            if *self.peek2() == TokenKind::LParen {
                let save = self.idx;
                let (name, pos, args, head_pos) = self.pred_shape()?;
                if self.peek().kind == TokenKind::Implies {
                    self.bump();
                    let body = self.body()?;
                    return Ok(Statement::Query(AstQuery {
                        name,
                        head: args,
                        body,
                        pos,
                        head_pos,
                    }));
                }
                // Not a rule: re-interpret as a predicate-notation fact.
                self.idx = save;
                let molecule = self.molecule()?;
                return Ok(Statement::Fact(molecule));
            }
        }
        Ok(Statement::Fact(self.molecule()?))
    }

    /// `name(t1, …, tn)` — used for both query heads and predicate atoms.
    /// Returns the name and its position, plus the arguments and their
    /// positions (the two vectors are parallel).
    #[allow(clippy::type_complexity)]
    fn pred_shape(&mut self) -> Result<(String, Pos, Vec<AstTerm>, Vec<Pos>), SyntaxError> {
        let tok = self.bump();
        let pos = tok.pos;
        let TokenKind::LIdent(name) = tok.kind else {
            unreachable!("caller checked LIdent")
        };
        self.eat(&TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        let mut arg_pos = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                arg_pos.push(self.peek().pos);
                args.push(self.term()?);
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&TokenKind::RParen, "`)`")?;
        Ok((name, pos, args, arg_pos))
    }

    fn body(&mut self) -> Result<Vec<Molecule>, SyntaxError> {
        let mut molecules = vec![self.molecule()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            molecules.push(self.molecule()?);
        }
        Ok(molecules)
    }

    fn term(&mut self) -> Result<AstTerm, SyntaxError> {
        match &self.peek().kind {
            TokenKind::LIdent(_) => {
                let TokenKind::LIdent(s) = self.bump().kind else {
                    unreachable!()
                };
                Ok(AstTerm::Const(s))
            }
            TokenKind::UIdent(_) => {
                let TokenKind::UIdent(s) = self.bump().kind else {
                    unreachable!()
                };
                Ok(AstTerm::Var(s))
            }
            TokenKind::Anon => {
                self.bump();
                Ok(AstTerm::Anon)
            }
            _ => Err(self.unexpected("a term (constant, variable or `_`)")),
        }
    }

    fn molecule(&mut self) -> Result<Molecule, SyntaxError> {
        let pos = self.peek().pos;
        // Predicate notation: lowercase name immediately followed by '('.
        if let TokenKind::LIdent(_) = &self.peek().kind {
            if *self.peek2() == TokenKind::LParen {
                let (name, pos, args, _) = self.pred_shape()?;
                return Ok(Molecule::Pred { name, args, pos });
            }
        }
        let subject = self.term()?;
        match &self.peek().kind {
            TokenKind::Colon => {
                self.bump();
                let class = self.term()?;
                Ok(Molecule::Isa {
                    obj: subject,
                    class,
                    pos,
                })
            }
            TokenKind::SubSym => {
                self.bump();
                let sup = self.term()?;
                Ok(Molecule::Sub {
                    sub: subject,
                    sup,
                    pos,
                })
            }
            TokenKind::LBracket => {
                self.bump();
                let mut specs = vec![self.spec()?];
                while self.peek().kind == TokenKind::Comma {
                    self.bump();
                    specs.push(self.spec()?);
                }
                self.eat(&TokenKind::RBracket, "`]`")?;
                Ok(Molecule::Specs {
                    obj: subject,
                    specs,
                    pos,
                })
            }
            _ => Err(self.unexpected("`:`, `::` or `[`")),
        }
    }

    fn spec(&mut self) -> Result<Spec, SyntaxError> {
        let pos = self.peek().pos;
        let attr = self.term()?;
        match &self.peek().kind {
            TokenKind::Arrow => {
                self.bump();
                let value = self.term()?;
                Ok(Spec::DataVal { attr, value, pos })
            }
            TokenKind::LBrace => {
                let card = self.cardinality()?;
                self.eat(&TokenKind::SigArrow, "`*=>`")?;
                let typ = self.term()?;
                Ok(Spec::Signature {
                    attr,
                    card: Some(card),
                    typ,
                    pos,
                })
            }
            TokenKind::SigArrow => {
                self.bump();
                let typ = self.term()?;
                Ok(Spec::Signature {
                    attr,
                    card: None,
                    typ,
                    pos,
                })
            }
            _ => Err(self.unexpected("`->`, `{` or `*=>`")),
        }
    }

    /// `{0:1}` or `{1:*}`; the paper also writes `{1,*}`, so both `:` and
    /// `,` separators are accepted. Anything else is rejected — F-logic
    /// Lite allows only these two cardinalities.
    fn cardinality(&mut self) -> Result<Card, SyntaxError> {
        let open = self.eat(&TokenKind::LBrace, "`{`")?;
        let lo = match &self.peek().kind {
            TokenKind::LIdent(s) if s == "0" || s == "1" => {
                let s = s.clone();
                self.bump();
                s
            }
            _ => return Err(self.unexpected("`0` or `1`")),
        };
        match &self.peek().kind {
            TokenKind::Colon | TokenKind::Comma => {
                self.bump();
            }
            _ => return Err(self.unexpected("`:` or `,`")),
        }
        let hi = match &self.peek().kind {
            TokenKind::LIdent(s) if s == "1" => {
                self.bump();
                "1".to_owned()
            }
            TokenKind::Star => {
                self.bump();
                "*".to_owned()
            }
            _ => return Err(self.unexpected("`1` or `*`")),
        };
        self.eat(&TokenKind::RBrace, "`}`")?;
        match (lo.as_str(), hi.as_str()) {
            ("0", "1") => Ok(Card::ZeroOne),
            ("1", "*") => Ok(Card::OneStar),
            _ => Err(SyntaxError::at(
                open.pos.line,
                open.pos.col,
                SyntaxErrorKind::UnsupportedCardinality(format!("{lo}:{hi}")),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_isa_and_sub_facts() {
        let p = parse("john:student. freshman::student.").unwrap();
        assert_eq!(p.statements.len(), 2);
        assert!(matches!(
            &p.statements[0],
            Statement::Fact(Molecule::Isa { .. })
        ));
        assert!(matches!(
            &p.statements[1],
            Statement::Fact(Molecule::Sub { .. })
        ));
    }

    #[test]
    fn parses_multi_spec_molecule() {
        let p = parse("john[age->33, name->j].").unwrap();
        let Statement::Fact(Molecule::Specs { specs, .. }) = &p.statements[0] else {
            panic!("expected specs molecule");
        };
        assert_eq!(specs.len(), 2);
    }

    #[test]
    fn parses_signature_with_cardinalities() {
        let p = parse("person[age {0:1} *=> number]. person[name {1,*} *=> string].").unwrap();
        let Statement::Fact(Molecule::Specs { specs, .. }) = &p.statements[0] else {
            panic!()
        };
        assert_eq!(
            specs[0],
            Spec::Signature {
                attr: AstTerm::Const("age".into()),
                card: Some(Card::ZeroOne),
                typ: AstTerm::Const("number".into()),
                pos: Pos { line: 1, col: 8 },
            }
        );
        let Statement::Fact(Molecule::Specs { specs, .. }) = &p.statements[1] else {
            panic!()
        };
        assert!(matches!(
            specs[0],
            Spec::Signature {
                card: Some(Card::OneStar),
                ..
            }
        ));
    }

    #[test]
    fn rejects_unsupported_cardinality() {
        let err = parse("person[kids {1:1} *=> person].").unwrap_err();
        assert!(
            matches!(err.kind, SyntaxErrorKind::UnexpectedToken { .. })
                || matches!(err.kind, SyntaxErrorKind::UnsupportedCardinality(_))
        );
        let err = parse("person[kids {0,*} *=> person].").unwrap_err();
        assert!(
            matches!(&err.kind, SyntaxErrorKind::UnsupportedCardinality(s) if s == "0:*"),
            "{err}"
        );
    }

    #[test]
    fn parses_query_with_molecule_body() {
        let p = parse("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].").unwrap();
        let Statement::Query(q) = &p.statements[0] else {
            panic!()
        };
        assert_eq!(q.name, "q");
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.body.len(), 3);
    }

    #[test]
    fn parses_boolean_query() {
        let p = parse("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
        let Statement::Query(q) = &p.statements[0] else {
            panic!()
        };
        assert!(q.head.is_empty());
        assert_eq!(q.body.len(), 3);
    }

    #[test]
    fn predicate_fact_vs_rule_disambiguation() {
        let p = parse("member(john, student).").unwrap();
        assert!(matches!(
            &p.statements[0],
            Statement::Fact(Molecule::Pred { name, .. }) if name == "member"
        ));
    }

    #[test]
    fn final_dot_optional() {
        assert!(parse("q(X) :- member(X, c)").is_ok());
    }

    #[test]
    fn missing_separator_is_an_error() {
        let err = parse("john:student mary:student.").unwrap_err();
        assert!(matches!(err.kind, SyntaxErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn eof_inside_molecule_is_an_error() {
        let err = parse("john[age->").unwrap_err();
        assert_eq!(err.kind, SyntaxErrorKind::UnexpectedEof);
    }

    #[test]
    fn variables_allowed_anywhere_in_queries() {
        // "Variables can occur anywhere an object, an attribute, or a class
        // is allowed" (Section 2).
        let p = parse("q(Att, Val) :- student[Att*=>string], john[Att->Val].").unwrap();
        let Statement::Query(q) = &p.statements[0] else {
            panic!()
        };
        assert_eq!(q.body.len(), 2);
    }
}
