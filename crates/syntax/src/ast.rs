//! Abstract syntax tree for the surface language.
//!
//! Every molecule, spec and query carries the [`Pos`] of the token that
//! opened it, so downstream tooling (notably `flogic-analysis`) can report
//! diagnostics with `line:col` spans instead of pointing at whole inputs.

use std::fmt;

use crate::error::Pos;

/// A surface-level term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstTerm {
    /// A constant (`john`, `33`).
    Const(String),
    /// A named variable (`X`, `Att`).
    Var(String),
    /// The anonymous variable `_`: each occurrence denotes a completely new
    /// variable (paper, Section 2).
    Anon,
}

impl fmt::Display for AstTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstTerm::Const(s) | AstTerm::Var(s) => f.write_str(s),
            AstTerm::Anon => f.write_str("_"),
        }
    }
}

/// A cardinality constraint on a signature. F-logic Lite admits exactly two
/// (Section 2): functional `{0:1}` and mandatory `{1:*}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Card {
    /// `{0:1}` — at most one value (functional attribute).
    ZeroOne,
    /// `{1:*}` — at least one value (mandatory attribute).
    OneStar,
}

impl fmt::Display for Card {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Card::ZeroOne => f.write_str("{0:1}"),
            Card::OneStar => f.write_str("{1:*}"),
        }
    }
}

/// One specification inside a molecule's brackets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Spec {
    /// `attr -> value` — a data atom.
    DataVal {
        /// The attribute.
        attr: AstTerm,
        /// The value.
        value: AstTerm,
        /// Source position of the attribute.
        pos: Pos,
    },
    /// `attr [card] *=> typ` — a signature atom with optional cardinality.
    Signature {
        /// The attribute.
        attr: AstTerm,
        /// Optional cardinality constraint.
        card: Option<Card>,
        /// The type (may be `_`).
        typ: AstTerm,
        /// Source position of the attribute.
        pos: Pos,
    },
}

impl Spec {
    /// Source position of the spec (its attribute token).
    pub fn pos(&self) -> Pos {
        match self {
            Spec::DataVal { pos, .. } | Spec::Signature { pos, .. } => *pos,
        }
    }

    /// The attribute term of the spec.
    pub fn attr(&self) -> &AstTerm {
        match self {
            Spec::DataVal { attr, .. } | Spec::Signature { attr, .. } => attr,
        }
    }
}

/// A surface-level atom: an F-logic molecule or a low-level predicate atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Molecule {
    /// `obj : class`
    Isa {
        /// The object.
        obj: AstTerm,
        /// The class.
        class: AstTerm,
        /// Source position of the molecule's first token.
        pos: Pos,
    },
    /// `sub :: sup`
    Sub {
        /// The subclass.
        sub: AstTerm,
        /// The superclass.
        sup: AstTerm,
        /// Source position of the molecule's first token.
        pos: Pos,
    },
    /// `obj[spec, spec, …]` — one or more data/signature specs on an
    /// object. F-logic allows several specs in one molecule
    /// (`john[age->33, name->"J"]`); each expands to its own atom.
    Specs {
        /// The host object.
        obj: AstTerm,
        /// The specs inside the brackets.
        specs: Vec<Spec>,
        /// Source position of the molecule's first token.
        pos: Pos,
    },
    /// `member(x, y)` etc. — low-level predicate notation.
    Pred {
        /// Predicate name as written.
        name: String,
        /// Arguments.
        args: Vec<AstTerm>,
        /// Source position of the predicate name.
        pos: Pos,
    },
}

impl Molecule {
    /// Source position of the molecule's first token.
    pub fn pos(&self) -> Pos {
        match self {
            Molecule::Isa { pos, .. }
            | Molecule::Sub { pos, .. }
            | Molecule::Specs { pos, .. }
            | Molecule::Pred { pos, .. } => *pos,
        }
    }
}

/// A query/rule: `name(head) :- body.`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AstQuery {
    /// The head predicate name.
    pub name: String,
    /// The head terms.
    pub head: Vec<AstTerm>,
    /// The body molecules (each may expand to several `P_FL` atoms).
    pub body: Vec<Molecule>,
    /// Source position of the head predicate name.
    pub pos: Pos,
    /// Source position of each head term (parallel to `head`).
    pub head_pos: Vec<Pos>,
}

/// A statement: a ground fact, a query, or an ad-hoc goal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Statement {
    /// A fact (a molecule asserted to hold).
    Fact(Molecule),
    /// A query/rule.
    Query(AstQuery),
    /// An ad-hoc goal `?- body.` (the paper's interactive query form).
    /// The answer tuple consists of the goal's named variables, in order
    /// of first occurrence; variables starting with `_` are projected out.
    Goal(Vec<Molecule>),
}

/// A parsed program: a sequence of statements.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// The statements, in input order.
    pub statements: Vec<Statement>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_display() {
        assert_eq!(AstTerm::Const("john".into()).to_string(), "john");
        assert_eq!(AstTerm::Var("X".into()).to_string(), "X");
        assert_eq!(AstTerm::Anon.to_string(), "_");
    }

    #[test]
    fn card_display() {
        assert_eq!(Card::ZeroOne.to_string(), "{0:1}");
        assert_eq!(Card::OneStar.to_string(), "{1:*}");
    }
}
