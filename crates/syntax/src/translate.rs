//! Translation from the surface AST to the `P_FL` encoding.

use std::collections::HashSet;

use flogic_model::{Atom, ConjunctiveQuery, Database, Pred};
use flogic_term::{Symbol, Term};

use crate::ast::{AstQuery, AstTerm, Card, Molecule, Program, Spec, Statement};
use crate::error::{SyntaxError, SyntaxErrorKind};

/// Allocates fresh variables for the anonymous `_`: "Different occurrences
/// of `_` denote different variables" (Section 2 of the paper).
struct FreshVars {
    used: HashSet<String>,
    next: u32,
}

impl FreshVars {
    fn for_query(q: &AstQuery) -> FreshVars {
        let mut used = HashSet::new();
        let mut note = |t: &AstTerm| {
            if let AstTerm::Var(name) = t {
                used.insert(name.clone());
            }
        };
        for t in &q.head {
            note(t);
        }
        for m in &q.body {
            match m {
                Molecule::Isa { obj, class, .. } => {
                    note(obj);
                    note(class);
                }
                Molecule::Sub { sub, sup, .. } => {
                    note(sub);
                    note(sup);
                }
                Molecule::Specs { obj, specs, .. } => {
                    note(obj);
                    for s in specs {
                        match s {
                            Spec::DataVal { attr, value, .. } => {
                                note(attr);
                                note(value);
                            }
                            Spec::Signature { attr, typ, .. } => {
                                note(attr);
                                note(typ);
                            }
                        }
                    }
                }
                Molecule::Pred { args, .. } => args.iter().for_each(&mut note),
            }
        }
        FreshVars { used, next: 1 }
    }

    fn fresh(&mut self) -> Term {
        loop {
            let name = format!("_G{}", self.next);
            self.next += 1;
            if self.used.insert(name.clone()) {
                return Term::var(&name);
            }
        }
    }
}

/// Whether we are translating a query body (variables allowed) or a fact
/// (must be ground).
enum Mode<'a> {
    Query(&'a mut FreshVars),
    Fact,
}

fn term(t: &AstTerm, mode: &mut Mode<'_>) -> Result<Term, SyntaxError> {
    match (t, mode) {
        (AstTerm::Const(name), _) => Ok(Term::constant(name)),
        (AstTerm::Var(name), Mode::Query(_)) => Ok(Term::var(name)),
        (AstTerm::Anon, Mode::Query(fresh)) => Ok(fresh.fresh()),
        (AstTerm::Var(name), Mode::Fact) => Err(SyntaxError::whole_input(
            SyntaxErrorKind::VariableInFact(name.clone()),
        )),
        (AstTerm::Anon, Mode::Fact) => Err(SyntaxError::whole_input(
            SyntaxErrorKind::VariableInFact("_".into()),
        )),
    }
}

/// Expands one surface molecule into its `P_FL` atoms.
fn molecule(m: &Molecule, mode: &mut Mode<'_>, out: &mut Vec<Atom>) -> Result<(), SyntaxError> {
    match m {
        Molecule::Isa { obj, class, .. } => {
            let (o, c) = (term(obj, mode)?, term(class, mode)?);
            out.push(Atom::member(o, c));
        }
        Molecule::Sub { sub, sup, .. } => {
            let (s, p) = (term(sub, mode)?, term(sup, mode)?);
            out.push(Atom::sub(s, p));
        }
        Molecule::Specs { obj, specs, .. } => {
            let o = term(obj, mode)?;
            for spec in specs {
                match spec {
                    Spec::DataVal { attr, value, .. } => {
                        let (a, v) = (term(attr, mode)?, term(value, mode)?);
                        out.push(Atom::data(o, a, v));
                    }
                    Spec::Signature {
                        attr, card, typ, ..
                    } => {
                        let a = term(attr, mode)?;
                        match card {
                            Some(Card::ZeroOne) => out.push(Atom::funct(a, o)),
                            Some(Card::OneStar) => out.push(Atom::mandatory(a, o)),
                            None => {}
                        }
                        // `O[A {1:*} *=> _]` encodes *only* mandatory(A, O)
                        // (Section 2): the anonymous type asserts (and, in a
                        // query, constrains) nothing, so no type atom is
                        // emitted. Without a cardinality, `T3[B*=>_]`
                        // genuinely queries for a type, so the `_` becomes a
                        // fresh variable (and is illegal in a fact).
                        match (typ, &mode, card) {
                            (AstTerm::Anon, _, Some(_)) => {}
                            (AstTerm::Anon, Mode::Fact, None) => {
                                return Err(SyntaxError::whole_input(
                                    SyntaxErrorKind::EmptySignatureFact,
                                ));
                            }
                            _ => {
                                let t = term(typ, mode)?;
                                out.push(Atom::typ(o, a, t));
                            }
                        }
                    }
                }
            }
        }
        Molecule::Pred { name, args, .. } => {
            let Some(pred) = Pred::from_name(name) else {
                return Err(SyntaxError::whole_input(SyntaxErrorKind::UnknownPredicate(
                    name.clone(),
                )));
            };
            if args.len() != pred.arity() {
                return Err(SyntaxError::whole_input(SyntaxErrorKind::PredicateArity {
                    name: name.clone(),
                    expected: pred.arity(),
                    got: args.len(),
                }));
            }
            let terms: Vec<Term> = args
                .iter()
                .map(|a| term(a, mode))
                .collect::<Result<_, _>>()?;
            out.push(Atom::new(pred, &terms).expect("arity checked above"));
        }
    }
    Ok(())
}

/// Translates an ad-hoc goal `?- body.` into a query named `ans` whose
/// head lists the goal's named variables in order of first occurrence
/// (variables starting with `_` are projected out, Prolog-style).
pub(crate) fn goal(body_molecules: &[Molecule]) -> Result<ConjunctiveQuery, SyntaxError> {
    let as_query = AstQuery {
        name: "ans".to_owned(),
        head: Vec::new(),
        body: body_molecules.to_vec(),
        pos: crate::error::Pos::default(),
        head_pos: Vec::new(),
    };
    let mut fresh = FreshVars::for_query(&as_query);
    let mut mode = Mode::Query(&mut fresh);
    let mut atoms = Vec::new();
    for m in body_molecules {
        molecule(m, &mut mode, &mut atoms)?;
    }
    let mut head = Vec::new();
    for atom in &atoms {
        for v in atom.vars() {
            let Term::Var(sym) = v else {
                unreachable!("vars() yields variables")
            };
            if !sym.as_str().starts_with('_') && !head.contains(&v) {
                head.push(v);
            }
        }
    }
    Ok(ConjunctiveQuery::new(Symbol::intern("ans"), head, atoms)?)
}

fn query(q: &AstQuery) -> Result<ConjunctiveQuery, SyntaxError> {
    let mut fresh = FreshVars::for_query(q);
    let mut mode = Mode::Query(&mut fresh);
    let head: Vec<Term> = q
        .head
        .iter()
        .map(|t| term(t, &mut mode))
        .collect::<Result<_, _>>()?;
    let mut body = Vec::new();
    for m in &q.body {
        molecule(m, &mut mode, &mut body)?;
    }
    Ok(ConjunctiveQuery::new(Symbol::intern(&q.name), head, body)?)
}

/// Translates every query statement in the program.
pub(crate) fn program_to_queries(program: &Program) -> Result<Vec<ConjunctiveQuery>, SyntaxError> {
    program
        .statements
        .iter()
        .filter_map(|s| match s {
            Statement::Query(q) => Some(query(q)),
            Statement::Goal(body) => Some(goal(body)),
            Statement::Fact(_) => None,
        })
        .collect()
}

/// Translates every fact statement in the program into a database;
/// query statements are an error.
pub(crate) fn program_to_database(program: &Program) -> Result<Database, SyntaxError> {
    let mut db = Database::new();
    for s in &program.statements {
        match s {
            Statement::Fact(m) => {
                let mut atoms = Vec::new();
                molecule(m, &mut Mode::Fact, &mut atoms)?;
                for a in atoms {
                    db.insert(a).map_err(SyntaxError::from)?;
                }
            }
            Statement::Query(q) => {
                return Err(SyntaxError::whole_input(SyntaxErrorKind::UnexpectedToken {
                    expected: "a fact",
                    got: format!("query {}", q.name),
                }));
            }
            Statement::Goal(_) => {
                return Err(SyntaxError::whole_input(SyntaxErrorKind::UnexpectedToken {
                    expected: "a fact",
                    got: "goal ?-".to_owned(),
                }));
            }
        }
    }
    Ok(db)
}

/// Splits a mixed program into (queries, fact base).
pub(crate) fn split_program(
    program: &Program,
) -> Result<(Vec<ConjunctiveQuery>, Database), SyntaxError> {
    let mut queries = Vec::new();
    let mut db = Database::new();
    for s in &program.statements {
        match s {
            Statement::Query(q) => queries.push(query(q)?),
            Statement::Goal(body) => queries.push(goal(body)?),
            Statement::Fact(m) => {
                let mut atoms = Vec::new();
                molecule(m, &mut Mode::Fact, &mut atoms)?;
                for a in atoms {
                    db.insert(a).map_err(SyntaxError::from)?;
                }
            }
        }
    }
    Ok((queries, db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn one_query(input: &str) -> ConjunctiveQuery {
        program_to_queries(&parse(input).unwrap())
            .unwrap()
            .remove(0)
    }

    #[test]
    fn anonymous_vars_are_distinct() {
        let q = one_query("q(A) :- type(T, A, _), type(T, A, _).");
        let a0 = q.body()[0].arg(2);
        let a1 = q.body()[1].arg(2);
        assert!(a0.is_var() && a1.is_var());
        assert_ne!(
            a0, a1,
            "different `_` occurrences must be different variables"
        );
    }

    #[test]
    fn fresh_vars_avoid_user_names() {
        let q = one_query("q(G) :- data(_G1, a, G), type(_, a, _G1).");
        // The fresh variable for `_` must not collide with user's _G1.
        let fresh = q.body()[1].arg(0);
        assert_ne!(fresh, Term::var("_G1"));
    }

    #[test]
    fn signature_cardinalities_expand_per_the_encoding() {
        let q = one_query("q(A) :- C[A {1:*} *=> T].");
        assert_eq!(q.body().len(), 2);
        assert_eq!(q.body()[0], Atom::mandatory(Term::var("A"), Term::var("C")));
        assert_eq!(
            q.body()[1],
            Atom::typ(Term::var("C"), Term::var("A"), Term::var("T"))
        );
        // Anonymous type with cardinality: only the cardinality atom.
        let q = one_query("q(A) :- C[A {0:1} *=> _], member(X, C), data(X, A, Y).");
        assert_eq!(q.body()[0], Atom::funct(Term::var("A"), Term::var("C")));
        assert_eq!(q.body().len(), 3);
    }

    #[test]
    fn unknown_predicate_rejected() {
        let err = program_to_queries(&parse("q(X) :- parent(X, Y).").unwrap()).unwrap_err();
        assert!(matches!(err.kind, SyntaxErrorKind::UnknownPredicate(ref n) if n == "parent"));
    }

    #[test]
    fn wrong_predicate_arity_rejected() {
        let err = program_to_queries(&parse("q(X) :- member(X).").unwrap()).unwrap_err();
        assert!(matches!(
            err.kind,
            SyntaxErrorKind::PredicateArity {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn unsafe_head_becomes_semantic_error() {
        let err = program_to_queries(&parse("q(Z) :- member(X, Y).").unwrap()).unwrap_err();
        assert!(matches!(err.kind, SyntaxErrorKind::Semantic(_)));
    }

    #[test]
    fn anonymous_signature_fact_without_card_rejected() {
        let err = program_to_database(&parse("person[age *=> _].").unwrap()).unwrap_err();
        assert_eq!(err.kind, SyntaxErrorKind::EmptySignatureFact);
    }

    #[test]
    fn mandatory_fact_with_anonymous_type_ok() {
        let db = program_to_database(&parse("person[name {1:*} *=> _].").unwrap()).unwrap();
        assert_eq!(db.len(), 1);
        assert!(db.contains(&Atom::mandatory(
            Term::constant("name"),
            Term::constant("person")
        )));
    }

    #[test]
    fn multi_spec_molecule_expands_to_multiple_atoms() {
        let db = program_to_database(&parse("john[age->33, office->b42].").unwrap()).unwrap();
        assert_eq!(db.len(), 2);
    }
}
