//! Conjunctive meta-queries over `P_FL`.

use std::collections::BTreeSet;
use std::fmt;

use flogic_term::{Subst, Symbol, Term};

use crate::{Atom, ModelError};

/// A conjunctive query `q(t̄) :- c1, …, cn` over the `P_FL` predicates.
///
/// The head is a tuple of terms (variables or constants); the body is a
/// non-empty conjunction of atoms. Queries are validated on construction:
///
/// * the body must be non-empty (the paper's conjunctive queries are
///   conjunctions of `P_FL` predicates);
/// * every head variable must occur in the body (*safety*);
/// * labelled nulls may not appear anywhere (nulls belong to chases and
///   databases only).
///
/// The paper writes `|q|` for the size of a query; [`ConjunctiveQuery::size`]
/// returns the number of body atoms, which is the measure used in the level
/// bound `δ = 2·|q1|` of Theorem 12.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    name: Symbol,
    head: Vec<Term>,
    body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates and validates a conjunctive query.
    pub fn new(
        name: Symbol,
        head: Vec<Term>,
        body: Vec<Atom>,
    ) -> Result<ConjunctiveQuery, ModelError> {
        if body.is_empty() {
            return Err(ModelError::EmptyBody);
        }
        if head.iter().any(|t| t.is_null())
            || body.iter().any(|a| a.args().iter().any(|t| t.is_null()))
        {
            return Err(ModelError::NullInQuery);
        }
        let body_vars: BTreeSet<Term> = body.iter().flat_map(super::atom::Atom::vars).collect();
        for &t in &head {
            if t.is_var() && !body_vars.contains(&t) {
                return Err(ModelError::UnsafeHeadVariable { var: t });
            }
        }
        Ok(ConjunctiveQuery { name, head, body })
    }

    /// The query name (purely cosmetic; containment ignores it).
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// The head tuple.
    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// The body conjuncts.
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// The arity of the head. Containment is only defined between queries
    /// of equal arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// The paper's `|q|`: the number of conjuncts in the body.
    pub fn size(&self) -> usize {
        self.body.len()
    }

    /// The set of variables occurring in the query (head ∪ body), in
    /// deterministic order.
    pub fn vars(&self) -> BTreeSet<Term> {
        self.body
            .iter()
            .flat_map(super::atom::Atom::vars)
            .chain(self.head.iter().copied().filter(|t| t.is_var()))
            .collect()
    }

    /// Applies a substitution to head and body, returning a new query.
    ///
    /// Used by the chase when ρ4 merges a head variable (Example 1 of the
    /// paper shows the head of a query changing during the chase). The
    /// result is *not* re-validated: merging may ground a head variable,
    /// which is fine.
    #[must_use]
    pub fn apply(&self, s: &Subst) -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: self.name,
            head: self.head.iter().map(|&t| s.apply(t)).collect(),
            body: self.body.iter().map(|a| a.apply(s)).collect(),
        }
    }

    /// Returns a copy whose variables are renamed apart from `other`'s by
    /// suffixing `'` marks, so that the two queries share no variables.
    ///
    /// Containment checks must not confuse `X` in `q1` with `X` in `q2`.
    #[must_use]
    pub fn rename_apart(&self, other: &ConjunctiveQuery) -> ConjunctiveQuery {
        let taken = other.vars();
        let mut s = Subst::new();
        for v in self.vars() {
            if let Term::Var(sym) = v {
                let mut candidate = v;
                let mut name = sym.as_str().to_owned();
                while taken.contains(&candidate) {
                    name.push('\'');
                    candidate = Term::var(&name);
                }
                if candidate != v {
                    s.bind(v, candidate);
                }
            }
        }
        if s.is_empty() {
            self.clone()
        } else {
            self.apply(&s)
        }
    }

    /// Drops the body atom at `idx`, returning `None` if the resulting
    /// query would be invalid (empty body or unsafe head). Used by query
    /// minimisation.
    pub fn without_atom(&self, idx: usize) -> Option<ConjunctiveQuery> {
        if self.body.len() <= 1 || idx >= self.body.len() {
            return None;
        }
        let mut body = self.body.clone();
        body.remove(idx);
        ConjunctiveQuery::new(self.name, self.head.clone(), body).ok()
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::var(n)
    }
    fn c(n: &str) -> Term {
        Term::constant(n)
    }
    fn q(head: Vec<Term>, body: Vec<Atom>) -> Result<ConjunctiveQuery, ModelError> {
        ConjunctiveQuery::new(Symbol::intern("q"), head, body)
    }

    #[test]
    fn valid_query_constructs() {
        let query = q(
            vec![v("A"), v("B")],
            vec![Atom::typ(v("T"), v("A"), v("B"))],
        )
        .unwrap();
        assert_eq!(query.arity(), 2);
        assert_eq!(query.size(), 1);
    }

    #[test]
    fn empty_body_rejected() {
        assert_eq!(q(vec![], vec![]).unwrap_err(), ModelError::EmptyBody);
    }

    #[test]
    fn unsafe_head_rejected() {
        let err = q(vec![v("Z")], vec![Atom::member(v("X"), v("Y"))]).unwrap_err();
        assert_eq!(err, ModelError::UnsafeHeadVariable { var: v("Z") });
    }

    #[test]
    fn constants_allowed_in_head() {
        let query = q(vec![c("k")], vec![Atom::member(v("X"), v("Y"))]).unwrap();
        assert_eq!(query.head(), &[c("k")]);
    }

    #[test]
    fn nulls_rejected_everywhere() {
        use flogic_term::NullGen;
        let mut g = NullGen::new();
        let n = Term::Null(g.fresh());
        let err = q(vec![], vec![Atom::member(n, c("c"))]).unwrap_err();
        assert_eq!(err, ModelError::NullInQuery);
    }

    #[test]
    fn vars_collects_head_and_body() {
        let query = q(vec![v("A")], vec![Atom::data(v("O"), v("A"), v("V"))]).unwrap();
        let vars = query.vars();
        assert!(vars.contains(&v("A")) && vars.contains(&v("O")) && vars.contains(&v("V")));
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn display_is_rule_notation() {
        let query = q(
            vec![v("A")],
            vec![
                Atom::member(v("O"), v("C")),
                Atom::mandatory(v("A"), v("C")),
            ],
        )
        .unwrap();
        assert_eq!(query.to_string(), "q(A) :- member(O, C), mandatory(A, C).");
    }

    #[test]
    fn rename_apart_avoids_collisions() {
        let q1 = q(vec![v("A")], vec![Atom::member(v("A"), v("B"))]).unwrap();
        let q2 = q(vec![v("A")], vec![Atom::sub(v("A"), v("C"))]).unwrap();
        let q1r = q1.rename_apart(&q2);
        let (v1, v2) = (q1r.vars(), q2.vars());
        let shared: Vec<_> = v1.intersection(&v2).collect();
        assert!(shared.is_empty(), "renamed query shares {shared:?}");
        // Structure preserved: head var still occurs in body.
        assert_eq!(q1r.head()[0], q1r.body()[0].arg(0));
    }

    #[test]
    fn rename_apart_noop_when_disjoint() {
        let q1 = q(vec![v("A")], vec![Atom::member(v("A"), v("B"))]).unwrap();
        let q2 = q(vec![v("X")], vec![Atom::sub(v("X"), v("Y"))]).unwrap();
        assert_eq!(q1.rename_apart(&q2), q1);
    }

    #[test]
    fn without_atom_respects_safety() {
        let query = q(
            vec![v("A")],
            vec![Atom::member(v("A"), v("B")), Atom::sub(v("B"), v("C"))],
        )
        .unwrap();
        // Removing atom 0 would orphan head var A.
        assert!(query.without_atom(0).is_none());
        let smaller = query.without_atom(1).unwrap();
        assert_eq!(smaller.size(), 1);
        // Single-atom query cannot shrink further.
        assert!(smaller.without_atom(0).is_none());
    }

    #[test]
    fn apply_rewrites_head_and_body() {
        let query = q(vec![v("A")], vec![Atom::data(v("O"), v("A"), v("V"))]).unwrap();
        let s = Subst::singleton(v("A"), c("age"));
        let r = query.apply(&s);
        assert_eq!(r.head(), &[c("age")]);
        assert_eq!(r.body()[0], Atom::data(v("O"), c("age"), v("V")));
    }
}
