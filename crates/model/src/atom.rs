//! Atoms over the `P_FL` schema.

use std::fmt;

use flogic_term::{Subst, Term};

use crate::{ModelError, Pred};

/// Argument storage: `P_FL` atoms have arity 2 or 3, so arguments are kept
/// inline (no heap allocation per atom).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
enum Args {
    Two([Term; 2]),
    Three([Term; 3]),
}

impl Args {
    fn as_slice(&self) -> &[Term] {
        match self {
            Args::Two(a) => a,
            Args::Three(a) => a,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [Term] {
        match self {
            Args::Two(a) => a,
            Args::Three(a) => a,
        }
    }
}

/// An atom `p(t1, …, tn)` over a `P_FL` predicate.
///
/// Atoms are the conjuncts of queries, the tuples of databases, and the
/// nodes of the chase graph (the paper uses *conjunct*, *tuple* and *atom*
/// interchangeably — see Section 3). An atom's arity always matches its
/// predicate; this invariant is enforced at construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    pred: Pred,
    args: Args,
}

impl Atom {
    /// Creates an atom, checking that `args.len()` matches the predicate
    /// arity.
    pub fn new(pred: Pred, args: &[Term]) -> Result<Atom, ModelError> {
        if args.len() != pred.arity() {
            return Err(ModelError::ArityMismatch {
                pred,
                expected: pred.arity(),
                got: args.len(),
            });
        }
        Ok(match pred.arity() {
            2 => Atom {
                pred,
                args: Args::Two([args[0], args[1]]),
            },
            _ => Atom {
                pred,
                args: Args::Three([args[0], args[1], args[2]]),
            },
        })
    }

    /// `member(o, c)` — object `o` is a member of class `c`.
    pub fn member(o: Term, c: Term) -> Atom {
        Atom {
            pred: Pred::Member,
            args: Args::Two([o, c]),
        }
    }

    /// `sub(c1, c2)` — class `c1` is a subclass of `c2`.
    pub fn sub(c1: Term, c2: Term) -> Atom {
        Atom {
            pred: Pred::Sub,
            args: Args::Two([c1, c2]),
        }
    }

    /// `data(o, a, v)` — attribute `a` has value `v` on object `o`.
    pub fn data(o: Term, a: Term, v: Term) -> Atom {
        Atom {
            pred: Pred::Data,
            args: Args::Three([o, a, v]),
        }
    }

    /// `type(o, a, t)` — attribute `a` has type `t` for object `o`.
    pub fn typ(o: Term, a: Term, t: Term) -> Atom {
        Atom {
            pred: Pred::Type,
            args: Args::Three([o, a, t]),
        }
    }

    /// `mandatory(a, o)` — attribute `a` is mandatory on `o`.
    pub fn mandatory(a: Term, o: Term) -> Atom {
        Atom {
            pred: Pred::Mandatory,
            args: Args::Two([a, o]),
        }
    }

    /// `funct(a, o)` — attribute `a` is functional on `o`.
    pub fn funct(a: Term, o: Term) -> Atom {
        Atom {
            pred: Pred::Funct,
            args: Args::Two([a, o]),
        }
    }

    /// The predicate of this atom.
    pub fn pred(&self) -> Pred {
        self.pred
    }

    /// The arguments, as a slice of length 2 or 3.
    pub fn args(&self) -> &[Term] {
        self.args.as_slice()
    }

    /// The `i`-th argument. Panics if `i >= arity` (programming error).
    pub fn arg(&self, i: usize) -> Term {
        self.args.as_slice()[i]
    }

    /// The arity (2 or 3).
    pub fn arity(&self) -> usize {
        self.args.as_slice().len()
    }

    /// True if every argument is ground (constant or null) — i.e. the atom
    /// may appear in a database.
    pub fn is_ground(&self) -> bool {
        self.args().iter().all(|t| t.is_ground())
    }

    /// Iterates over the variables of the atom (with repetitions).
    pub fn vars(&self) -> impl Iterator<Item = Term> + '_ {
        self.args().iter().copied().filter(|t| t.is_var())
    }

    /// Returns a copy with the substitution applied to every argument.
    #[must_use]
    pub fn apply(&self, s: &Subst) -> Atom {
        let mut out = *self;
        s.apply_slice(out.args.as_mut_slice());
        out
    }

    /// Applies the substitution in place.
    pub fn apply_in_place(&mut self, s: &Subst) {
        s.apply_slice(self.args.as_mut_slice());
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::var(n)
    }
    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    #[test]
    fn constructors_set_pred_and_args() {
        let a = Atom::data(c("john"), c("age"), c("33"));
        assert_eq!(a.pred(), Pred::Data);
        assert_eq!(a.args(), &[c("john"), c("age"), c("33")]);
        assert_eq!(a.arity(), 3);
        let m = Atom::member(c("john"), c("student"));
        assert_eq!(m.arity(), 2);
    }

    #[test]
    fn new_checks_arity() {
        assert!(Atom::new(Pred::Member, &[c("a"), c("b")]).is_ok());
        let err = Atom::new(Pred::Member, &[c("a")]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
        assert!(Atom::new(Pred::Data, &[c("a"), c("b")]).is_err());
    }

    #[test]
    fn groundness_and_vars() {
        let g = Atom::member(c("john"), c("student"));
        assert!(g.is_ground());
        let q = Atom::data(v("O"), c("age"), v("V"));
        assert!(!q.is_ground());
        let vars: Vec<Term> = q.vars().collect();
        assert_eq!(vars, vec![v("O"), v("V")]);
    }

    #[test]
    fn apply_substitutes_arguments() {
        let mut s = Subst::new();
        s.bind(v("O"), c("john"));
        let a = Atom::data(v("O"), c("age"), v("V"));
        let b = a.apply(&s);
        assert_eq!(b, Atom::data(c("john"), c("age"), v("V")));
        // original untouched
        assert_eq!(a.arg(0), v("O"));
    }

    #[test]
    fn display_matches_paper_notation() {
        let a = Atom::typ(c("person"), c("age"), c("number"));
        assert_eq!(a.to_string(), "type(person, age, number)");
        let m = Atom::mandatory(v("A"), v("O"));
        assert_eq!(m.to_string(), "mandatory(A, O)");
    }

    #[test]
    fn atoms_are_hashable_set_members() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Atom::member(c("a"), c("b")));
        s.insert(Atom::member(c("a"), c("b")));
        assert_eq!(s.len(), 1);
    }
}
