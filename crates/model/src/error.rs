//! Errors of the data-model layer.

use std::fmt;

use flogic_term::Term;

use crate::Pred;

/// Errors raised when constructing atoms, queries or databases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// An atom was built with the wrong number of arguments.
    ArityMismatch {
        /// The predicate involved.
        pred: Pred,
        /// Its declared arity.
        expected: usize,
        /// The number of arguments supplied.
        got: usize,
    },
    /// A query head uses a variable that does not occur in the body
    /// (violates safety / range restriction).
    UnsafeHeadVariable {
        /// The offending variable.
        var: Term,
    },
    /// A query has an empty body; conjunctive queries in the paper always
    /// have at least one conjunct.
    EmptyBody,
    /// A non-ground atom was inserted into a database.
    NonGroundFact {
        /// The offending atom, displayed.
        atom: String,
    },
    /// A query head contains a null; nulls only exist inside chases and
    /// databases, never in user queries.
    NullInQuery,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ArityMismatch {
                pred,
                expected,
                got,
            } => {
                write!(
                    f,
                    "predicate `{pred}` has arity {expected}, got {got} arguments"
                )
            }
            ModelError::UnsafeHeadVariable { var } => {
                write!(f, "head variable `{var}` does not occur in the query body")
            }
            ModelError::EmptyBody => write!(f, "conjunctive query has an empty body"),
            ModelError::NonGroundFact { atom } => {
                write!(f, "fact `{atom}` is not ground (contains variables)")
            }
            ModelError::NullInQuery => {
                write!(f, "labelled nulls may not appear in user queries")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = ModelError::ArityMismatch {
            pred: Pred::Member,
            expected: 2,
            got: 3,
        };
        assert_eq!(
            e.to_string(),
            "predicate `member` has arity 2, got 3 arguments"
        );
        let e = ModelError::UnsafeHeadVariable {
            var: Term::var("X"),
        };
        assert!(e.to_string().contains('X'));
        assert!(!ModelError::EmptyBody.to_string().is_empty());
    }
}
