//! Data model for F-logic Lite: the `P_FL` predicates, atoms, conjunctive
//! meta-queries, ground databases and the rule set `Σ_FL`.
//!
//! Section 2 of the paper encodes F-logic Lite into six relational
//! predicates (the set `P_FL`):
//!
//! | predicate | F-logic statement | meaning |
//! |---|---|---|
//! | `member(O, C)` | `O : C` | `O` is a member of class `C` |
//! | `sub(C1, C2)` | `C1 :: C2` | `C1` is a subclass of `C2` |
//! | `data(O, A, V)` | `O[A -> V]` | attribute `A` has value `V` on `O` |
//! | `type(O, A, T)` | `O[A *=> T]` | attribute `A` has type `T` for `O` |
//! | `mandatory(A, O)` | `O[A {1:*} *=> _]` | `A` must have a value on `O` |
//! | `funct(A, O)` | `O[A {0:1} *=> _]` | `A` has at most one value on `O` |
//!
//! The semantics of the encoding is given by twelve rules (`Σ_FL`), exposed
//! here as structured data by [`sigma_fl`]: ten plain Datalog rules, the
//! equality-generating dependency ρ4 (functional attributes) and the
//! existential tuple-generating dependency ρ5 (mandatory attributes).

mod atom;
mod database;
mod depgraph;
mod error;
mod predicate;
mod query;
mod ruleset;
mod sigma;

pub use atom::Atom;
pub use database::Database;
pub use depgraph::{DepEdge, DepGraph, PredPos, PredSet};
pub use error::ModelError;
pub use predicate::Pred;
pub use query::ConjunctiveQuery;
pub use ruleset::RuleSet;
pub use sigma::{sigma_fl, Egd, RuleId, SigmaRule, Tgd, SIGMA_RULE_COUNT};
