//! Predicate-position dependency graph of `Σ_FL`.
//!
//! This is the standard tool of the chase-termination literature (Calì,
//! Gottlob & Kifer, "Taming the Infinite Chase"): a node for every
//! *position* `pred[i]` of every `P_FL` predicate, and an edge
//! `p[i] → q[j]` whenever some TGD can propagate a value sitting in
//! position `i` of a body atom `p` into position `j` of its head atom `q`.
//! Edges that feed ρ5's existentially quantified value are marked
//! **existential**: they are where the chase *invents* labelled nulls.
//!
//! Two derived analyses power `flogic-analysis` and the `flq explain`
//! output:
//!
//! * **predicate-level derivability** ([`DepGraph::derivable_preds`]):
//!   the set of predicates the chase of a query can ever contain, computed
//!   as a fixpoint over rule shapes (a head predicate becomes derivable
//!   once *all* its body predicates are). This over-approximates the chase
//!   (rule applicability also needs join conditions to fire), which is the
//!   sound direction for "this atom can never be satisfied" conclusions.
//! * **value-invention cycles** ([`DepGraph::invention_cycles`]): cycles
//!   through an existential edge. `Σ_FL` has exactly one up to rotation —
//!   `mandatory[1] →ρ5 data[2] →ρ1 member[0] →ρ10 mandatory[1]` — and it
//!   is *why* the chase of `Σ_FL` need not terminate and a level bound
//!   (Theorem 12) is required.

use std::fmt;
use std::sync::LazyLock;

use crate::sigma::{sigma_fl, RuleId, SigmaRule};
use crate::Pred;

/// A position of a predicate: `pred[pos]` with `pos < pred.arity()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredPos {
    /// The predicate.
    pub pred: Pred,
    /// Zero-based argument position.
    pub pos: usize,
}

impl fmt::Display for PredPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.pred.name(), self.pos)
    }
}

impl PredPos {
    /// Total number of predicate positions across `P_FL` (2+2+3+3+2+2).
    pub const COUNT: usize = NODE_COUNT;

    /// Dense index in `0..PredPos::COUNT` (predicates in `Pred::ALL`
    /// order, positions within a predicate in order).
    pub fn index(self) -> usize {
        let mut base = 0;
        for p in Pred::ALL {
            if p == self.pred {
                return base + self.pos;
            }
            base += p.arity();
        }
        unreachable!("Pred::ALL covers every predicate")
    }
}

/// Total number of predicate positions across `P_FL` (2+2+3+3+2+2).
const NODE_COUNT: usize = 14;

fn all_nodes() -> impl Iterator<Item = PredPos> {
    Pred::ALL
        .into_iter()
        .flat_map(|pred| (0..pred.arity()).map(move |pos| PredPos { pred, pos }))
}

/// One edge of the dependency graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Source position (in a rule body).
    pub from: PredPos,
    /// Target position (in the rule head).
    pub to: PredPos,
    /// The rule that induces the edge.
    pub rule: RuleId,
    /// True when the target is the rule's existentially quantified value
    /// (only ρ5's `data[2]`): following this edge invents a labelled null.
    pub existential: bool,
}

/// A compact set of `P_FL` predicates (bitmask over [`Pred::ALL`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredSet(u8);

impl PredSet {
    /// The empty set.
    pub const EMPTY: PredSet = PredSet(0);

    /// Inserts a predicate; returns true if it was new.
    pub fn insert(&mut self, p: Pred) -> bool {
        let bit = 1 << p.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Membership test.
    pub fn contains(self, p: Pred) -> bool {
        self.0 & (1 << p.index()) != 0
    }

    /// Number of predicates in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no predicate is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in `Pred::ALL` order.
    pub fn iter(self) -> impl Iterator<Item = Pred> {
        Pred::ALL.into_iter().filter(move |p| self.contains(*p))
    }
}

impl FromIterator<Pred> for PredSet {
    fn from_iter<I: IntoIterator<Item = Pred>>(iter: I) -> PredSet {
        let mut s = PredSet::EMPTY;
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl fmt::Display for PredSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", p.name())?;
        }
        write!(f, "}}")
    }
}

/// The predicate-position dependency graph of a rule set (see module docs).
#[derive(Clone, Debug)]
pub struct DepGraph {
    edges: Vec<DepEdge>,
    /// Per-TGD predicate shape: (body predicates, head predicate), used by
    /// the predicate-level derivability fixpoint.
    rule_shapes: Vec<(PredSet, Pred)>,
}

static SIGMA_GRAPH: LazyLock<DepGraph> = LazyLock::new(DepGraph::build_sigma_fl);

impl DepGraph {
    /// The dependency graph of `Σ_FL` (built once, cached).
    pub fn sigma_fl() -> &'static DepGraph {
        &SIGMA_GRAPH
    }

    fn build_sigma_fl() -> DepGraph {
        DepGraph::for_rules(sigma_fl())
    }

    /// Builds the dependency graph of an arbitrary rule set over the
    /// `P_FL` schema. [`DepGraph::sigma_fl`] is this applied to the
    /// built-in rules (and cached).
    pub fn for_rules(rules: &[SigmaRule]) -> DepGraph {
        let mut edges = Vec::new();
        let mut rule_shapes = Vec::new();
        for rule in rules {
            let SigmaRule::Tgd(tgd) = rule else {
                // EGDs equate existing values; they neither generate
                // atoms nor propagate values into new positions.
                continue;
            };
            rule_shapes.push((
                tgd.body.iter().map(super::atom::Atom::pred).collect(),
                tgd.head.pred(),
            ));
            let head_args = tgd.head.args();
            for body_atom in &tgd.body {
                for (i, bt) in body_atom.args().iter().enumerate() {
                    if !bt.is_var() {
                        continue;
                    }
                    let from = PredPos {
                        pred: body_atom.pred(),
                        pos: i,
                    };
                    for (j, ht) in head_args.iter().enumerate() {
                        if ht == bt {
                            edges.push(DepEdge {
                                from,
                                to: PredPos {
                                    pred: tgd.head.pred(),
                                    pos: j,
                                },
                                rule: tgd.id,
                                existential: false,
                            });
                        }
                    }
                    // Every universal body position feeds the invention of
                    // the existential value: mark those edges specially.
                    if let Some(ex) = &tgd.existential {
                        for (j, ht) in head_args.iter().enumerate() {
                            if ht == ex {
                                edges.push(DepEdge {
                                    from,
                                    to: PredPos {
                                        pred: tgd.head.pred(),
                                        pos: j,
                                    },
                                    rule: tgd.id,
                                    existential: true,
                                });
                            }
                        }
                    }
                }
            }
        }
        edges.sort_by_key(|e| (e.from.index(), e.to.index(), e.rule.index()));
        edges.dedup();
        DepGraph { edges, rule_shapes }
    }

    /// All edges, sorted by (from, to, rule).
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// All predicate positions (nodes) of the graph.
    pub fn nodes(&self) -> Vec<PredPos> {
        all_nodes().collect()
    }

    /// Predicate-level derivability closure: starting from atoms over
    /// `seed`, the set of predicates the chase can ever produce. A rule's
    /// head predicate joins the set once **all** of its body predicates are
    /// in it; the EGD ρ4 contributes nothing (it only merges values).
    ///
    /// This is an *over*-approximation of the real chase (firing a rule
    /// also needs its join conditions met), so `!closure.contains(p)`
    /// soundly proves that no `p`-atom can appear in the chase.
    pub fn derivable_preds(&self, seed: PredSet) -> PredSet {
        let mut closure = seed;
        loop {
            let mut changed = false;
            for (body, head) in &self.rule_shapes {
                if !closure.contains(*head) && body.iter().all(|p| closure.contains(p)) {
                    closure.insert(*head);
                    changed = true;
                }
            }
            if !changed {
                return closure;
            }
        }
    }

    /// Finds the value-invention cycles: for every existential edge whose
    /// endpoints are mutually reachable, one shortest cycle through it,
    /// returned as a node path `[e.to, …, e.from]` (following `e` from the
    /// last node back to the first closes the cycle).
    ///
    /// For `Σ_FL` this returns the single pump
    /// `data[2] → member[0] → mandatory[1] (→ρ5 data[2])` that makes the
    /// unrestricted chase infinite and forces the Theorem 12 level bound.
    pub fn invention_cycles(&self) -> Vec<Vec<PredPos>> {
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); NODE_COUNT];
        for e in &self.edges {
            let (f, t) = (e.from.index(), e.to.index());
            if !succ[f].contains(&t) {
                succ[f].push(t);
            }
        }
        let index_to_node: Vec<PredPos> = all_nodes().collect();
        let mut cycles = Vec::new();
        for e in self.edges.iter().filter(|e| e.existential) {
            // BFS from e.to back to e.from; appending edge e closes a cycle.
            let (start, goal) = (e.to.index(), e.from.index());
            let mut prev = [usize::MAX; NODE_COUNT];
            let mut queue = std::collections::VecDeque::from([start]);
            prev[start] = start;
            while let Some(n) = queue.pop_front() {
                if n == goal {
                    break;
                }
                for &m in &succ[n] {
                    if prev[m] == usize::MAX {
                        prev[m] = n;
                        queue.push_back(m);
                    }
                }
            }
            if prev[goal] == usize::MAX {
                continue; // existential edge not on any cycle
            }
            let mut path = vec![goal];
            let mut n = goal;
            while n != start {
                n = prev[n];
                path.push(n);
            }
            path.reverse();
            let path: Vec<PredPos> = path.into_iter().map(|i| index_to_node[i]).collect();
            if !cycles.contains(&path) {
                cycles.push(path);
            }
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(pred: Pred, pos: usize) -> PredPos {
        PredPos { pred, pos }
    }

    #[test]
    fn node_count_matches_arities() {
        let g = DepGraph::sigma_fl();
        assert_eq!(g.nodes().len(), NODE_COUNT);
        assert_eq!(
            NODE_COUNT,
            Pred::ALL.iter().map(|p| p.arity()).sum::<usize>()
        );
    }

    #[test]
    fn rho1_edges_present() {
        // ρ1: member(V,T) :- type(O,A,T), data(O,A,V): data[2] → member[0],
        // type[2] → member[1].
        let g = DepGraph::sigma_fl();
        assert!(g.edges().iter().any(|e| e.rule == RuleId::R1
            && e.from == pp(Pred::Data, 2)
            && e.to == pp(Pred::Member, 0)
            && !e.existential));
        assert!(g.edges().iter().any(|e| e.rule == RuleId::R1
            && e.from == pp(Pred::Type, 2)
            && e.to == pp(Pred::Member, 1)));
    }

    #[test]
    fn only_rho5_edges_are_existential() {
        let g = DepGraph::sigma_fl();
        for e in g.edges() {
            assert_eq!(
                e.existential,
                e.rule == RuleId::R5 && e.to == pp(Pred::Data, 2),
                "{e:?}"
            );
        }
        assert!(g.edges().iter().any(|e| e.existential));
    }

    #[test]
    fn egd_induces_no_edges() {
        assert!(DepGraph::sigma_fl()
            .edges()
            .iter()
            .all(|e| e.rule != RuleId::R4));
    }

    #[test]
    fn derivability_from_mandatory_reaches_member() {
        // mandatory →ρ5 data; with nothing else, ρ1 needs type too, so
        // member is NOT derivable from mandatory alone.
        let g = DepGraph::sigma_fl();
        let c = g.derivable_preds(PredSet::from_iter([Pred::Mandatory]));
        assert!(c.contains(Pred::Data));
        assert!(!c.contains(Pred::Member));
        // Adding type closes the ρ5→ρ1 pump: member becomes derivable,
        // and via ρ10 the pump feeds itself.
        let c = g.derivable_preds(PredSet::from_iter([Pred::Mandatory, Pred::Type]));
        assert!(c.contains(Pred::Member));
    }

    #[test]
    fn derivability_is_monotone_and_idempotent() {
        let g = DepGraph::sigma_fl();
        let small = g.derivable_preds(PredSet::from_iter([Pred::Sub]));
        let big = g.derivable_preds(PredSet::from_iter([Pred::Sub, Pred::Member]));
        for p in small.iter() {
            assert!(big.contains(p));
        }
        assert_eq!(g.derivable_preds(small), small);
    }

    #[test]
    fn sub_alone_derives_nothing_new() {
        let g = DepGraph::sigma_fl();
        let c = g.derivable_preds(PredSet::from_iter([Pred::Sub]));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invention_cycle_is_the_mandatory_pump() {
        let cycles = DepGraph::sigma_fl().invention_cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        let cycle = &cycles[0];
        // data[2] → member[0] → mandatory[1], closed by ρ5's existential
        // edge mandatory[1] → data[2].
        assert_eq!(
            cycle.as_slice(),
            &[
                pp(Pred::Data, 2),
                pp(Pred::Member, 0),
                pp(Pred::Mandatory, 1)
            ]
        );
    }

    #[test]
    fn predset_basics() {
        let mut s = PredSet::EMPTY;
        assert!(s.is_empty());
        assert!(s.insert(Pred::Data));
        assert!(!s.insert(Pred::Data));
        assert!(s.contains(Pred::Data));
        assert_eq!(s.len(), 1);
        assert_eq!(s.to_string(), "{data}");
    }

    #[test]
    fn predpos_display() {
        assert_eq!(pp(Pred::Data, 2).to_string(), "data[2]");
    }
}
