//! The rule set `Σ_FL` — the low-level encoding of F-logic Lite semantics
//! (rules ρ1–ρ12 of Section 2 of the paper), as structured data.

use std::fmt;
use std::sync::LazyLock;

use flogic_term::Term;

use crate::Atom;

/// Number of rules in `Σ_FL`.
pub const SIGMA_RULE_COUNT: usize = 12;

/// Identifier of a rule: one of `Σ_FL`'s ρ1 … ρ12, or the `i`-th rule of
/// a user-supplied set (see `RuleSet`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[allow(missing_docs)] // the R1..R12 variants are the paper's ρ1..ρ12, documented as a group
pub enum RuleId {
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    /// The `i`-th rule (0-based) of a user-supplied rule set. Indices are
    /// assigned in file order by the `.sigma` parser.
    Custom(u16),
}

impl RuleId {
    /// All rule ids in order ρ1 … ρ12.
    pub const ALL: [RuleId; SIGMA_RULE_COUNT] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
        RuleId::R8,
        RuleId::R9,
        RuleId::R10,
        RuleId::R11,
        RuleId::R12,
    ];

    /// Dense index: ρ1 ↦ 0 … ρ12 ↦ 11, `Custom(i)` ↦ `i`.
    pub const fn index(self) -> usize {
        match self {
            RuleId::R1 => 0,
            RuleId::R2 => 1,
            RuleId::R3 => 2,
            RuleId::R4 => 3,
            RuleId::R5 => 4,
            RuleId::R6 => 5,
            RuleId::R7 => 6,
            RuleId::R8 => 7,
            RuleId::R9 => 8,
            RuleId::R10 => 9,
            RuleId::R11 => 10,
            RuleId::R12 => 11,
            RuleId::Custom(i) => i as usize,
        }
    }

    /// One-line description, matching the paper's annotations.
    pub const fn description(self) -> &'static str {
        match self {
            RuleId::R1 => "type correctness",
            RuleId::R2 => "subclass transitivity",
            RuleId::R3 => "membership property",
            RuleId::R4 => "functional attribute property (EGD)",
            RuleId::R5 => "mandatory attributes have a value (existential TGD)",
            RuleId::R6 => "inheritance of types from classes to members",
            RuleId::R7 => "inheritance of types from classes to subclasses",
            RuleId::R8 => "supertyping",
            RuleId::R9 => "inheritance of mandatory attributes to subclasses",
            RuleId::R10 => "inheritance of mandatory attributes to members",
            RuleId::R11 => "inheritance of functional property to subclasses",
            RuleId::R12 => "inheritance of functional property to members",
            RuleId::Custom(_) => "user-supplied dependency",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleId::Custom(i) => write!(f, "r{}", i + 1),
            _ => write!(f, "rho{}", self.index() + 1),
        }
    }
}

/// A tuple-generating dependency of `Σ_FL`.
///
/// `body → head`, where `existential` (if set) is a head variable that does
/// not occur in the body — only ρ5 has one. Rule variables use reserved
/// names starting with `#` so they can never clash with user variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tgd {
    /// Which ρ this is.
    pub id: RuleId,
    /// Body atoms (1–2 atoms for the `Σ_FL` TGDs).
    pub body: Vec<Atom>,
    /// Head atom.
    pub head: Atom,
    /// The existentially quantified head variable, if any (ρ5 only).
    pub existential: Option<Term>,
}

/// An equality-generating dependency of `Σ_FL` (only ρ4).
///
/// `body → left = right`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Egd {
    /// Which ρ this is.
    pub id: RuleId,
    /// Body atoms.
    pub body: Vec<Atom>,
    /// Left-hand side of the equated pair (a body variable).
    pub left: Term,
    /// Right-hand side of the equated pair (a body variable).
    pub right: Term,
}

/// A rule of `Σ_FL`: either a TGD or the EGD ρ4.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SigmaRule {
    /// A tuple-generating dependency.
    Tgd(Tgd),
    /// The equality-generating dependency ρ4.
    Egd(Egd),
}

impl SigmaRule {
    /// The rule id.
    pub fn id(&self) -> RuleId {
        match self {
            SigmaRule::Tgd(t) => t.id,
            SigmaRule::Egd(e) => e.id,
        }
    }

    /// The body atoms.
    pub fn body(&self) -> &[Atom] {
        match self {
            SigmaRule::Tgd(t) => &t.body,
            SigmaRule::Egd(e) => &e.body,
        }
    }

    /// True for the plain-Datalog TGDs (everything except ρ4 and ρ5).
    pub fn is_datalog(&self) -> bool {
        match self {
            SigmaRule::Tgd(t) => t.existential.is_none(),
            SigmaRule::Egd(_) => false,
        }
    }
}

impl fmt::Display for SigmaRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigmaRule::Tgd(t) => {
                write!(f, "{} :- ", t.head)?;
                for (i, a) in t.body.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ".  [{}]", t.id)
            }
            SigmaRule::Egd(e) => {
                write!(f, "{} = {} :- ", e.left, e.right)?;
                for (i, a) in e.body.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ".  [{}]", e.id)
            }
        }
    }
}

fn rv(name: &str) -> Term {
    // Reserved rule-variable namespace: user identifiers can never start
    // with '#', so rule variables cannot capture query variables.
    Term::var(&format!("#{name}"))
}

static SIGMA: LazyLock<[SigmaRule; SIGMA_RULE_COUNT]> = LazyLock::new(|| {
    let (o, a, v, w, t, t1, c, c1, c3) = (
        rv("O"),
        rv("A"),
        rv("V"),
        rv("W"),
        rv("T"),
        rv("T1"),
        rv("C"),
        rv("C1"),
        rv("C3"),
    );
    [
        // ρ1: member(V,T) :- type(O,A,T), data(O,A,V).
        SigmaRule::Tgd(Tgd {
            id: RuleId::R1,
            body: vec![Atom::typ(o, a, t), Atom::data(o, a, v)],
            head: Atom::member(v, t),
            existential: None,
        }),
        // ρ2: sub(C1,C2) :- sub(C1,C3), sub(C3,C2).   (C2 named #C here)
        SigmaRule::Tgd(Tgd {
            id: RuleId::R2,
            body: vec![Atom::sub(c1, c3), Atom::sub(c3, c)],
            head: Atom::sub(c1, c),
            existential: None,
        }),
        // ρ3: member(O,C1) :- member(O,C), sub(C,C1).
        SigmaRule::Tgd(Tgd {
            id: RuleId::R3,
            body: vec![Atom::member(o, c), Atom::sub(c, c1)],
            head: Atom::member(o, c1),
            existential: None,
        }),
        // ρ4: V = W :- data(O,A,V), data(O,A,W), funct(A,O).
        SigmaRule::Egd(Egd {
            id: RuleId::R4,
            body: vec![Atom::data(o, a, v), Atom::data(o, a, w), Atom::funct(a, o)],
            left: v,
            right: w,
        }),
        // ρ5: ∃V data(O,A,V) :- mandatory(A,O).
        SigmaRule::Tgd(Tgd {
            id: RuleId::R5,
            body: vec![Atom::mandatory(a, o)],
            head: Atom::data(o, a, v),
            existential: Some(v),
        }),
        // ρ6: type(O,A,T) :- member(O,C), type(C,A,T).
        SigmaRule::Tgd(Tgd {
            id: RuleId::R6,
            body: vec![Atom::member(o, c), Atom::typ(c, a, t)],
            head: Atom::typ(o, a, t),
            existential: None,
        }),
        // ρ7: type(C,A,T) :- sub(C,C1), type(C1,A,T).
        SigmaRule::Tgd(Tgd {
            id: RuleId::R7,
            body: vec![Atom::sub(c, c1), Atom::typ(c1, a, t)],
            head: Atom::typ(c, a, t),
            existential: None,
        }),
        // ρ8: type(C,A,T) :- type(C,A,T1), sub(T1,T).
        SigmaRule::Tgd(Tgd {
            id: RuleId::R8,
            body: vec![Atom::typ(c, a, t1), Atom::sub(t1, t)],
            head: Atom::typ(c, a, t),
            existential: None,
        }),
        // ρ9: mandatory(A,C) :- sub(C,C1), mandatory(A,C1).
        SigmaRule::Tgd(Tgd {
            id: RuleId::R9,
            body: vec![Atom::sub(c, c1), Atom::mandatory(a, c1)],
            head: Atom::mandatory(a, c),
            existential: None,
        }),
        // ρ10: mandatory(A,O) :- member(O,C), mandatory(A,C).
        SigmaRule::Tgd(Tgd {
            id: RuleId::R10,
            body: vec![Atom::member(o, c), Atom::mandatory(a, c)],
            head: Atom::mandatory(a, o),
            existential: None,
        }),
        // ρ11: funct(A,C) :- sub(C,C1), funct(A,C1).
        SigmaRule::Tgd(Tgd {
            id: RuleId::R11,
            body: vec![Atom::sub(c, c1), Atom::funct(a, c1)],
            head: Atom::funct(a, c),
            existential: None,
        }),
        // ρ12: funct(A,O) :- member(O,C), funct(A,C).
        SigmaRule::Tgd(Tgd {
            id: RuleId::R12,
            body: vec![Atom::member(o, c), Atom::funct(a, c)],
            head: Atom::funct(a, o),
            existential: None,
        }),
    ]
});

/// The twelve rules of `Σ_FL`, in paper order ρ1 … ρ12.
pub fn sigma_fl() -> &'static [SigmaRule; SIGMA_RULE_COUNT] {
    &SIGMA
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pred;

    #[test]
    fn twelve_rules_in_order() {
        let rules = sigma_fl();
        assert_eq!(rules.len(), 12);
        for (i, r) in rules.iter().enumerate() {
            assert_eq!(r.id().index(), i);
        }
    }

    #[test]
    fn rule_classification_matches_the_paper() {
        let rules = sigma_fl();
        // Ten Datalog rules, one EGD (ρ4), one existential TGD (ρ5).
        let datalog = rules.iter().filter(|r| r.is_datalog()).count();
        assert_eq!(datalog, 10);
        assert!(matches!(&rules[3], SigmaRule::Egd(e) if e.id == RuleId::R4));
        assert!(
            matches!(&rules[4], SigmaRule::Tgd(t) if t.id == RuleId::R5 && t.existential.is_some())
        );
    }

    #[test]
    fn rho5_existential_not_in_body() {
        let SigmaRule::Tgd(t) = &sigma_fl()[4] else {
            panic!("rho5 is a TGD")
        };
        let ex = t.existential.unwrap();
        assert!(t.body.iter().all(|a| a.vars().all(|v| v != ex)));
        assert!(t.head.vars().any(|v| v == ex));
    }

    #[test]
    fn rule_variables_are_reserved() {
        for rule in sigma_fl() {
            for atom in rule.body() {
                for v in atom.vars() {
                    let Term::Var(s) = v else { unreachable!() };
                    assert!(s.as_str().starts_with('#'), "rule var {v} not reserved");
                }
            }
        }
    }

    #[test]
    fn egd_sides_occur_in_body() {
        let SigmaRule::Egd(e) = &sigma_fl()[3] else {
            panic!("rho4 is the EGD")
        };
        let body_vars: Vec<Term> = e
            .body
            .iter()
            .flat_map(super::super::atom::Atom::vars)
            .collect();
        assert!(body_vars.contains(&e.left));
        assert!(body_vars.contains(&e.right));
    }

    #[test]
    fn rho1_shape() {
        let SigmaRule::Tgd(t) = &sigma_fl()[0] else {
            panic!()
        };
        assert_eq!(t.head.pred(), Pred::Member);
        assert_eq!(t.body[0].pred(), Pred::Type);
        assert_eq!(t.body[1].pred(), Pred::Data);
        // Head: member(V, T) where V is data's value and T is type's type.
        assert_eq!(t.head.arg(0), t.body[1].arg(2));
        assert_eq!(t.head.arg(1), t.body[0].arg(2));
    }

    #[test]
    fn display_renders_rules() {
        let s = sigma_fl()[0].to_string();
        assert!(s.contains("member"), "{s}");
        assert!(s.contains("[rho1]"), "{s}");
        let s4 = sigma_fl()[3].to_string();
        assert!(s4.contains('='), "{s4}");
    }

    #[test]
    fn descriptions_exist() {
        for id in RuleId::ALL {
            assert!(!id.description().is_empty());
        }
        assert_eq!(RuleId::R4.to_string(), "rho4");
    }
}
