//! The six predicates of the `P_FL` encoding.

use std::fmt;

/// A predicate of the `P_FL` schema (Section 2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Pred {
    /// `member(O, C)` — object `O` is a member of class `C` (`O : C`).
    Member,
    /// `sub(C1, C2)` — class `C1` is a subclass of `C2` (`C1 :: C2`).
    Sub,
    /// `data(O, A, V)` — attribute `A` has value `V` on object `O`
    /// (`O[A -> V]`).
    Data,
    /// `type(O, A, T)` — attribute `A` has type `T` for object `O`
    /// (`O[A *=> T]`).
    Type,
    /// `mandatory(A, O)` — attribute `A` is mandatory on `O`
    /// (`O[A {1:*} *=> _]`).
    Mandatory,
    /// `funct(A, O)` — attribute `A` is functional (at most one value) on
    /// `O` (`O[A {0:1} *=> _]`).
    Funct,
}

impl Pred {
    /// All predicates, in a fixed canonical order.
    pub const ALL: [Pred; 6] = [
        Pred::Member,
        Pred::Sub,
        Pred::Data,
        Pred::Type,
        Pred::Mandatory,
        Pred::Funct,
    ];

    /// The arity of the predicate (2 or 3).
    pub const fn arity(self) -> usize {
        match self {
            Pred::Member | Pred::Sub | Pred::Mandatory | Pred::Funct => 2,
            Pred::Data | Pred::Type => 3,
        }
    }

    /// The lowercase name used in the paper and in the concrete syntax.
    pub const fn name(self) -> &'static str {
        match self {
            Pred::Member => "member",
            Pred::Sub => "sub",
            Pred::Data => "data",
            Pred::Type => "type",
            Pred::Mandatory => "mandatory",
            Pred::Funct => "funct",
        }
    }

    /// Parses a predicate name (as used in the low-level syntax).
    pub fn from_name(name: &str) -> Option<Pred> {
        Some(match name {
            "member" => Pred::Member,
            "sub" => Pred::Sub,
            "data" => Pred::Data,
            "type" => Pred::Type,
            "mandatory" => Pred::Mandatory,
            "funct" => Pred::Funct,
            _ => return None,
        })
    }

    /// A dense index in `0..6`, usable for per-predicate side tables.
    pub const fn index(self) -> usize {
        match self {
            Pred::Member => 0,
            Pred::Sub => 1,
            Pred::Data => 2,
            Pred::Type => 3,
            Pred::Mandatory => 4,
            Pred::Funct => 5,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities_match_the_paper() {
        assert_eq!(Pred::Member.arity(), 2);
        assert_eq!(Pred::Sub.arity(), 2);
        assert_eq!(Pred::Data.arity(), 3);
        assert_eq!(Pred::Type.arity(), 3);
        assert_eq!(Pred::Mandatory.arity(), 2);
        assert_eq!(Pred::Funct.arity(), 2);
    }

    #[test]
    fn name_round_trips() {
        for p in Pred::ALL {
            assert_eq!(Pred::from_name(p.name()), Some(p));
        }
        assert_eq!(Pred::from_name("nope"), None);
    }

    #[test]
    fn index_is_dense_and_consistent_with_all() {
        for (i, p) in Pred::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
