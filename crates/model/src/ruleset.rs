//! Rule sets: `Σ_FL` or a user-supplied collection of TGDs/EGDs over the
//! fixed `P_FL` schema.
//!
//! A [`RuleSet`] is the unit the chase engine and the containment
//! procedure are parameterized by. The built-in instance
//! ([`RuleSet::sigma_fl`]) wraps the paper's twelve rules; user-supplied
//! sets come from `.sigma` files parsed by `flogic-syntax` and are gated
//! by the Σ-admission analyzer in `flogic-analysis` before anything runs.
//!
//! Two derived properties matter downstream:
//!
//! * the **fingerprint** — a 64-bit hash of the rules' canonical form
//!   (invariant under variable renaming, sensitive to everything else) —
//!   is folded into decision-cache keys so verdicts under one Σ can never
//!   be replayed under another;
//! * **`is_sigma_fl`** — structural equality with the built-in set, again
//!   up to variable renaming — routes a set onto the specialized `Σ_FL`
//!   code paths, which keeps a `.sigma` copy of the built-in rules
//!   bit-identical with the default.

use std::sync::{Arc, LazyLock};

use flogic_term::Term;

use crate::sigma::{sigma_fl, Egd, SigmaRule, Tgd};
use crate::Atom;

/// A named set of TGDs/EGDs over the `P_FL` schema (see module docs).
#[derive(Clone, Debug)]
pub struct RuleSet {
    name: String,
    rules: Vec<SigmaRule>,
    fingerprint: u64,
    builtin: bool,
}

static SIGMA_FL_SET: LazyLock<Arc<RuleSet>> =
    LazyLock::new(|| Arc::new(RuleSet::new("sigma_fl", sigma_fl().to_vec())));

static SIGMA_FL_CANON: LazyLock<Vec<String>> =
    LazyLock::new(|| sigma_fl().iter().map(canon_rule).collect());

impl RuleSet {
    /// Wraps `rules` under `name`, computing the fingerprint and the
    /// `Σ_FL` structural-equality flag.
    pub fn new(name: impl Into<String>, rules: Vec<SigmaRule>) -> RuleSet {
        let canon: Vec<String> = rules.iter().map(canon_rule).collect();
        let mut h = Fnv1a::new();
        for c in &canon {
            h.write(c.as_bytes());
            h.write(b"\n");
        }
        let builtin = canon == *SIGMA_FL_CANON;
        RuleSet {
            name: name.into(),
            rules,
            fingerprint: h.finish(),
            builtin,
        }
    }

    /// The built-in `Σ_FL` instance (built once, shared).
    pub fn sigma_fl() -> &'static Arc<RuleSet> {
        &SIGMA_FL_SET
    }

    /// The set's name (a file path for parsed sets, `"sigma_fl"` for the
    /// built-in).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rules, in declaration order.
    pub fn rules(&self) -> &[SigmaRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the set has no rules (legal: the chase is then the
    /// identity and containment degenerates to classical containment).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// A 64-bit hash of the canonical form: invariant under variable
    /// renaming, sensitive to rule order, shapes and constants. Folded
    /// into decision-cache keys so verdicts under different rule sets can
    /// never collide.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// True when this set is structurally `Σ_FL` (same rules in the same
    /// order, up to variable renaming). Such sets are routed onto the
    /// specialized built-in code paths, which makes a parsed
    /// `sigma_fl.sigma` behave bit-identically to the default.
    pub fn is_sigma_fl(&self) -> bool {
        self.builtin
    }

    /// All TGDs, in declaration order.
    pub fn tgds(&self) -> Vec<&Tgd> {
        self.rules
            .iter()
            .filter_map(|r| match r {
                SigmaRule::Tgd(t) => Some(t),
                SigmaRule::Egd(_) => None,
            })
            .collect()
    }

    /// The TGDs without an existential head variable (the chase⁻ rules of
    /// this set), in declaration order.
    pub fn datalog_tgds(&self) -> Vec<&Tgd> {
        self.rules
            .iter()
            .filter_map(|r| match r {
                SigmaRule::Tgd(t) if t.existential.is_none() => Some(t),
                _ => None,
            })
            .collect()
    }

    /// All EGDs, in declaration order.
    pub fn egds(&self) -> Vec<&Egd> {
        self.rules
            .iter()
            .filter_map(|r| match r {
                SigmaRule::Egd(e) => Some(e),
                SigmaRule::Tgd(_) => None,
            })
            .collect()
    }
}

/// Canonical rendering of one rule, ignoring its [`crate::RuleId`] and
/// variable names: variables are numbered by first occurrence scanning
/// the body left to right, then the head (resp. the equated pair).
fn canon_rule(rule: &SigmaRule) -> String {
    let mut names: Vec<Term> = Vec::new();
    let mut out = String::new();
    match rule {
        SigmaRule::Tgd(t) => {
            out.push_str("T ");
            for a in &t.body {
                canon_atom(a, &mut names, &mut out);
            }
            out.push_str("=> ");
            canon_atom(&t.head, &mut names, &mut out);
        }
        SigmaRule::Egd(e) => {
            out.push_str("E ");
            for a in &e.body {
                canon_atom(a, &mut names, &mut out);
            }
            out.push_str("=> ");
            canon_term(&e.left, &mut names, &mut out);
            out.push('=');
            canon_term(&e.right, &mut names, &mut out);
        }
    }
    out
}

fn canon_atom(atom: &Atom, names: &mut Vec<Term>, out: &mut String) {
    out.push_str(atom.pred().name());
    out.push('(');
    for (i, t) in atom.args().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        canon_term(t, names, out);
    }
    out.push_str(") ");
}

fn canon_term(t: &Term, names: &mut Vec<Term>, out: &mut String) {
    match t {
        Term::Var(_) => {
            let i = names.iter().position(|n| n == t).unwrap_or_else(|| {
                names.push(*t);
                names.len() - 1
            });
            out.push('?');
            out.push_str(&i.to_string());
        }
        // Constants (and nulls, which cannot appear in well-formed rules
        // but keep the rendering total) by value.
        other => out.push_str(&other.to_string()),
    }
}

/// Vendored FNV-1a 64 (the dependency-free classic).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuleId;

    #[test]
    fn builtin_set_is_sigma_fl() {
        let s = RuleSet::sigma_fl();
        assert!(s.is_sigma_fl());
        assert_eq!(s.len(), 12);
        assert_eq!(s.tgds().len(), 11);
        assert_eq!(s.datalog_tgds().len(), 10);
        assert_eq!(s.egds().len(), 1);
        assert_eq!(s.name(), "sigma_fl");
    }

    #[test]
    fn renamed_copy_is_structurally_sigma_fl() {
        // Rebuild Σ_FL with every variable renamed: still recognised, same
        // fingerprint.
        let renamed: Vec<SigmaRule> = sigma_fl()
            .iter()
            .map(|r| rename_rule(r, "fresh_"))
            .collect();
        let set = RuleSet::new("copy", renamed);
        assert!(set.is_sigma_fl());
        assert_eq!(set.fingerprint(), RuleSet::sigma_fl().fingerprint());
    }

    #[test]
    fn subset_is_not_sigma_fl_and_fingerprints_differ() {
        let subset = RuleSet::new("subset", sigma_fl()[..11].to_vec());
        assert!(!subset.is_sigma_fl());
        assert_ne!(subset.fingerprint(), RuleSet::sigma_fl().fingerprint());
    }

    #[test]
    fn variable_sharing_is_part_of_the_canonical_form() {
        let x = Term::var("#X");
        let y = Term::var("#Y");
        let shared = SigmaRule::Tgd(Tgd {
            id: RuleId::Custom(0),
            body: vec![Atom::sub(x, x)],
            head: Atom::sub(x, x),
            existential: None,
        });
        let distinct = SigmaRule::Tgd(Tgd {
            id: RuleId::Custom(0),
            body: vec![Atom::sub(x, y)],
            head: Atom::sub(x, y),
            existential: None,
        });
        assert_ne!(
            RuleSet::new("a", vec![shared]).fingerprint(),
            RuleSet::new("b", vec![distinct]).fingerprint()
        );
    }

    #[test]
    fn empty_set_is_legal() {
        let s = RuleSet::new("empty", Vec::new());
        assert!(s.is_empty());
        assert!(!s.is_sigma_fl());
    }

    fn rename_rule(r: &SigmaRule, prefix: &str) -> SigmaRule {
        let ren = |t: &Term| match t {
            Term::Var(v) => Term::var(&format!("#{prefix}{}", v.as_str())),
            other => *other,
        };
        let ren_atom = |a: &Atom| {
            let args: Vec<Term> = a.args().iter().map(ren).collect();
            Atom::new(a.pred(), &args).expect("same arity")
        };
        match r {
            SigmaRule::Tgd(t) => SigmaRule::Tgd(Tgd {
                id: t.id,
                body: t.body.iter().map(ren_atom).collect(),
                head: ren_atom(&t.head),
                existential: t.existential.as_ref().map(ren),
            }),
            SigmaRule::Egd(e) => SigmaRule::Egd(Egd {
                id: e.id,
                body: e.body.iter().map(ren_atom).collect(),
                left: ren(&e.left),
                right: ren(&e.right),
            }),
        }
    }
}
