//! Ground databases over the `P_FL` schema.

use std::collections::HashSet;
use std::fmt;

use flogic_term::{Subst, Term};

use crate::{sigma_fl, Atom, ModelError, Pred, RuleId, SigmaRule};

/// A violation of a `Σ_FL` rule found in a database.
#[derive(Clone, Debug)]
pub struct SigmaViolation {
    /// The violated rule.
    pub rule: RuleId,
    /// The binding of the rule's body variables that witnesses the
    /// violation.
    pub binding: Subst,
}

impl fmt::Display for SigmaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated under {}", self.rule, self.binding)
    }
}

/// A finite database over `P_FL`: a set of *ground* atoms (arguments are
/// constants or labelled nulls, never variables).
///
/// The paper considers *only* databases that satisfy `Σ_FL`
/// (Section 2: "We shall consider only the databases that satisfy the above
/// set of rules"); [`Database::find_violation`] checks that property
/// directly. Databases that are not yet closed can be saturated with the
/// `flogic-datalog` crate.
#[derive(Clone, Default)]
pub struct Database {
    facts: HashSet<Atom>,
    by_pred: [Vec<Atom>; 6],
    /// Facts per `(predicate, argument position, term)` — the selective
    /// index used by [`Database::match_body`]; keeps conjunctive-query
    /// evaluation from degenerating into full scans per body atom.
    by_pos: std::collections::HashMap<(Pred, u8, Term), Vec<Atom>>,
}

impl Database {
    /// The empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Builds a database from an iterator of ground atoms.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Result<Self, ModelError> {
        let mut db = Database::new();
        for a in atoms {
            db.insert(a)?;
        }
        Ok(db)
    }

    /// Inserts a ground atom. Returns `Ok(true)` if the atom was new,
    /// `Ok(false)` if already present, and an error if the atom is not
    /// ground.
    pub fn insert(&mut self, atom: Atom) -> Result<bool, ModelError> {
        if !atom.is_ground() {
            return Err(ModelError::NonGroundFact {
                atom: atom.to_string(),
            });
        }
        if self.facts.insert(atom) {
            self.by_pred[atom.pred().index()].push(atom);
            for (pos, &term) in atom.args().iter().enumerate() {
                self.by_pos
                    .entry((atom.pred(), pos as u8, term))
                    .or_default()
                    .push(atom);
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Facts of `pred` whose argument at `pos` equals `term` (indexed).
    pub fn facts_with(&self, pred: Pred, pos: usize, term: Term) -> &[Atom] {
        self.by_pos
            .get(&(pred, pos as u8, term))
            .map_or(&[], std::vec::Vec::as_slice)
    }

    /// Membership test.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.facts.contains(atom)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True if the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterates over all facts in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Atom> {
        self.facts.iter()
    }

    /// The facts of a single predicate, in insertion order.
    pub fn pred_facts(&self, pred: Pred) -> &[Atom] {
        &self.by_pred[pred.index()]
    }

    /// Enumerates homomorphisms from `pattern` (atoms that may contain
    /// variables) into the facts of this database, extending the initial
    /// binding `s`. Calls `found` for each complete binding; if `found`
    /// returns `true`, enumeration stops early and `match_body` returns
    /// `true`.
    pub fn match_body(
        &self,
        pattern: &[Atom],
        s: &mut Subst,
        found: &mut dyn FnMut(&Subst) -> bool,
    ) -> bool {
        match pattern.split_first() {
            None => found(s),
            Some((first, rest)) => {
                // Candidate retrieval: the most selective (position, term)
                // index available. Bound pattern variables have ground
                // images (facts are ground), so applying the binding is
                // safe; unbound positions are skipped. Falls back to the
                // per-predicate list when nothing is bound.
                let mut best: Option<&[Atom]> = None;
                for (pos, &arg) in first.args().iter().enumerate() {
                    let effective = s.apply(arg);
                    if effective.is_var() {
                        continue;
                    }
                    let list = self.facts_with(first.pred(), pos, effective);
                    if best.map_or(true, |b| list.len() < b.len()) {
                        best = Some(list);
                    }
                }
                let candidates = best.unwrap_or_else(|| self.pred_facts(first.pred()));
                for fact in candidates {
                    if let Some(ext) = unify_into(first, fact, s) {
                        let mut s2 = ext;
                        if self.match_body(rest, &mut s2, found) {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// Returns a violation of some rule of `Σ_FL`, or `None` if the
    /// database satisfies all twelve rules.
    pub fn find_violation(&self) -> Option<SigmaViolation> {
        for rule in sigma_fl() {
            let mut witness: Option<Subst> = None;
            let mut s = Subst::new();
            self.match_body(rule.body(), &mut s, &mut |binding| {
                let violated = match rule {
                    SigmaRule::Egd(e) => binding.apply(e.left) != binding.apply(e.right),
                    SigmaRule::Tgd(t) => {
                        let head = t.head.apply(binding);
                        if t.existential.is_none() {
                            // Plain TGD: the instantiated head must be a fact.
                            !self.contains(&head)
                        } else {
                            // ρ5: some extension of the binding must map the
                            // head to a fact (the head still contains the
                            // existential variable).
                            let mut probe = binding.clone();
                            !self.match_body(std::slice::from_ref(&t.head), &mut probe, &mut |_| {
                                true
                            })
                        }
                    }
                };
                if violated {
                    witness = Some(binding.clone());
                }
                violated
            });
            if let Some(binding) = witness {
                return Some(SigmaViolation {
                    rule: rule.id(),
                    binding,
                });
            }
        }
        None
    }

    /// True if the database satisfies every rule of `Σ_FL`.
    pub fn satisfies_sigma(&self) -> bool {
        self.find_violation().is_none()
    }
}

/// Tries to extend `s` so that `pattern.apply(s) == fact`. Returns the
/// extended substitution on success, `None` on clash. Constants must match
/// exactly (Definition 1: a homomorphism fixes constants).
fn unify_into(pattern: &Atom, fact: &Atom, s: &Subst) -> Option<Subst> {
    debug_assert_eq!(pattern.pred(), fact.pred());
    let mut out = s.clone();
    for (p, f) in pattern.args().iter().zip(fact.args()) {
        let p = out.apply(*p);
        if p.is_var() {
            out.bind(p, *f);
        } else if p != *f {
            return None;
        }
    }
    Some(out)
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut atoms: Vec<&Atom> = self.facts.iter().collect();
        atoms.sort();
        f.debug_set().entries(atoms).finish()
    }
}

impl FromIterator<Atom> for Database {
    /// Builds a database, panicking on non-ground atoms. Use
    /// [`Database::from_atoms`] for a fallible version.
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Database::from_atoms(iter).expect("non-ground atom in database literal")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    #[test]
    fn insert_dedups_and_indexes() {
        let mut db = Database::new();
        let a = Atom::member(c("john"), c("student"));
        assert!(db.insert(a).unwrap());
        assert!(!db.insert(a).unwrap());
        assert_eq!(db.len(), 1);
        assert_eq!(db.pred_facts(Pred::Member), &[a]);
        assert!(db.pred_facts(Pred::Sub).is_empty());
    }

    #[test]
    fn insert_rejects_non_ground() {
        let mut db = Database::new();
        let err = db.insert(Atom::member(Term::var("X"), c("c"))).unwrap_err();
        assert!(matches!(err, ModelError::NonGroundFact { .. }));
    }

    #[test]
    fn empty_database_satisfies_sigma() {
        assert!(Database::new().satisfies_sigma());
    }

    #[test]
    fn subclass_transitivity_violation_detected() {
        // sub(a,b), sub(b,c) but no sub(a,c): ρ2 violated.
        let db: Database = [Atom::sub(c("a"), c("b")), Atom::sub(c("b"), c("cc"))]
            .into_iter()
            .collect();
        let v = db.find_violation().unwrap();
        assert_eq!(v.rule, RuleId::R2);
        // Completing the closure fixes it.
        let db: Database = [
            Atom::sub(c("a"), c("b")),
            Atom::sub(c("b"), c("cc")),
            Atom::sub(c("a"), c("cc")),
        ]
        .into_iter()
        .collect();
        assert!(db.satisfies_sigma());
    }

    #[test]
    fn egd_violation_detected() {
        // funct(age, john) with two distinct ages: ρ4 violated.
        let db: Database = [
            Atom::funct(c("age"), c("john")),
            Atom::data(c("john"), c("age"), c("33")),
            Atom::data(c("john"), c("age"), c("34")),
        ]
        .into_iter()
        .collect();
        let v = db.find_violation().unwrap();
        assert_eq!(v.rule, RuleId::R4);
    }

    #[test]
    fn egd_satisfied_with_single_value() {
        let db: Database = [
            Atom::funct(c("age"), c("john")),
            Atom::data(c("john"), c("age"), c("33")),
        ]
        .into_iter()
        .collect();
        assert!(db.satisfies_sigma());
    }

    #[test]
    fn mandatory_violation_detected_and_fixed() {
        let db: Database = [Atom::mandatory(c("name"), c("john"))]
            .into_iter()
            .collect();
        let v = db.find_violation().unwrap();
        assert_eq!(v.rule, RuleId::R5);
        let db: Database = [
            Atom::mandatory(c("name"), c("john")),
            Atom::data(c("john"), c("name"), c("J")),
        ]
        .into_iter()
        .collect();
        assert!(db.satisfies_sigma());
    }

    #[test]
    fn type_correctness_violation_detected() {
        // type(john, age, number) + data(john, age, 33) requires
        // member(33, number)  (ρ1).
        let db: Database = [
            Atom::typ(c("john"), c("age"), c("number")),
            Atom::data(c("john"), c("age"), c("33")),
        ]
        .into_iter()
        .collect();
        let v = db.find_violation().unwrap();
        assert_eq!(v.rule, RuleId::R1);
        let db: Database = [
            Atom::typ(c("john"), c("age"), c("number")),
            Atom::data(c("john"), c("age"), c("33")),
            Atom::member(c("33"), c("number")),
        ]
        .into_iter()
        .collect();
        assert!(db.satisfies_sigma());
    }

    #[test]
    fn match_body_enumerates_all_bindings() {
        let db: Database = [
            Atom::member(c("john"), c("student")),
            Atom::member(c("mary"), c("student")),
        ]
        .into_iter()
        .collect();
        let pattern = [Atom::member(Term::var("X"), c("student"))];
        let mut hits = 0;
        let mut s = Subst::new();
        db.match_body(&pattern, &mut s, &mut |_| {
            hits += 1;
            false
        });
        assert_eq!(hits, 2);
    }

    #[test]
    fn match_body_early_exit() {
        let db: Database = [
            Atom::member(c("john"), c("student")),
            Atom::member(c("mary"), c("student")),
        ]
        .into_iter()
        .collect();
        let pattern = [Atom::member(Term::var("X"), Term::var("Y"))];
        let mut hits = 0;
        let mut s = Subst::new();
        let stopped = db.match_body(&pattern, &mut s, &mut |_| {
            hits += 1;
            true
        });
        assert!(stopped);
        assert_eq!(hits, 1);
    }

    #[test]
    fn match_body_join_on_shared_variable() {
        let db: Database = [
            Atom::member(c("john"), c("student")),
            Atom::sub(c("student"), c("person")),
            Atom::member(c("john"), c("person")),
            Atom::sub(c("person"), c("agent")),
            Atom::member(c("john"), c("agent")),
            Atom::sub(c("student"), c("agent")),
        ]
        .into_iter()
        .collect();
        // member(O, C), sub(C, D): joins on C.
        let pattern = [
            Atom::member(Term::var("O"), Term::var("C")),
            Atom::sub(Term::var("C"), Term::var("D")),
        ];
        let mut results: Vec<(Term, Term)> = vec![];
        let mut s = Subst::new();
        db.match_body(&pattern, &mut s, &mut |b| {
            results.push((b.apply(Term::var("C")), b.apply(Term::var("D"))));
            false
        });
        results.sort();
        results.dedup();
        assert_eq!(results.len(), 3, "{results:?}");
    }
}
