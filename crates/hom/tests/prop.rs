//! Property tests for the homomorphism search: soundness of every witness
//! and completeness against a brute-force reference implementation.
//!
//! Gated behind the off-by-default `fuzz` feature (`cargo test -p
//! flogic-hom --features fuzz`). Inputs are drawn from the vendored
//! [`SplitMix64`] generator so every case is reproducible from its seed.

#![cfg(feature = "fuzz")]

use flogic_hom::{all_homs, count_homs, find_hom, Target};
use flogic_model::{Atom, Pred};
use flogic_term::rng::{Rng, SplitMix64};
use flogic_term::{Subst, Term};

const CASES: u64 = 128;

/// A random atom over a tiny universe (2 predicates, 3 constants,
/// 3 variables) — small enough for the brute-force reference to
/// enumerate all assignments.
fn arb_atom(r: &mut SplitMix64) -> Atom {
    let term = |r: &mut SplitMix64| {
        let i = r.random_range(0..3);
        if r.random_bool(0.5) {
            Term::constant(&format!("c{i}"))
        } else {
            Term::var(&format!("V{i}"))
        }
    };
    let a = term(r);
    let b = term(r);
    if r.random_bool(0.5) {
        Atom::member(a, b)
    } else {
        Atom::sub(a, b)
    }
}

fn arb_atoms(r: &mut SplitMix64, max: usize) -> Vec<Atom> {
    let n = r.random_range(1..max + 1);
    (0..n).map(|_| arb_atom(r)).collect()
}

fn case_rng(seed: u64, salt: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ salt)
}

/// Brute force: try every assignment of source variables to target terms.
fn brute_force_homs(source: &[Atom], target: &[Atom]) -> usize {
    let mut vars: Vec<Term> = source.iter().flat_map(|a| a.vars()).collect();
    vars.sort();
    vars.dedup();
    let mut universe: Vec<Term> = target
        .iter()
        .flat_map(|a| a.args().iter().copied())
        .collect();
    universe.sort();
    universe.dedup();
    if vars.is_empty() {
        return usize::from(source.iter().all(|a| target.contains(a)));
    }
    let mut count = 0usize;
    let n = universe.len();
    let total = n.checked_pow(vars.len() as u32).expect("small universe");
    for mut idx in 0..total {
        let mut s = Subst::new();
        for &v in &vars {
            s.bind_strict(v, universe[idx % n]);
            idx /= n;
        }
        if source.iter().all(|a| target.contains(&a.apply(&s))) {
            count += 1;
        }
    }
    count
}

/// Every homomorphism the search returns actually maps each source
/// atom into the target set (soundness).
#[test]
fn witnesses_are_sound() {
    for seed in 0..CASES {
        let mut r = case_rng(seed, 0x01);
        let source = arb_atoms(&mut r, 4);
        let target = arb_atoms(&mut r, 5);
        let t = Target::new(target.clone());
        if let Some(hom) = find_hom(&source, &[], &t, &[]) {
            for a in &source {
                let image = a.apply(&hom);
                assert!(
                    target.contains(&image),
                    "seed {seed}: image {image} not in target"
                );
            }
        }
    }
}

/// The search finds a homomorphism iff the brute-force enumeration
/// does (completeness), and counts match exactly.
#[test]
fn search_matches_brute_force() {
    for seed in 0..CASES {
        let mut r = case_rng(seed, 0x02);
        let source = arb_atoms(&mut r, 3);
        let target = arb_atoms(&mut r, 4);
        let t = Target::new(target.clone());
        let expected = brute_force_homs(&source, &target);
        // Note: brute force counts *assignments of all source vars*, the
        // search counts distinct bindings — identical because the search
        // binds every variable occurring in the source atoms and, with an
        // empty head, only those.
        let vars_in_source: std::collections::BTreeSet<Term> =
            source.iter().flat_map(|a| a.vars()).collect();
        if vars_in_source.is_empty() {
            let found = find_hom(&source, &[], &t, &[]).is_some();
            assert_eq!(found, expected > 0, "seed {seed}");
        } else {
            assert_eq!(count_homs(&source, &[], &t, &[]), expected, "seed {seed}");
        }
    }
}

/// `all_homs` respects its limit and returns distinct bindings.
#[test]
fn all_homs_limit_and_distinctness() {
    for seed in 0..CASES {
        let mut r = case_rng(seed, 0x03);
        let source = arb_atoms(&mut r, 3);
        let target = arb_atoms(&mut r, 4);
        let t = Target::new(target);
        let all = all_homs(&source, &[], &t, &[], usize::MAX);
        let limited = all_homs(&source, &[], &t, &[], 2);
        assert!(limited.len() <= 2, "seed {seed}");
        assert!(limited.len() <= all.len(), "seed {seed}");
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert!(a != b, "seed {seed}: duplicate homomorphism returned");
            }
        }
    }
}

/// The head constraint only ever removes witnesses, and every
/// returned witness satisfies it.
#[test]
fn head_constraint_is_a_filter() {
    for seed in 0..CASES {
        let mut r = case_rng(seed, 0x04);
        let source = arb_atoms(&mut r, 3);
        let target = arb_atoms(&mut r, 4);
        let t = Target::new(target.clone());
        // Pick the first source variable (if any) as a 1-ary head.
        let Some(head_var) = source.iter().flat_map(|a| a.vars()).next() else {
            continue;
        };
        let unconstrained = count_homs(&source, &[], &t, &[]);
        let mut constrained_total = 0usize;
        let mut universe: Vec<Term> = target
            .iter()
            .flat_map(|a| a.args().iter().copied())
            .collect();
        universe.sort();
        universe.dedup();
        for &u in &universe {
            let n = count_homs(&source, &[head_var], &t, &[u]);
            constrained_total += n;
            for hom in all_homs(&source, &[head_var], &t, &[u], usize::MAX) {
                assert_eq!(hom.apply(head_var), u, "seed {seed}");
            }
        }
        // Partition: each unconstrained witness maps head_var to exactly
        // one universe value.
        assert_eq!(constrained_total, unconstrained, "seed {seed}");
    }
}

/// Predicates never cross: a member-atom source cannot map into a
/// sub-only target.
#[test]
fn predicates_respected() {
    for seed in 0..CASES {
        let mut r = case_rng(seed, 0x05);
        let a = arb_atom(&mut r);
        let target = arb_atoms(&mut r, 4);
        let other: Vec<Atom> = target
            .into_iter()
            .filter(|t| t.pred() != a.pred())
            .collect();
        let t = Target::new(other);
        if a.pred() == Pred::Member || a.pred() == Pred::Sub {
            assert!(
                find_hom(std::slice::from_ref(&a), &[], &t, &[]).is_none(),
                "seed {seed}"
            );
        }
    }
}
