//! Property tests for the homomorphism search: soundness of every witness
//! and completeness against a brute-force reference implementation.

use proptest::prelude::*;

use flogic_hom::{all_homs, count_homs, find_hom, Target};
use flogic_model::{Atom, Pred};
use flogic_term::{Subst, Term};

/// A compact strategy for atoms over a tiny universe (2 predicates,
/// 3 constants, 3 variables) — small enough for the brute-force reference
/// to enumerate all assignments.
fn arb_atom() -> impl Strategy<Value = Atom> {
    let term = prop_oneof![
        (0u8..3).prop_map(|i| Term::constant(&format!("c{i}"))),
        (0u8..3).prop_map(|i| Term::var(&format!("V{i}"))),
    ];
    (0u8..2, term.clone(), term).prop_map(|(p, a, b)| match p {
        0 => Atom::member(a, b),
        _ => Atom::sub(a, b),
    })
}

fn arb_atoms(max: usize) -> impl Strategy<Value = Vec<Atom>> {
    prop::collection::vec(arb_atom(), 1..=max)
}

/// Brute force: try every assignment of source variables to target terms.
fn brute_force_homs(source: &[Atom], target: &[Atom]) -> usize {
    let mut vars: Vec<Term> = source.iter().flat_map(|a| a.vars()).collect();
    vars.sort();
    vars.dedup();
    let mut universe: Vec<Term> =
        target.iter().flat_map(|a| a.args().iter().copied()).collect();
    universe.sort();
    universe.dedup();
    if vars.is_empty() {
        return usize::from(source.iter().all(|a| target.contains(a)));
    }
    let mut count = 0usize;
    let n = universe.len();
    let total = n.checked_pow(vars.len() as u32).expect("small universe");
    for mut idx in 0..total {
        let mut s = Subst::new();
        for &v in &vars {
            s.bind_strict(v, universe[idx % n]);
            idx /= n;
        }
        if source.iter().all(|a| target.contains(&a.apply(&s))) {
            count += 1;
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Every homomorphism the search returns actually maps each source
    /// atom into the target set (soundness).
    #[test]
    fn witnesses_are_sound(source in arb_atoms(4), target in arb_atoms(5)) {
        let t = Target::new(target.clone());
        if let Some(hom) = find_hom(&source, &[], &t, &[]) {
            for a in &source {
                let image = a.apply(&hom);
                prop_assert!(target.contains(&image), "image {image} not in target");
            }
        }
    }

    /// The search finds a homomorphism iff the brute-force enumeration
    /// does (completeness), and counts match exactly.
    #[test]
    fn search_matches_brute_force(source in arb_atoms(3), target in arb_atoms(4)) {
        let t = Target::new(target.clone());
        let expected = brute_force_homs(&source, &target);
        // Note: brute force counts *assignments of all source vars*, the
        // search counts distinct bindings — identical because the search
        // binds every variable occurring in the source atoms and, with an
        // empty head, only those.
        let vars_in_source: std::collections::BTreeSet<Term> =
            source.iter().flat_map(|a| a.vars()).collect();
        if vars_in_source.is_empty() {
            let found = find_hom(&source, &[], &t, &[]).is_some();
            prop_assert_eq!(found, expected > 0);
        } else {
            prop_assert_eq!(count_homs(&source, &[], &t, &[]), expected);
        }
    }

    /// `all_homs` respects its limit and returns distinct bindings.
    #[test]
    fn all_homs_limit_and_distinctness(source in arb_atoms(3), target in arb_atoms(4)) {
        let t = Target::new(target.clone());
        let all = all_homs(&source, &[], &t, &[], usize::MAX);
        let limited = all_homs(&source, &[], &t, &[], 2);
        prop_assert!(limited.len() <= 2);
        prop_assert!(limited.len() <= all.len());
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                prop_assert!(a != b, "duplicate homomorphism returned");
            }
        }
    }

    /// The head constraint only ever removes witnesses, and every
    /// returned witness satisfies it.
    #[test]
    fn head_constraint_is_a_filter(source in arb_atoms(3), target in arb_atoms(4)) {
        let t = Target::new(target.clone());
        // Pick the first source variable (if any) as a 1-ary head.
        let Some(head_var) = source.iter().flat_map(|a| a.vars()).next() else {
            return Ok(());
        };
        let unconstrained = count_homs(&source, &[], &t, &[]);
        let mut constrained_total = 0usize;
        let mut universe: Vec<Term> =
            target.iter().flat_map(|a| a.args().iter().copied()).collect();
        universe.sort();
        universe.dedup();
        for &u in &universe {
            let n = count_homs(&source, &[head_var], &t, &[u]);
            constrained_total += n;
            for hom in all_homs(&source, &[head_var], &t, &[u], usize::MAX) {
                prop_assert_eq!(hom.apply(head_var), u);
            }
        }
        // Partition: each unconstrained witness maps head_var to exactly
        // one universe value.
        prop_assert_eq!(constrained_total, unconstrained);
    }

    /// Predicates never cross: a member-atom source cannot map into a
    /// sub-only target.
    #[test]
    fn predicates_respected(a in arb_atom(), target in arb_atoms(4)) {
        let other: Vec<Atom> = target
            .into_iter()
            .filter(|t| t.pred() != a.pred())
            .collect();
        let t = Target::new(other);
        if a.pred() == Pred::Member || a.pred() == Pred::Sub {
            prop_assert!(find_hom(std::slice::from_ref(&a), &[], &t, &[]).is_none());
        }
    }
}
