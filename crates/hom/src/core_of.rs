//! Classic (constraint-free) query minimisation: the core of a conjunctive
//! query.

use flogic_model::ConjunctiveQuery;

use crate::search::find_hom;
use crate::Target;

/// Computes the *core* of `q` under classic (constraint-free) semantics:
/// repeatedly drops a body atom as long as the smaller query is still
/// classically equivalent to the original.
///
/// An atom `c` is redundant iff there is a homomorphism from `body(q)` into
/// `body(q) − {c}` fixing the head — i.e. the smaller query contains the
/// larger one (the converse containment is trivial because the body is a
/// subset). The result is unique up to isomorphism (the core of a CQ).
///
/// For minimisation *under `Σ_FL`* — which can remove more atoms — see
/// `flogic_core::minimize`.
pub fn classic_core(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.clone();
    loop {
        let mut shrunk = None;
        for i in 0..current.body().len() {
            let Some(candidate) = current.without_atom(i) else {
                continue;
            };
            let target = Target::from_query(&candidate);
            if find_hom(current.body(), current.head(), &target, candidate.head()).is_some() {
                shrunk = Some(candidate);
                break;
            }
        }
        match shrunk {
            Some(smaller) => current = smaller,
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_model::Atom;
    use flogic_term::{Symbol, Term};

    fn v(n: &str) -> Term {
        Term::var(n)
    }
    fn c(n: &str) -> Term {
        Term::constant(n)
    }
    fn q(head: Vec<Term>, body: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery::new(Symbol::intern("q"), head, body).unwrap()
    }

    #[test]
    fn duplicate_pattern_collapses() {
        // member(X, C) twice with different variables: one is redundant.
        let query = q(
            vec![v("X")],
            vec![Atom::member(v("X"), v("C")), Atom::member(v("X"), v("D"))],
        );
        let core = classic_core(&query);
        assert_eq!(core.size(), 1);
    }

    #[test]
    fn head_variables_protected() {
        // Both atoms bind head variables; nothing can be dropped.
        let query = q(
            vec![v("C"), v("D")],
            vec![Atom::member(v("X"), v("C")), Atom::member(v("X"), v("D"))],
        );
        let core = classic_core(&query);
        assert_eq!(core.size(), 2);
    }

    #[test]
    fn constants_block_folding() {
        let query = q(
            vec![v("X")],
            vec![
                Atom::member(v("X"), c("student")),
                Atom::member(v("X"), c("person")),
            ],
        );
        let core = classic_core(&query);
        assert_eq!(core.size(), 2, "different constants are not redundant");
    }

    #[test]
    fn chain_folds_onto_generic_atom() {
        // sub(X, Y), sub(Y, Z) with Boolean head: folds to a single atom
        // via Y -> X? No — sub(X,Y),sub(Y,Z) maps into {sub(X,Y)} by
        // X,Y,Z -> X,Y,Y? sub(Y,Z) -> sub(Y,Y) which is not sub(X,Y)
        // unless X=Y. It maps Y->X? sub(X,Y)->sub(X,X)? Not present.
        // So the chain is its own core.
        let query = q(
            vec![],
            vec![Atom::sub(v("X"), v("Y")), Atom::sub(v("Y"), v("Z"))],
        );
        assert_eq!(classic_core(&query).size(), 2);
        // But with a reflexive edge, everything folds onto it.
        let query = q(
            vec![],
            vec![
                Atom::sub(v("W"), v("W")),
                Atom::sub(v("X"), v("Y")),
                Atom::sub(v("Y"), v("Z")),
            ],
        );
        assert_eq!(classic_core(&query).size(), 1);
    }

    #[test]
    fn core_is_idempotent() {
        let query = q(
            vec![v("X")],
            vec![
                Atom::member(v("X"), v("C")),
                Atom::member(v("X"), v("D")),
                Atom::sub(v("C"), v("E")),
                Atom::sub(v("D"), v("F")),
            ],
        );
        let once = classic_core(&query);
        let twice = classic_core(&once);
        assert_eq!(once.size(), twice.size());
        assert!(once.size() <= 2);
    }
}
