//! Backtracking homomorphism search.

use flogic_model::Atom;
use flogic_obs::{ChaseEvent, SpanKind, TraceHandle};
use flogic_term::{Subst, Term};

use crate::Target;

/// Tries to extend `s` so that the image of `pattern` under the extended
/// binding equals `target`. Source constants are fixed (Definition 1);
/// source variables bind to arbitrary target terms.
///
/// The binding is keyed strictly by *source* variables and consulted with
/// [`Subst::get`], never by rewriting the pattern first: the image of a
/// source variable may itself be a variable (chases contain the chased
/// query's variables as values, and query minimisation folds a query into
/// itself), and a rewritten pattern could not tell such an image apart from
/// an unbound source variable — it would be spuriously re-bound instead of
/// compared.
fn unify(pattern: &Atom, target: &Atom, s: &Subst) -> Option<Subst> {
    if pattern.pred() != target.pred() {
        return None;
    }
    let mut out = s.clone();
    for (&p, &t) in pattern.args().iter().zip(target.args()) {
        if p.is_var() {
            match out.get(p) {
                Some(image) => {
                    if image != t {
                        return None;
                    }
                }
                None => out.bind_strict(p, t),
            }
        } else if p != t {
            return None;
        }
    }
    Some(out)
}

/// Seeds a binding from the head constraint: `source_head[i]` must map to
/// `target_head[i]`. Returns `None` when a source constant clashes. The
/// same strict keyed-by-source-variable discipline as [`unify`] applies.
fn head_binding(source_head: &[Term], target_head: &[Term]) -> Option<Subst> {
    debug_assert_eq!(source_head.len(), target_head.len());
    let mut s = Subst::new();
    for (&sh, &th) in source_head.iter().zip(target_head) {
        if sh.is_var() {
            match s.get(sh) {
                Some(image) => {
                    if image != th {
                        return None;
                    }
                }
                None => s.bind_strict(sh, th),
            }
        } else if sh != th {
            return None;
        }
    }
    Some(s)
}

/// Depth-first search with dynamic fewest-candidates-first atom ordering.
/// `found` returning `true` stops the search.
///
/// `trace` is purely observational: it records node expansions, candidate
/// prunes and backtracks, but never influences atom ordering or candidate
/// enumeration (the disabled handle is a single branch per event).
fn search(
    source: &[Atom],
    target: &Target,
    s: Subst,
    remaining: &mut Vec<usize>,
    trace: &TraceHandle,
    found: &mut dyn FnMut(&Subst) -> bool,
) -> bool {
    let Some(best_slot) = (0..remaining.len()).min_by_key(|&slot| {
        let atom = source[remaining[slot]].apply(&s);
        target.candidate_count(&atom)
    }) else {
        return found(&s);
    };
    let atom_idx = remaining.swap_remove(best_slot);
    // Source atoms mapped counting the one being matched right now.
    let depth = (source.len() - remaining.len()) as u32;
    // The applied pattern is used for *index retrieval only* (bound
    // variables with ground images make positions selective); unification
    // always runs against the original atom so that variable images are
    // compared, never re-bound.
    let index_probe = source[atom_idx].apply(&s);
    // Candidate list is cloned because recursion re-borrows the target.
    let candidates: Vec<usize> = target.candidates(&index_probe).to_vec();
    for cand in candidates {
        if let Some(s2) = unify(&source[atom_idx], target.atom_at(cand), &s) {
            trace.emit(|| ChaseEvent::HomExpand { depth });
            if search(source, target, s2, remaining, trace, found) {
                remaining.push(atom_idx); // restore before unwinding
                let last = remaining.len() - 1;
                remaining.swap(best_slot.min(last), last);
                return true;
            }
        } else {
            trace.emit(|| ChaseEvent::HomPrune { depth });
        }
    }
    trace.emit(|| ChaseEvent::HomBacktrack { depth });
    remaining.push(atom_idx);
    let last = remaining.len() - 1;
    remaining.swap(best_slot.min(last), last);
    false
}

/// Finds a homomorphism from `source` atoms into `target` that also maps
/// `source_head` pointwise onto `target_head` (Theorem 4's side condition).
///
/// Returns the witnessing substitution, restricted to the source variables.
///
/// ```
/// use flogic_hom::{find_hom, Target};
/// use flogic_model::Atom;
/// use flogic_term::Term;
/// let v = Term::var; let c = Term::constant;
/// let source = [Atom::member(v("X"), v("C"))];
/// let target = Target::new(vec![Atom::member(c("john"), c("student"))]);
/// let hom = find_hom(&source, &[v("X")], &target, &[c("john")]).unwrap();
/// assert_eq!(hom.apply(v("C")), c("student"));
/// ```
pub fn find_hom(
    source: &[Atom],
    source_head: &[Term],
    target: &Target,
    target_head: &[Term],
) -> Option<Subst> {
    find_hom_traced(
        source,
        source_head,
        target,
        target_head,
        &TraceHandle::Disabled,
    )
}

/// [`find_hom`] with a structured-event sink: records a `HomSearch` span
/// plus node expansions, candidate prunes and backtracks. The trace is
/// purely observational — the search result is bit-identical to
/// [`find_hom`]'s for every handle.
pub fn find_hom_traced(
    source: &[Atom],
    source_head: &[Term],
    target: &Target,
    target_head: &[Term],
    trace: &TraceHandle,
) -> Option<Subst> {
    flogic_term::Metrics::global().time_hom(|| {
        let _span = trace.span(SpanKind::HomSearch);
        if source_head.len() != target_head.len() {
            return None;
        }
        let s = head_binding(source_head, target_head)?;
        let mut remaining: Vec<usize> = (0..source.len()).collect();
        let mut result = None;
        search(source, target, s, &mut remaining, trace, &mut |hom| {
            result = Some(hom.clone());
            true
        });
        result
    })
}

/// Finds a homomorphism from `source` into `target` with no head
/// constraint (Boolean queries / satisfiability-style checks).
pub fn find_hom_unconstrained(source: &[Atom], target: &Target) -> Option<Subst> {
    find_hom(source, &[], target, &[])
}

/// Collects up to `limit` homomorphisms (all if `limit == usize::MAX`).
pub fn all_homs(
    source: &[Atom],
    source_head: &[Term],
    target: &Target,
    target_head: &[Term],
    limit: usize,
) -> Vec<Subst> {
    flogic_term::Metrics::global().time_hom(|| {
        let Some(seed) = head_binding(source_head, target_head) else {
            return Vec::new();
        };
        let mut remaining: Vec<usize> = (0..source.len()).collect();
        let mut out = Vec::new();
        search(
            source,
            target,
            seed,
            &mut remaining,
            &TraceHandle::Disabled,
            &mut |hom| {
                out.push(hom.clone());
                out.len() >= limit
            },
        );
        out
    })
}

/// Counts homomorphisms (careful: can be exponential).
pub fn count_homs(
    source: &[Atom],
    source_head: &[Term],
    target: &Target,
    target_head: &[Term],
) -> usize {
    flogic_term::Metrics::global().time_hom(|| {
        let Some(seed) = head_binding(source_head, target_head) else {
            return 0;
        };
        let mut remaining: Vec<usize> = (0..source.len()).collect();
        let mut n = 0usize;
        search(
            source,
            target,
            seed,
            &mut remaining,
            &TraceHandle::Disabled,
            &mut |_| {
                n += 1;
                false
            },
        );
        n
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }
    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn identity_hom_always_exists() {
        let atoms = vec![Atom::member(v("X"), v("Y")), Atom::sub(v("Y"), v("Z"))];
        let t = Target::new(atoms.clone());
        let hom = find_hom(&atoms, &[v("X")], &t, &[v("X")]).unwrap();
        assert_eq!(hom.apply(v("X")), v("X"));
    }

    #[test]
    fn constants_must_map_to_themselves() {
        let source = vec![Atom::member(c("john"), v("C"))];
        let t = Target::new(vec![Atom::member(c("mary"), c("student"))]);
        assert!(find_hom_unconstrained(&source, &t).is_none());
        let t = Target::new(vec![Atom::member(c("john"), c("student"))]);
        let hom = find_hom_unconstrained(&source, &t).unwrap();
        assert_eq!(hom.apply(v("C")), c("student"));
    }

    #[test]
    fn shared_variables_must_agree() {
        // member(X, C), sub(C, D): C joins.
        let source = vec![Atom::member(v("X"), v("C")), Atom::sub(v("C"), v("D"))];
        let t = Target::new(vec![
            Atom::member(c("john"), c("student")),
            Atom::sub(c("person"), c("agent")), // no join with student
        ]);
        assert!(find_hom_unconstrained(&source, &t).is_none());
        let t = Target::new(vec![
            Atom::member(c("john"), c("student")),
            Atom::sub(c("student"), c("person")),
        ]);
        assert!(find_hom_unconstrained(&source, &t).is_some());
    }

    #[test]
    fn non_injective_homs_allowed() {
        // Two source vars may map to the same target term.
        let source = vec![Atom::sub(v("X"), v("Y"))];
        let t = Target::new(vec![Atom::sub(c("a"), c("a"))]);
        let hom = find_hom_unconstrained(&source, &t).unwrap();
        assert_eq!(hom.apply(v("X")), c("a"));
        assert_eq!(hom.apply(v("Y")), c("a"));
    }

    #[test]
    fn head_constraint_filters() {
        let source = vec![Atom::member(v("X"), v("C"))];
        let t = Target::new(vec![
            Atom::member(c("john"), c("student")),
            Atom::member(c("mary"), c("person")),
        ]);
        // Require X -> mary.
        let hom = find_hom(&source, &[v("X")], &t, &[c("mary")]).unwrap();
        assert_eq!(hom.apply(v("C")), c("person"));
        // Require X -> nobody.
        assert!(find_hom(&source, &[v("X")], &t, &[c("bob")]).is_none());
    }

    #[test]
    fn head_constant_clash_fails_early() {
        let source = vec![Atom::member(v("X"), v("C"))];
        let t = Target::new(vec![Atom::member(c("john"), c("student"))]);
        assert!(find_hom(&source, &[c("k")], &t, &[c("j")]).is_none());
        assert!(find_hom(&source, &[c("k")], &t, &[c("k")]).is_some());
    }

    #[test]
    fn arity_mismatch_in_heads_rejected() {
        let source = vec![Atom::member(v("X"), v("C"))];
        let t = Target::new(vec![Atom::member(c("john"), c("student"))]);
        assert!(find_hom(&source, &[v("X")], &t, &[]).is_none());
    }

    #[test]
    fn repeated_head_variable_binds_once() {
        // head (X, X) against (a, b) must fail; against (a, a) succeed.
        let source = vec![Atom::sub(v("X"), v("X"))];
        let t = Target::new(vec![Atom::sub(c("a"), c("a"))]);
        assert!(find_hom(&source, &[v("X"), v("X")], &t, &[c("a"), c("b")]).is_none());
        assert!(find_hom(&source, &[v("X"), v("X")], &t, &[c("a"), c("a")]).is_some());
    }

    #[test]
    fn count_homs_enumerates_all() {
        let source = vec![Atom::member(v("X"), v("C"))];
        let t = Target::new(vec![
            Atom::member(c("a"), c("k")),
            Atom::member(c("b"), c("k")),
            Atom::member(c("a"), c("m")),
        ]);
        assert_eq!(count_homs(&source, &[], &t, &[]), 3);
        let homs = all_homs(&source, &[], &t, &[], 2);
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn empty_source_has_trivial_hom() {
        let t = Target::new(vec![]);
        assert!(find_hom_unconstrained(&[], &t).is_some());
    }

    #[test]
    fn backtracking_explores_alternatives() {
        // First candidate for member fails at the sub join; search must
        // backtrack and pick the second.
        let source = vec![Atom::member(v("X"), v("C")), Atom::sub(v("C"), c("goal"))];
        let t = Target::new(vec![
            Atom::member(c("j"), c("dead_end")),
            Atom::member(c("j"), c("route")),
            Atom::sub(c("route"), c("goal")),
        ]);
        let hom = find_hom_unconstrained(&source, &t).unwrap();
        assert_eq!(hom.apply(v("C")), c("route"));
    }
}
