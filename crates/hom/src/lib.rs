//! Homomorphism search and query cores.
//!
//! Homomorphisms (Definition 1 of the paper) are the workhorse of
//! conjunctive-query containment: `q1 ⊆ q2` classically iff there is a
//! homomorphism from `body(q2)` to `body(q1)` mapping `head(q2)` to
//! `head(q1)` (Chandra–Merlin), and `q1 ⊆_ΣFL q2` iff there is one from
//! `body(q2)` into `chase_ΣFL(q1)` mapping `head(q2)` to
//! `head(chase_ΣFL(q1))` (Theorem 4 / Theorem 12).
//!
//! The search is a backtracking constraint solver over the source atoms:
//!
//! * candidate target conjuncts are retrieved through a `(predicate,
//!   position, term)` index, using the most selective bound position;
//! * the next source atom to map is chosen dynamically by
//!   fewest-candidates-first (MRV);
//! * source constants must map to themselves; source variables bind
//!   consistently across atoms (and may map to *any* target term — in a
//!   chase, the "values" include the variables of the chased query).

mod core_of;
mod search;
mod target;

pub use core_of::classic_core;
pub use search::{all_homs, count_homs, find_hom, find_hom_traced, find_hom_unconstrained};
pub use target::Target;
