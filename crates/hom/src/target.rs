//! Indexed homomorphism targets.

use std::collections::HashMap;

use flogic_chase::Chase;
use flogic_model::{Atom, ConjunctiveQuery, Database, Pred};
use flogic_term::Term;

/// An indexed set of target atoms for homomorphism search.
///
/// Indexes: all atoms per predicate, and atom lists per
/// `(predicate, argument position, term)` for selective retrieval when a
/// pattern has a constant or an already-bound variable at some position.
#[derive(Clone, Debug, Default)]
pub struct Target {
    atoms: Vec<Atom>,
    by_pred: [Vec<usize>; 6],
    by_pos: HashMap<(Pred, u8, Term), Vec<usize>>,
}

impl Target {
    /// Builds a target from a list of atoms. Duplicates are collapsed —
    /// a target is a *set* of facts, and keeping a duplicate would make
    /// [`crate::all_homs`] report the same binding once per copy.
    pub fn new(atoms: Vec<Atom>) -> Target {
        let mut t = Target {
            atoms: Vec::with_capacity(atoms.len()),
            ..Target::default()
        };
        let mut seen = std::collections::HashSet::with_capacity(atoms.len());
        for a in atoms {
            if seen.insert(a) {
                t.push(a);
            }
        }
        t
    }

    /// The conjuncts of a finished chase as a target (Theorem 12's
    /// right-hand side).
    pub fn from_chase(chase: &Chase) -> Target {
        Target::new(chase.conjuncts().map(|(_, a, _)| *a).collect())
    }

    /// The body of a query as a target (Chandra–Merlin's canonical
    /// database: variables of `q` act as values).
    pub fn from_query(q: &ConjunctiveQuery) -> Target {
        Target::new(q.body().to_vec())
    }

    /// The facts of a database as a target.
    pub fn from_database(db: &Database) -> Target {
        Target::new(db.iter().copied().collect())
    }

    fn push(&mut self, a: Atom) {
        let idx = self.atoms.len();
        self.by_pred[a.pred().index()].push(idx);
        for (pos, &term) in a.args().iter().enumerate() {
            self.by_pos
                .entry((a.pred(), pos as u8, term))
                .or_default()
                .push(idx);
        }
        self.atoms.push(a);
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if the target is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// All atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Approximate resident bytes of the target: atom storage plus the
    /// per-predicate and per-position index entries. Like
    /// `Chase::approx_bytes` this is a bookkeeping estimate (used by
    /// byte-capped snapshot caches), not an allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let index_entries: usize = self.by_pred.iter().map(Vec::len).sum::<usize>()
            + self.by_pos.values().map(Vec::len).sum::<usize>();
        self.atoms.len() * size_of::<Atom>()
            + index_entries * size_of::<usize>()
            + self.by_pos.len() * size_of::<(Pred, u8, Term)>()
    }

    /// Returns the indices of candidate atoms for `pattern` (whose bound
    /// positions are ground terms): the most selective index available.
    /// Every returned candidate still needs a full unification check.
    pub(crate) fn candidates(&self, pattern: &Atom) -> &[usize] {
        let mut best: Option<&[usize]> = None;
        for (pos, &term) in pattern.args().iter().enumerate() {
            if term.is_var() {
                continue;
            }
            let list: &[usize] = self
                .by_pos
                .get(&(pattern.pred(), pos as u8, term))
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
            if best.map_or(true, |b| list.len() < b.len()) {
                best = Some(list);
            }
        }
        best.unwrap_or(&self.by_pred[pattern.pred().index()])
    }

    /// Number of candidates (used by the MRV heuristic).
    pub(crate) fn candidate_count(&self, pattern: &Atom) -> usize {
        self.candidates(pattern).len()
    }

    /// The atom at internal index `i`.
    pub(crate) fn atom_at(&self, i: usize) -> &Atom {
        &self.atoms[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }
    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn index_narrows_candidates() {
        let t = Target::new(vec![
            Atom::member(c("a"), c("k")),
            Atom::member(c("b"), c("k")),
            Atom::member(c("a"), c("m")),
            Atom::sub(c("a"), c("b")),
        ]);
        // member(a, X): position-0 index hits 2 atoms.
        let pat = Atom::member(c("a"), v("X"));
        assert_eq!(t.candidates(&pat).len(), 2);
        // member(X, Y): falls back to the full member list.
        let pat = Atom::member(v("X"), v("Y"));
        assert_eq!(t.candidates(&pat).len(), 3);
        // member(zzz, X): empty index list.
        let pat = Atom::member(c("zzz"), v("X"));
        assert!(t.candidates(&pat).is_empty());
    }

    #[test]
    fn most_selective_position_chosen() {
        let t = Target::new(vec![
            Atom::data(c("o"), c("a"), c("1")),
            Atom::data(c("o"), c("a"), c("2")),
            Atom::data(c("o"), c("b"), c("1")),
        ]);
        // data(o, b, X): position 1 (b) has 1 candidate, position 0 (o) 3.
        let pat = Atom::data(c("o"), c("b"), v("X"));
        assert_eq!(t.candidates(&pat).len(), 1);
    }

    #[test]
    fn from_query_uses_body() {
        use flogic_term::Symbol;
        let q = ConjunctiveQuery::new(
            Symbol::intern("q"),
            vec![v("X")],
            vec![Atom::member(v("X"), v("Y")), Atom::sub(v("Y"), v("Z"))],
        )
        .unwrap();
        let t = Target::from_query(&q);
        assert_eq!(t.len(), 2);
    }
}
