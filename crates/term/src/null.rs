//! Labelled nulls — the "fresh constants" invented by rule ρ5.

use std::fmt;

/// Identifier of a labelled null.
///
/// Rule ρ5 (*mandatory attributes must have a value*) is an existential
/// tuple-generating dependency: each application invents a fresh value.
/// Definition 2 of the paper requires the fresh value to "lexicographically
/// follow all other constants in the segment of the chase constructed so
/// far (but still precede all variables)"; allocating ids from a
/// monotonically increasing counter realises exactly that order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u64);

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NullId({})", self.0)
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_v{}", self.0)
    }
}

/// Generator of fresh [`NullId`]s.
///
/// Each chase run owns one generator, so ids are dense and deterministic
/// for a given run.
#[derive(Debug, Default, Clone)]
pub struct NullGen {
    next: u64,
}

impl NullGen {
    /// Creates a generator starting at id 1 (`_v1`, `_v2`, ...).
    pub fn new() -> Self {
        NullGen { next: 1 }
    }

    /// Returns a fresh null id, never returned before by this generator.
    pub fn fresh(&mut self) -> NullId {
        let id = NullId(self.next);
        self.next += 1;
        id
    }

    /// Number of nulls handed out so far.
    pub fn count(&self) -> u64 {
        self.next.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_is_monotonic_and_unique() {
        let mut g = NullGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert!(a < b);
        assert_ne!(a, b);
        assert_eq!(g.count(), 2);
    }

    #[test]
    fn display_matches_paper_notation() {
        let mut g = NullGen::new();
        assert_eq!(g.fresh().to_string(), "_v1");
        assert_eq!(g.fresh().to_string(), "_v2");
    }
}
