//! Substitutions — finite maps from terms to terms.

use std::collections::HashMap;
use std::fmt;

use crate::Term;

/// A substitution: a finite map from terms to terms, identity elsewhere.
///
/// Substitutions play two roles in this library:
///
/// * **Homomorphisms** (Definition 1 of the paper): map every variable to a
///   value and every constant to itself. The homomorphism search in
///   `flogic-hom` produces these; [`Subst::is_homomorphism_binding`] checks
///   the constant-fixing side condition when a binding is added.
/// * **Merge maps** produced by ρ4 (the EGD): when the chase equates two
///   terms it rewrites the larger into the smaller everywhere; the rewrite
///   is a substitution whose keys may be variables *or* nulls.
///
/// Bindings are *not* applied transitively by default: `apply` performs a
/// single lookup. Use [`Subst::normalize`] to collapse chains such as
/// `X ↦ Y, Y ↦ c` into `X ↦ c, Y ↦ c` (needed when several EGD merges
/// accumulate).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: HashMap<Term, Term>,
}

impl Subst {
    /// The empty (identity) substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Creates a substitution with a single binding.
    pub fn singleton(from: Term, to: Term) -> Self {
        let mut s = Subst::new();
        s.bind(from, to);
        s
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if this is the identity substitution.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds the binding `from ↦ to`, replacing any previous binding of
    /// `from`. Binding a term to itself is a no-op (kept out of the map so
    /// that `is_empty` means identity).
    pub fn bind(&mut self, from: Term, to: Term) {
        if from == to {
            self.map.remove(&from);
        } else {
            self.map.insert(from, to);
        }
    }

    /// Adds the binding `from ↦ to` even when `from == to`.
    ///
    /// The homomorphism search needs to remember that a source variable has
    /// been *decided* — including the case where its image happens to be the
    /// identically-named variable of the target (queries fold into
    /// themselves during minimisation). [`Subst::bind`] would elide such an
    /// entry and a later conjunct could silently re-bind the variable.
    pub fn bind_strict(&mut self, from: Term, to: Term) {
        self.map.insert(from, to);
    }

    /// Looks up the image of `t`, if explicitly bound.
    pub fn get(&self, t: Term) -> Option<Term> {
        self.map.get(&t).copied()
    }

    /// Applies the substitution to a term (single lookup, identity if
    /// unbound).
    pub fn apply(&self, t: Term) -> Term {
        self.map.get(&t).copied().unwrap_or(t)
    }

    /// Applies the substitution to every term in a slice, in place.
    pub fn apply_slice(&self, terms: &mut [Term]) {
        for t in terms {
            *t = self.apply(*t);
        }
    }

    /// Collapses chains of bindings (`X ↦ Y, Y ↦ c` becomes `X ↦ c`).
    ///
    /// Panics are avoided on cyclic chains (`X ↦ Y, Y ↦ X`) by stopping
    /// after `len` hops; such cycles cannot arise from ρ4 merges because the
    /// EGD always rewrites the lexicographically larger term into the
    /// smaller one, but `normalize` is safe on arbitrary input anyway.
    pub fn normalize(&mut self) {
        let keys: Vec<Term> = self.map.keys().copied().collect();
        let budget = self.map.len();
        for k in keys {
            let mut v = self.apply(k);
            let mut hops = 0;
            while hops < budget {
                let next = self.apply(v);
                if next == v {
                    break;
                }
                v = next;
                hops += 1;
            }
            self.bind(k, v);
        }
    }

    /// True if every binding fixes constants (i.e. no rigid constant is
    /// bound to a different term) — the side condition for the map to be a
    /// homomorphism in the sense of Definition 1.
    pub fn is_homomorphism_binding(&self) -> bool {
        self.map.iter().all(|(k, _)| !k.is_const())
    }

    /// Iterates over the explicit bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Term, Term)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Composition: `self.compose(other)` maps `t` to `other.apply(self.apply(t))`.
    ///
    /// All keys of both substitutions appear in the result.
    #[must_use]
    pub fn compose(&self, other: &Subst) -> Subst {
        let mut out = Subst::new();
        for (k, v) in self.iter() {
            out.bind(k, other.apply(v));
        }
        for (k, v) in other.iter() {
            if !out.map.contains_key(&k) && self.get(k).is_none() {
                out.bind(k, v);
            }
        }
        out
    }
}

impl fmt::Debug for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut pairs: Vec<(Term, Term)> = self.iter().collect();
        pairs.sort();
        write!(f, "{{")?;
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} -> {v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::var(n)
    }
    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    #[test]
    fn identity_on_unbound() {
        let s = Subst::new();
        assert_eq!(s.apply(v("X")), v("X"));
        assert!(s.is_empty());
    }

    #[test]
    fn bind_and_apply() {
        let mut s = Subst::new();
        s.bind(v("X"), c("john"));
        assert_eq!(s.apply(v("X")), c("john"));
        assert_eq!(s.apply(v("Y")), v("Y"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn self_binding_is_identity() {
        let mut s = Subst::new();
        s.bind(v("X"), v("X"));
        assert!(s.is_empty());
        s.bind(v("X"), c("a"));
        s.bind(v("X"), v("X"));
        assert!(s.is_empty(), "rebinding to self clears the entry");
    }

    #[test]
    fn apply_slice_rewrites_in_place() {
        let mut s = Subst::new();
        s.bind(v("X"), c("a"));
        let mut terms = [v("X"), v("Y"), c("b")];
        s.apply_slice(&mut terms);
        assert_eq!(terms, [c("a"), v("Y"), c("b")]);
    }

    #[test]
    fn normalize_collapses_chains() {
        let mut s = Subst::new();
        s.bind(v("X"), v("Y"));
        s.bind(v("Y"), c("a"));
        s.normalize();
        assert_eq!(s.apply(v("X")), c("a"));
        assert_eq!(s.apply(v("Y")), c("a"));
    }

    #[test]
    fn normalize_survives_cycles() {
        let mut s = Subst::new();
        s.bind(v("X"), v("Y"));
        s.bind(v("Y"), v("X"));
        s.normalize(); // must terminate
        let img = s.apply(v("X"));
        assert!(img == v("X") || img == v("Y"));
    }

    #[test]
    fn compose_applies_left_then_right() {
        let left = Subst::singleton(v("X"), v("Y"));
        let right = Subst::singleton(v("Y"), c("a"));
        let comp = left.compose(&right);
        assert_eq!(comp.apply(v("X")), c("a"));
        assert_eq!(comp.apply(v("Y")), c("a"));
    }

    #[test]
    fn homomorphism_binding_check() {
        let ok = Subst::singleton(v("X"), c("a"));
        assert!(ok.is_homomorphism_binding());
        let bad = Subst::singleton(c("a"), c("b"));
        assert!(!bad.is_homomorphism_binding());
    }
}
