//! Term and symbol substrate for F-logic Lite.
//!
//! This crate provides the lowest layer of the F-logic Lite stack:
//!
//! * [`Symbol`] — cheap interned identifiers for constants, variables and
//!   predicate names;
//! * [`Term`] — the three kinds of terms that appear in queries and in the
//!   chase: *constants*, *variables*, and *labelled nulls* (the "fresh
//!   constants" invented by rule ρ5 of the paper);
//! * [`Subst`] — finite maps from terms to terms, used both for
//!   homomorphisms and for the merge maps produced by the
//!   equality-generating dependency ρ4.
//!
//! The total order on [`Term`] implements the lexicographic convention of
//! Definition 2 of the paper: every real constant precedes every fresh
//! (labelled-null) constant, which in turn precedes every variable. Within
//! each class, constants and variables compare lexicographically by name and
//! nulls by their numeric id (nulls are invented in increasing id order, so
//! id order *is* the paper's "lexicographically follows all other constants
//! in the segment of the chase constructed so far").

pub mod metrics;
mod null;
pub mod rng;
mod subst;
mod symbol;
mod term;

pub use metrics::{Metrics, MetricsSnapshot};
pub use null::{NullGen, NullId};
pub use subst::Subst;
pub use symbol::Symbol;
pub use term::Term;
