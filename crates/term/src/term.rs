//! Terms: constants, labelled nulls and variables.

use std::cmp::Ordering;
use std::fmt;

use crate::{NullId, Symbol};

/// A term of the F-logic Lite encoding.
///
/// Terms populate the arguments of `P_FL` atoms. Three kinds exist:
///
/// * [`Term::Const`] — a *rigid* constant from the query or database
///   (`john`, `person`, `33`). The chase fails if ρ4 tries to equate two
///   distinct rigid constants.
/// * [`Term::Null`] — a labelled null: a "fresh constant" invented by rule
///   ρ5. Nulls are *soft*: ρ4 may merge a null into any other term (this is
///   the universal-solution semantics of Fagin et al., which the paper's
///   Theorem 4 relies on).
/// * [`Term::Var`] — a query variable. Variables occur in queries and in
///   the chase of a query (the chase treats `body(q)` as a database whose
///   variables are values that may later be merged by ρ4).
///
/// The derived-by-hand [`Ord`] realises the paper's lexicographic
/// convention: constants ≺ nulls ≺ variables; constants and variables
/// compare by name, nulls by invention order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A rigid constant.
    Const(Symbol),
    /// A labelled null ("fresh constant" of ρ5).
    Null(NullId),
    /// A query variable.
    Var(Symbol),
}

impl Term {
    /// Convenience constructor for a constant.
    pub fn constant(name: &str) -> Term {
        Term::Const(Symbol::intern(name))
    }

    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Is this a rigid constant?
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Is this a labelled null?
    pub fn is_null(self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// Is this a variable?
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Is this term ground (constant or null), i.e. allowed in a database?
    pub fn is_ground(self) -> bool {
        !self.is_var()
    }

    /// Rank used by the lexicographic order: constants ≺ nulls ≺ variables.
    fn rank(self) -> u8 {
        match self {
            Term::Const(_) => 0,
            Term::Null(_) => 1,
            Term::Var(_) => 2,
        }
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Term {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Term::Const(a), Term::Const(b)) | (Term::Var(a), Term::Var(b)) => a.cmp(b),
            (Term::Null(a), Term::Null(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(s) => write!(f, "Const({})", s.as_str()),
            Term::Null(n) => write!(f, "Null({})", n.0),
            Term::Var(s) => write!(f, "Var({})", s.as_str()),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(s) | Term::Var(s) => f.write_str(s.as_str()),
            Term::Null(n) => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullGen;

    #[test]
    fn constants_precede_nulls_precede_vars() {
        let mut g = NullGen::new();
        let c = Term::constant("zzz");
        let n = Term::Null(g.fresh());
        let v = Term::var("AAA");
        assert!(c < n, "constants precede nulls");
        assert!(n < v, "nulls precede variables");
        assert!(c < v);
    }

    #[test]
    fn within_class_order_is_lexicographic() {
        assert!(Term::constant("alpha") < Term::constant("beta"));
        assert!(Term::var("A") < Term::var("B"));
        let mut g = NullGen::new();
        let n1 = Term::Null(g.fresh());
        let n2 = Term::Null(g.fresh());
        assert!(n1 < n2, "earlier nulls precede later ones");
    }

    #[test]
    fn groundness() {
        let mut g = NullGen::new();
        assert!(Term::constant("a").is_ground());
        assert!(Term::Null(g.fresh()).is_ground());
        assert!(!Term::var("X").is_ground());
    }

    #[test]
    fn display_forms() {
        let mut g = NullGen::new();
        assert_eq!(Term::constant("john").to_string(), "john");
        assert_eq!(Term::var("X").to_string(), "X");
        assert_eq!(Term::Null(g.fresh()).to_string(), "_v1");
    }

    #[test]
    fn kind_predicates() {
        assert!(Term::constant("a").is_const());
        assert!(Term::var("X").is_var());
        let mut g = NullGen::new();
        assert!(Term::Null(g.fresh()).is_null());
    }
}
