//! A small vendored pseudo-random number generator.
//!
//! The workload generators and the benchmark harness need reproducible
//! randomness, not cryptographic quality. To keep the build hermetic (no
//! registry dependencies, no network at build time) this module vendors
//! the classic **`SplitMix64`** generator — the same mixer `rand` uses to
//! seed its own engines — behind a minimal [`Rng`] trait mirroring the
//! handful of `rand` methods the codebase relies on.
//!
//! Determinism guarantee: for a fixed seed, the sequence of values is
//! identical across platforms, processes and runs; every generator in
//! `flogic-gen` is therefore reproducible from a single `u64`.

use std::ops::Range;

/// Minimal random-source trait: a `u64` stream plus derived helpers.
///
/// The derived methods intentionally mirror the subset of the `rand`
/// crate's API used by this workspace (`random_range`, `random_bool`), so
/// swapping a different engine in means implementing [`Rng::next_u64`]
/// only.
pub trait Rng {
    /// Returns the next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform integer in `range` (half-open). Panics on an empty range.
    ///
    /// Uses Lemire-style rejection via 128-bit multiplication, so the
    /// distribution is exactly uniform (no modulo bias).
    fn random_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "random_range on empty range");
        let span = (range.end - range.start) as u64;
        // widening multiply: map the 64-bit stream onto [0, span)
        let mut x = self.next_u64();
        let mut m = u128::from(x).wrapping_mul(u128::from(span));
        let mut lo = m as u64;
        if lo < span {
            let t = span.wrapping_neg() % span;
            while lo < t {
                x = self.next_u64();
                m = u128::from(x).wrapping_mul(u128::from(span));
                lo = m as u64;
            }
        }
        range.start + (m >> 64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 bits of mantissa — the same resolution `rand` offers.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Extension trait: uniform choice from a slice (the `rand`
/// `IndexedRandom::choose` replacement).
pub trait SliceRandom<T> {
    /// Returns a uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T>;
}

impl<T> SliceRandom<T> for [T] {
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// `SplitMix64` (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
/// Generators*, OOPSLA 2014): a 64-bit state, one add and two xor-shift
/// multiplies per draw. Passes `BigCrush` when seeded arbitrarily; perfect
/// for reproducible synthetic workloads.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds ⇒ equal streams.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from the published SplitMix64
        // C implementation.
        let mut g = SplitMix64::seed_from_u64(1234567);
        let first: Vec<u64> = (0..3).map(|_| g.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_is_in_bounds_and_covers() {
        let mut g = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = g.random_range(10..15);
            assert!((10..15).contains(&x));
            seen[x - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values hit in 200 draws");
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut g = SplitMix64::seed_from_u64(11);
        assert!(!(0..100).any(|_| g.random_bool(0.0)));
        assert!((0..100).all(|_| g.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| g.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "~25% expected, got {hits}");
    }

    #[test]
    fn choose_is_uniform_enough() {
        let mut g = SplitMix64::seed_from_u64(3);
        let xs = [1, 2, 3, 4];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut g).is_none());
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[*xs.choose(&mut g).unwrap() - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
    }
}
