//! Lightweight cross-crate instrumentation.
//!
//! The containment hot path has three phases — chase materialization,
//! homomorphism search, and (with a `DecisionCache`-style layer) cache
//! lookups — and the benchmark harness wants to report how a workload
//! splits across them. This module provides a process-global set of
//! **atomic counters and wall-clock accumulators** that the `flogic-chase`,
//! `flogic-hom` and `flogic-core` crates update as they work.
//!
//! Everything is relaxed atomics on a `static`: recording costs a couple of
//! uncontended atomic adds, there is no locking, and crates that never look
//! at the numbers pay (almost) nothing. Snapshots are cheap and the harness
//! takes one per experiment via [`Metrics::snapshot`] /
//! [`Metrics::reset`].
//!
//! `DecisionCache` lives in `flogic-core`; the cache counters here are the
//! generic notion it reports into.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A duration as `u64` nanoseconds, saturating at `u64::MAX` instead of
/// silently truncating the `u128` (a plain `as u64` would wrap a duration
/// past ~584 years into a small number and corrupt the accumulator).
fn saturating_nanos(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

/// Process-global instrumentation counters (see the module docs).
#[derive(Debug, Default)]
pub struct Metrics {
    chase_runs: AtomicU64,
    chase_nanos: AtomicU64,
    hom_searches: AtomicU64,
    hom_nanos: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    analysis_early_false: AtomicU64,
    analysis_early_true: AtomicU64,
    analysis_chased: AtomicU64,
    governor_deadline_hits: AtomicU64,
    governor_budget_hits: AtomicU64,
    governor_cancellations: AtomicU64,
    canon_keys: AtomicU64,
    canon_reduced: AtomicU64,
    canon_nanos: AtomicU64,
}

static GLOBAL: Metrics = Metrics {
    chase_runs: AtomicU64::new(0),
    chase_nanos: AtomicU64::new(0),
    hom_searches: AtomicU64::new(0),
    hom_nanos: AtomicU64::new(0),
    cache_hits: AtomicU64::new(0),
    cache_misses: AtomicU64::new(0),
    analysis_early_false: AtomicU64::new(0),
    analysis_early_true: AtomicU64::new(0),
    analysis_chased: AtomicU64::new(0),
    governor_deadline_hits: AtomicU64::new(0),
    governor_budget_hits: AtomicU64::new(0),
    governor_cancellations: AtomicU64::new(0),
    canon_keys: AtomicU64::new(0),
    canon_reduced: AtomicU64::new(0),
    canon_nanos: AtomicU64::new(0),
};

impl Metrics {
    /// The process-global metrics instance.
    pub fn global() -> &'static Metrics {
        &GLOBAL
    }

    /// Records one chase run that took `elapsed` of wall-clock time.
    pub fn record_chase(&self, elapsed: Duration) {
        self.chase_runs.fetch_add(1, Ordering::Relaxed);
        self.chase_nanos
            .fetch_add(saturating_nanos(elapsed), Ordering::Relaxed);
    }

    /// Records one homomorphism search that took `elapsed`.
    pub fn record_hom(&self, elapsed: Duration) {
        self.hom_searches.fetch_add(1, Ordering::Relaxed);
        self.hom_nanos
            .fetch_add(saturating_nanos(elapsed), Ordering::Relaxed);
    }

    /// Records a containment-decision cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a containment-decision cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a containment decided `false` by static analysis (no chase).
    pub fn record_analysis_early_false(&self) {
        self.analysis_early_false.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a containment decided `true` by static analysis (no chase).
    pub fn record_analysis_early_true(&self) {
        self.analysis_early_true.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a containment where analysis found no shortcut and the
    /// full chase + hom search ran.
    pub fn record_analysis_chased(&self) {
        self.analysis_chased.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a chase run stopped by its wall-clock deadline.
    pub fn record_governor_deadline(&self) {
        self.governor_deadline_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a chase run stopped by a count budget (conjuncts, steps, or
    /// bytes).
    pub fn record_governor_budget(&self) {
        self.governor_budget_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a chase run stopped by cooperative cancellation.
    pub fn record_governor_cancellation(&self) {
        self.governor_cancellations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one semantic canonicalization pass (core + total ordering)
    /// that took `elapsed`; `reduced` says whether the core was strictly
    /// smaller than the input query.
    pub fn record_canon(&self, elapsed: Duration, reduced: bool) {
        self.canon_keys.fetch_add(1, Ordering::Relaxed);
        if reduced {
            self.canon_reduced.fetch_add(1, Ordering::Relaxed);
        }
        self.canon_nanos
            .fetch_add(saturating_nanos(elapsed), Ordering::Relaxed);
    }

    /// Times `f`, records the duration as a chase run, returns its result.
    pub fn time_chase<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record_chase(t0.elapsed());
        out
    }

    /// Times `f`, records the duration as a hom search, returns its result.
    pub fn time_hom<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record_hom(t0.elapsed());
        out
    }

    /// Takes a consistent-enough snapshot of all counters (each counter is
    /// read atomically; the set is not globally synchronized, which is fine
    /// for reporting).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            chase_runs: self.chase_runs.load(Ordering::Relaxed),
            chase_nanos: self.chase_nanos.load(Ordering::Relaxed),
            hom_searches: self.hom_searches.load(Ordering::Relaxed),
            hom_nanos: self.hom_nanos.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            analysis_early_false: self.analysis_early_false.load(Ordering::Relaxed),
            analysis_early_true: self.analysis_early_true.load(Ordering::Relaxed),
            analysis_chased: self.analysis_chased.load(Ordering::Relaxed),
            governor_deadline_hits: self.governor_deadline_hits.load(Ordering::Relaxed),
            governor_budget_hits: self.governor_budget_hits.load(Ordering::Relaxed),
            governor_cancellations: self.governor_cancellations.load(Ordering::Relaxed),
            canon_keys: self.canon_keys.load(Ordering::Relaxed),
            canon_reduced: self.canon_reduced.load(Ordering::Relaxed),
            canon_nanos: self.canon_nanos.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.chase_runs.store(0, Ordering::Relaxed);
        self.chase_nanos.store(0, Ordering::Relaxed);
        self.hom_searches.store(0, Ordering::Relaxed);
        self.hom_nanos.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.analysis_early_false.store(0, Ordering::Relaxed);
        self.analysis_early_true.store(0, Ordering::Relaxed);
        self.analysis_chased.store(0, Ordering::Relaxed);
        self.governor_deadline_hits.store(0, Ordering::Relaxed);
        self.governor_budget_hits.store(0, Ordering::Relaxed);
        self.governor_cancellations.store(0, Ordering::Relaxed);
        self.canon_keys.store(0, Ordering::Relaxed);
        self.canon_reduced.store(0, Ordering::Relaxed);
        self.canon_nanos.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the [`Metrics`] counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Number of chase runs recorded.
    pub chase_runs: u64,
    /// Total wall-clock nanoseconds spent in chase runs.
    pub chase_nanos: u64,
    /// Number of homomorphism searches recorded.
    pub hom_searches: u64,
    /// Total wall-clock nanoseconds spent in hom searches.
    pub hom_nanos: u64,
    /// Containment-decision cache hits.
    pub cache_hits: u64,
    /// Containment-decision cache misses.
    pub cache_misses: u64,
    /// Containments decided `false` by static analysis without a chase.
    pub analysis_early_false: u64,
    /// Containments decided `true` (vacuous) by static analysis without a
    /// chase.
    pub analysis_early_true: u64,
    /// Containments where analysis found no shortcut and the chase ran.
    pub analysis_chased: u64,
    /// Chase runs stopped by their wall-clock deadline.
    pub governor_deadline_hits: u64,
    /// Chase runs stopped by a count budget (conjuncts, steps, or bytes).
    pub governor_budget_hits: u64,
    /// Chase runs stopped by cooperative cancellation.
    pub governor_cancellations: u64,
    /// Semantic canonicalization passes (core + total variable/atom
    /// ordering) performed for cache keying.
    pub canon_keys: u64,
    /// Canonicalization passes where the core was strictly smaller than
    /// the input query (redundant conjuncts were folded away).
    pub canon_reduced: u64,
    /// Total wall-clock nanoseconds spent canonicalizing.
    pub canon_nanos: u64,
}

impl MetricsSnapshot {
    /// Counter-wise difference since an earlier snapshot (saturating).
    #[must_use]
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            chase_runs: self.chase_runs.saturating_sub(earlier.chase_runs),
            chase_nanos: self.chase_nanos.saturating_sub(earlier.chase_nanos),
            hom_searches: self.hom_searches.saturating_sub(earlier.hom_searches),
            hom_nanos: self.hom_nanos.saturating_sub(earlier.hom_nanos),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            analysis_early_false: self
                .analysis_early_false
                .saturating_sub(earlier.analysis_early_false),
            analysis_early_true: self
                .analysis_early_true
                .saturating_sub(earlier.analysis_early_true),
            analysis_chased: self.analysis_chased.saturating_sub(earlier.analysis_chased),
            governor_deadline_hits: self
                .governor_deadline_hits
                .saturating_sub(earlier.governor_deadline_hits),
            governor_budget_hits: self
                .governor_budget_hits
                .saturating_sub(earlier.governor_budget_hits),
            governor_cancellations: self
                .governor_cancellations
                .saturating_sub(earlier.governor_cancellations),
            canon_keys: self.canon_keys.saturating_sub(earlier.canon_keys),
            canon_reduced: self.canon_reduced.saturating_sub(earlier.canon_reduced),
            canon_nanos: self.canon_nanos.saturating_sub(earlier.canon_nanos),
        }
    }

    /// Total chase runs the governor stopped, for any reason.
    pub fn governor_stops(&self) -> u64 {
        self.governor_deadline_hits + self.governor_budget_hits + self.governor_cancellations
    }

    /// Fraction of analysis-screened containment decisions answered
    /// without a chase, or `None` when the analyzer saw no decisions.
    pub fn analysis_early_rate(&self) -> Option<f64> {
        let early = self.analysis_early_false + self.analysis_early_true;
        let total = early + self.analysis_chased;
        (total > 0).then(|| early as f64 / total as f64)
    }

    /// Cache hit rate in `[0, 1]`, or `None` when no lookups happened.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Fraction of instrumented wall-clock time spent in the chase (the
    /// rest is hom search), or `None` when nothing was timed.
    pub fn chase_fraction(&self) -> Option<f64> {
        let total = self.chase_nanos + self.hom_nanos;
        (total > 0).then(|| self.chase_nanos as f64 / total as f64)
    }

    /// Renders the snapshot in the plain-text exposition format scrape
    /// endpoints expect (one `flq_<counter> <value>` line per counter,
    /// ending with a newline) — the body of the `flqd` server's
    /// `GET /metrics`. Every counter is always present, so scrapers see a
    /// stable schema.
    pub fn render_text(&self) -> String {
        let rows: [(&str, u64); 15] = [
            ("flq_chase_runs", self.chase_runs),
            ("flq_chase_nanos", self.chase_nanos),
            ("flq_hom_searches", self.hom_searches),
            ("flq_hom_nanos", self.hom_nanos),
            ("flq_cache_hits", self.cache_hits),
            ("flq_cache_misses", self.cache_misses),
            ("flq_analysis_early_false", self.analysis_early_false),
            ("flq_analysis_early_true", self.analysis_early_true),
            ("flq_analysis_chased", self.analysis_chased),
            ("flq_governor_deadline_hits", self.governor_deadline_hits),
            ("flq_governor_budget_hits", self.governor_budget_hits),
            ("flq_governor_cancellations", self.governor_cancellations),
            ("flq_canon_keys", self.canon_keys),
            ("flq_canon_reduced", self.canon_reduced),
            ("flq_canon_nanos", self.canon_nanos),
        ];
        let mut out = String::with_capacity(rows.len() * 32);
        for (name, value) in rows {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chase: {} runs / {:.2} ms; hom: {} searches / {:.2} ms; cache: {} hits / {} misses",
            self.chase_runs,
            self.chase_nanos as f64 / 1e6,
            self.hom_searches,
            self.hom_nanos as f64 / 1e6,
            self.cache_hits,
            self.cache_misses,
        )?;
        if let Some(rate) = self.cache_hit_rate() {
            write!(f, " ({:.1}% hit rate)", rate * 100.0)?;
        }
        write!(
            f,
            "; analysis: {} early-false / {} early-true / {} chased",
            self.analysis_early_false, self.analysis_early_true, self.analysis_chased,
        )?;
        if self.governor_stops() > 0 {
            write!(
                f,
                "; governor: {} deadline / {} budget / {} cancelled",
                self.governor_deadline_hits, self.governor_budget_hits, self.governor_cancellations,
            )?;
        }
        if self.canon_keys > 0 {
            write!(
                f,
                "; canon: {} keys / {} reduced / {:.2} ms",
                self.canon_keys,
                self.canon_reduced,
                self.canon_nanos as f64 / 1e6,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global metrics are process-wide, so tests only assert *relative*
    // movement (other tests in the same process may record concurrently).

    #[test]
    fn counters_accumulate_and_diff() {
        let m = Metrics::default();
        m.record_chase(Duration::from_micros(5));
        m.record_chase(Duration::from_micros(7));
        m.record_hom(Duration::from_micros(3));
        m.record_cache_hit();
        m.record_cache_hit();
        m.record_cache_miss();
        let s = m.snapshot();
        assert_eq!(s.chase_runs, 2);
        assert_eq!(s.chase_nanos, 12_000);
        assert_eq!(s.hom_searches, 1);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hit_rate(), Some(2.0 / 3.0));
        let s2 = m.snapshot().since(&s);
        assert_eq!(s2, MetricsSnapshot::default());
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn timing_helpers_return_value_and_record() {
        let m = Metrics::default();
        let x = m.time_chase(|| 41 + 1);
        assert_eq!(x, 42);
        let y = m.time_hom(|| "ok");
        assert_eq!(y, "ok");
        let s = m.snapshot();
        assert_eq!((s.chase_runs, s.hom_searches), (1, 1));
    }

    #[test]
    fn global_is_reachable() {
        let before = Metrics::global().snapshot();
        Metrics::global().record_cache_miss();
        let after = Metrics::global().snapshot();
        assert!(after.cache_misses > before.cache_misses);
    }

    #[test]
    fn analysis_counters_accumulate_and_render() {
        let m = Metrics::default();
        assert_eq!(m.snapshot().analysis_early_rate(), None);
        m.record_analysis_early_false();
        m.record_analysis_early_false();
        m.record_analysis_early_true();
        m.record_analysis_chased();
        let s = m.snapshot();
        assert_eq!(s.analysis_early_false, 2);
        assert_eq!(s.analysis_early_true, 1);
        assert_eq!(s.analysis_chased, 1);
        assert_eq!(s.analysis_early_rate(), Some(0.75));
        assert!(s
            .to_string()
            .contains("analysis: 2 early-false / 1 early-true / 1 chased"));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn governor_counters_accumulate_and_render() {
        let m = Metrics::default();
        assert_eq!(m.snapshot().governor_stops(), 0);
        assert!(!m.snapshot().to_string().contains("governor:"));
        m.record_governor_deadline();
        m.record_governor_budget();
        m.record_governor_budget();
        m.record_governor_cancellation();
        let s = m.snapshot();
        assert_eq!(s.governor_deadline_hits, 1);
        assert_eq!(s.governor_budget_hits, 2);
        assert_eq!(s.governor_cancellations, 1);
        assert_eq!(s.governor_stops(), 4);
        assert!(s
            .to_string()
            .contains("governor: 1 deadline / 2 budget / 1 cancelled"));
        assert_eq!(s.since(&s), MetricsSnapshot::default());
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn canon_counters_accumulate_and_render() {
        let m = Metrics::default();
        assert!(!m.snapshot().to_string().contains("canon:"));
        m.record_canon(Duration::from_micros(2), true);
        m.record_canon(Duration::from_micros(3), false);
        let s = m.snapshot();
        assert_eq!(s.canon_keys, 2);
        assert_eq!(s.canon_reduced, 1);
        assert_eq!(s.canon_nanos, 5_000);
        assert!(s.to_string().contains("canon: 2 keys / 1 reduced"));
        assert_eq!(s.since(&s), MetricsSnapshot::default());
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn nanosecond_recording_saturates_instead_of_truncating() {
        // Duration::MAX holds ~2^64 seconds, so its nanosecond count
        // overflows u64 by a wide margin; the accumulator must pin at
        // u64::MAX rather than wrap around to a small value.
        assert!(Duration::MAX.as_nanos() > u128::from(u64::MAX));
        assert_eq!(saturating_nanos(Duration::MAX), u64::MAX);
        assert_eq!(saturating_nanos(Duration::from_nanos(7)), 7);
        let m = Metrics::default();
        m.record_chase(Duration::MAX);
        m.record_hom(Duration::MAX);
        let s = m.snapshot();
        assert_eq!(s.chase_nanos, u64::MAX);
        assert_eq!(s.hom_nanos, u64::MAX);
        // A second overflowing record saturates the counter too (the
        // fetch_add wraps, but each addend is already pinned; assert the
        // run counters still advance).
        assert_eq!((s.chase_runs, s.hom_searches), (1, 1));
    }

    #[test]
    fn render_text_lists_every_counter_once() {
        let m = Metrics::default();
        m.record_chase(Duration::from_nanos(5));
        m.record_cache_hit();
        let text = m.snapshot().render_text();
        assert!(text.ends_with('\n'));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 15, "stable scrape schema");
        assert!(lines.contains(&"flq_chase_runs 1"));
        assert!(lines.contains(&"flq_cache_hits 1"));
        assert!(lines.contains(&"flq_governor_cancellations 0"));
        assert!(lines.contains(&"flq_canon_keys 0"));
        for line in lines {
            let mut parts = line.split(' ');
            assert!(parts.next().unwrap().starts_with("flq_"));
            parts.next().unwrap().parse::<u64>().unwrap();
            assert_eq!(parts.next(), None);
        }
    }

    #[test]
    fn chase_fraction_splits_time() {
        let m = Metrics::default();
        assert_eq!(m.snapshot().chase_fraction(), None);
        m.record_chase(Duration::from_nanos(300));
        m.record_hom(Duration::from_nanos(100));
        assert_eq!(m.snapshot().chase_fraction(), Some(0.75));
    }
}
