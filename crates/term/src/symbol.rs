//! Interned string symbols.

use std::collections::HashMap;
use std::fmt;
use std::sync::{LazyLock, RwLock};

/// An interned string.
///
/// Symbols are cheap to copy, compare and hash (a single `u32`), and can be
/// resolved back to their string form with [`Symbol::as_str`]. Interning is
/// global and lock-protected; interned strings live for the duration of the
/// process (they are leaked once, on first interning — the symbol universe
/// of a containment workload is small and bounded, so this is the usual
/// compiler-style trade-off).
///
/// Equality and hashing are by id. The [`Ord`] implementation compares the
/// *string forms* lexicographically, because the chase's EGD rule ρ4 must
/// pick "the lexicographically smaller" of two constants (Definition 2 of
/// the paper) and that choice must be stable across runs regardless of
/// interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

static INTERNER: LazyLock<RwLock<Interner>> = LazyLock::new(|| {
    RwLock::new(Interner {
        by_name: HashMap::new(),
        names: Vec::new(),
    })
});

impl Symbol {
    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(name: &str) -> Symbol {
        {
            let interner = INTERNER.read().expect("interner lock poisoned");
            if let Some(&id) = interner.by_name.get(name) {
                return Symbol(id);
            }
        }
        let mut interner = INTERNER.write().expect("interner lock poisoned");
        if let Some(&id) = interner.by_name.get(name) {
            return Symbol(id);
        }
        let owned: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(interner.names.len()).expect("symbol table overflow");
        interner.names.push(owned);
        interner.by_name.insert(owned, id);
        Symbol(id)
    }

    /// Returns the string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        INTERNER.read().expect("interner lock poisoned").names[self.0 as usize]
    }

    /// The raw id, useful for dense side tables.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("john");
        let b = Symbol::intern("john");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "john");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("alpha"), Symbol::intern("beta"));
    }

    #[test]
    fn order_is_lexicographic_not_interning_order() {
        // Intern in reverse lexicographic order on purpose.
        let z = Symbol::intern("zzz_order_test");
        let a = Symbol::intern("aaa_order_test");
        assert!(a < z);
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_round_trips() {
        let s = Symbol::intern("person");
        assert_eq!(s.to_string(), "person");
        assert_eq!(format!("{s:?}"), "Symbol(\"person\")");
    }

    #[test]
    fn from_str_interns() {
        let s: Symbol = "student".into();
        assert_eq!(s, Symbol::intern("student"));
    }
}
