//! A minimal HTTP/1.1 client for benchmarking `flqd`.
//!
//! Two protocol shapes, both deliberately independent of the server's
//! own HTTP code so the two sides cross-check each other:
//!
//! * [`post`]/[`get`] — one connection per call, `Connection: close`,
//!   read-to-EOF. Simple, but every call pays the TCP connect, so it
//!   measures transport + decision conflated.
//! * [`Client`] — a persistent keep-alive connection with
//!   `content-length`-framed response reads and optional pipelining.
//!   Connect cost is paid (and measured) once; per-request latency is
//!   then the decision plus one round trip.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Sends `POST path body` to `addr`; returns `(status, body)`.
pub fn post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}

/// Sends `GET path` to `addr`; returns `(status, body)`.
pub fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}

fn resolve(addr: &str) -> std::io::Result<std::net::SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))
}

fn request(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let addr = resolve(addr)?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad HTTP response"))
}

fn parse_response(raw: &str) -> Option<(u16, String)> {
    let status: u16 = raw.split(' ').nth(1)?.parse().ok()?;
    let body = raw.split_once("\r\n\r\n")?.1.to_string();
    Some((status, body))
}

/// A persistent keep-alive connection to `flqd`.
pub struct Client {
    stream: TcpStream,
    /// Received-but-unconsumed bytes (the tail of a read that crossed a
    /// response boundary — routine under pipelining).
    buf: Vec<u8>,
    connect_time: Duration,
}

impl Client {
    /// Connects (timing the TCP handshake) and disables Nagle, mirroring
    /// the server side.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let addr = resolve(addr)?;
        let t0 = Instant::now();
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        let connect_time = t0.elapsed();
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            connect_time,
        })
    }

    /// How long the TCP connect took.
    pub fn connect_time(&self) -> Duration {
        self.connect_time
    }

    /// One keep-alive `POST`; returns `(status, body)`.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        write!(
            self.stream,
            "POST {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.read_response()
    }

    /// Writes all `bodies` as pipelined `POST`s in a single burst, then
    /// reads the same number of responses, in order.
    pub fn post_pipelined(
        &mut self,
        path: &str,
        bodies: &[String],
    ) -> std::io::Result<Vec<(u16, String)>> {
        let mut burst = Vec::new();
        for body in bodies {
            burst.extend_from_slice(
                format!(
                    "POST {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
        }
        self.stream.write_all(&burst)?;
        bodies.iter().map(|_| self.read_response()).collect()
    }

    /// Reads one `content-length`-framed response from the connection.
    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        loop {
            if let Some(head_end) = find_subsequence(&self.buf, b"\r\n\r\n") {
                let head = std::str::from_utf8(&self.buf[..head_end])
                    .map_err(|_| bad("non-UTF-8 response head"))?;
                let status: u16 = head
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad status line"))?;
                let content_length: usize = head
                    .lines()
                    .find_map(|l| {
                        l.to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(|v| v.trim().to_string())
                    })
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("missing content-length"))?;
                let total = head_end + 4 + content_length;
                if self.buf.len() >= total {
                    let body = String::from_utf8(self.buf[head_end + 4..total].to_vec())
                        .map_err(|_| bad("non-UTF-8 response body"))?;
                    self.buf.drain(..total);
                    return Ok((status, body));
                }
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Quotes `s` as a JSON string literal (enough for query surface syntax:
/// quotes, backslashes and control characters escaped).
pub fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts the `i`-th `"verdict":"…"` value from a response body
/// (`i = 0` for single-pair responses).
pub fn nth_verdict(body: &str, i: usize) -> Option<&str> {
    let mut rest = body;
    for _ in 0..=i {
        let at = rest.find("\"verdict\":\"")?;
        rest = &rest[at + "\"verdict\":\"".len()..];
        if rest.starts_with('"') {
            return None;
        }
    }
    rest.split('"').next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_extract_in_order() {
        let body = r#"{"results":[{"verdict":"holds","vacuous":false},{"verdict":"exhausted","reason":"conjuncts"},{"verdict":"not_holds"}]}"#;
        assert_eq!(nth_verdict(body, 0), Some("holds"));
        assert_eq!(nth_verdict(body, 1), Some("exhausted"));
        assert_eq!(nth_verdict(body, 2), Some("not_holds"));
        assert_eq!(nth_verdict(body, 3), None);
    }

    #[test]
    fn json_quote_escapes() {
        assert_eq!(json_quote("q(X) :- a."), "\"q(X) :- a.\"");
        assert_eq!(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
