//! A minimal HTTP/1.1 client for benchmarking `flqd`.
//!
//! One connection per call, `Connection: close`, read-to-EOF: the
//! simplest protocol usage that is unambiguous to measure. Used by the
//! `loadgen` binary and experiment E11; deliberately independent of the
//! server's own HTTP code so the two sides cross-check each other.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Sends `POST path body` to `addr`; returns `(status, body)`.
pub fn post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}

/// Sends `GET path` to `addr`; returns `(status, body)`.
pub fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}

fn request(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad HTTP response"))
}

fn parse_response(raw: &str) -> Option<(u16, String)> {
    let status: u16 = raw.split(' ').nth(1)?.parse().ok()?;
    let body = raw.split_once("\r\n\r\n")?.1.to_string();
    Some((status, body))
}

/// Quotes `s` as a JSON string literal (enough for query surface syntax:
/// quotes, backslashes and control characters escaped).
pub fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts the `i`-th `"verdict":"…"` value from a response body
/// (`i = 0` for single-pair responses).
pub fn nth_verdict(body: &str, i: usize) -> Option<&str> {
    let mut rest = body;
    for _ in 0..=i {
        let at = rest.find("\"verdict\":\"")?;
        rest = &rest[at + "\"verdict\":\"".len()..];
        if rest.starts_with('"') {
            return None;
        }
    }
    rest.split('"').next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_extract_in_order() {
        let body = r#"{"results":[{"verdict":"holds","vacuous":false},{"verdict":"exhausted","reason":"conjuncts"},{"verdict":"not_holds"}]}"#;
        assert_eq!(nth_verdict(body, 0), Some("holds"));
        assert_eq!(nth_verdict(body, 1), Some("exhausted"));
        assert_eq!(nth_verdict(body, 2), Some("not_holds"));
        assert_eq!(nth_verdict(body, 3), None);
    }

    #[test]
    fn json_quote_escapes() {
        assert_eq!(json_quote("q(X) :- a."), "\"q(X) :- a.\"");
        assert_eq!(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
