//! `promcheck` — validate Prometheus text exposition (format 0.0.4).
//!
//! ```text
//! promcheck <HOST:PORT[/path]>   scrape an endpoint and validate it
//! promcheck -                    validate exposition read from stdin
//! ```
//!
//! The structural invariants CI holds `flqd`'s `GET /metrics` to:
//!
//! * every sample line's metric family has a preceding `# TYPE` header,
//!   and every `# TYPE` header is followed by at least one sample of its
//!   family (no headerless series, no sampleless families);
//! * `histogram` families expose `_bucket` series whose counts are
//!   monotone non-decreasing in `le` order per label set, end with
//!   `le="+Inf"`, and agree with the matching `_count` series;
//! * every sample value parses as an unsigned integer (nothing `flqd`
//!   exports is fractional).
//!
//! Exit codes: `0` valid, `1` invalid or scrape failure, `2` usage.

use std::collections::HashMap;
use std::io::Read as _;
use std::process::ExitCode;

use flogic_bench::wire;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [target] = args.as_slice() else {
        eprintln!("usage: promcheck <HOST:PORT[/path]> | promcheck -");
        return ExitCode::from(2);
    };
    let body = match fetch(target) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let problems = validate(&body);
    if problems.is_empty() {
        println!("promcheck: ok ({} lines)", body.lines().count());
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("promcheck: {p}");
        }
        eprintln!("promcheck: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

/// Reads the exposition text: stdin for `-`, otherwise a scrape of
/// `HOST:PORT[/path]` (default path `/metrics`).
fn fetch(target: &str) -> Result<String, String> {
    if target == "-" {
        let mut body = String::new();
        std::io::stdin()
            .read_to_string(&mut body)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        return Ok(body);
    }
    let (addr, path) = match target.find('/') {
        Some(i) => (&target[..i], &target[i..]),
        None => (target, "/metrics"),
    };
    let (status, body) =
        wire::get(addr, path).map_err(|e| format!("cannot scrape {addr}{path}: {e}"))?;
    if status != 200 {
        return Err(format!("{addr}{path} answered HTTP {status}"));
    }
    Ok(body)
}

/// One sample line, split into its parts.
struct Sample<'a> {
    /// The full series name as written (`flqd_foo_bucket`, …).
    series: &'a str,
    /// The `k="v"` pairs inside braces, minus any `le`.
    labels: String,
    /// The value of the `le` label, when present.
    le: Option<&'a str>,
    value: &'a str,
}

fn split_sample(line: &str) -> Option<Sample<'_>> {
    let (head, value) = line.rsplit_once(' ')?;
    let (series, labels, le) = match head.split_once('{') {
        None => (head, String::new(), None),
        Some((series, rest)) => {
            let inner = rest.strip_suffix('}')?;
            let mut le = None;
            let mut kept = Vec::new();
            for part in inner.split(',') {
                match part.strip_prefix("le=\"") {
                    Some(v) => le = Some(v.strip_suffix('"')?),
                    None => kept.push(part),
                }
            }
            (series, kept.join(","), le)
        }
    };
    Some(Sample {
        series,
        labels,
        le,
        value,
    })
}

/// The family a series belongs to: histogram series drop their
/// `_bucket` / `_sum` / `_count` suffix.
fn family_of<'a>(series: &'a str, histograms: &HashMap<String, bool>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = series.strip_suffix(suffix) {
            if histograms.contains_key(base) {
                return base;
            }
        }
    }
    series
}

/// Checks the whole exposition; returns every violation found.
fn validate(body: &str) -> Vec<String> {
    let mut problems = Vec::new();
    // family name -> is histogram; tracks declared # TYPE headers.
    let mut declared: HashMap<String, bool> = HashMap::new();
    let mut sampled: HashMap<String, u64> = HashMap::new();
    // (histogram family, label set) -> (ordered cumulative counts, count series value)
    #[allow(clippy::type_complexity)]
    let mut buckets: HashMap<(String, String), (Vec<(Option<String>, u64)>, Option<u64>)> =
        HashMap::new();
    for (n, line) in body.lines().enumerate() {
        let lineno = n + 1;
        if line.is_empty() || line.starts_with("# HELP") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            match rest.split_once(' ') {
                Some((name, kind)) => {
                    declared.insert(name.to_string(), kind == "histogram");
                }
                None => problems.push(format!("line {lineno}: malformed TYPE header {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            problems.push(format!("line {lineno}: unknown comment {line:?}"));
            continue;
        }
        let Some(sample) = split_sample(line) else {
            problems.push(format!("line {lineno}: malformed sample {line:?}"));
            continue;
        };
        let Ok(value) = sample.value.parse::<u64>() else {
            problems.push(format!(
                "line {lineno}: non-integer value {:?} in {line:?}",
                sample.value
            ));
            continue;
        };
        let family = family_of(sample.series, &declared);
        match declared.get(family) {
            None => problems.push(format!(
                "line {lineno}: series {:?} has no preceding # TYPE header",
                sample.series
            )),
            Some(_) => {
                *sampled.entry(family.to_string()).or_insert(0) += 1;
            }
        }
        if declared.get(family) == Some(&true) {
            let entry = buckets
                .entry((family.to_string(), sample.labels.clone()))
                .or_default();
            if sample.series.ends_with("_bucket") {
                entry.0.push((sample.le.map(str::to_string), value));
            } else if sample.series.ends_with("_count") {
                entry.1 = Some(value);
            }
        }
    }
    for family in declared.keys() {
        if sampled.get(family).copied().unwrap_or(0) == 0 {
            problems.push(format!("family {family:?} declared but has no samples"));
        }
    }
    for ((family, labels), (series, count)) in &buckets {
        let label = if labels.is_empty() {
            family.clone()
        } else {
            format!("{family}{{{labels}}}")
        };
        let mut prev = 0u64;
        for (le, cum) in series {
            if *cum < prev {
                problems.push(format!(
                    "{label}: bucket le={le:?} count {cum} decreases from {prev}"
                ));
            }
            prev = *cum;
        }
        match series.last() {
            Some((Some(le), last)) if le == "+Inf" => {
                if let Some(count) = count {
                    if last != count {
                        problems.push(format!(
                            "{label}: le=\"+Inf\" bucket {last} != _count {count}"
                        ));
                    }
                }
            }
            Some(_) => problems.push(format!(
                "{label}: bucket series does not end at le=\"+Inf\""
            )),
            None => problems.push(format!("{label}: histogram exposes no _bucket series")),
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn a_valid_exposition_passes() {
        let body = "# TYPE flqd_requests_total counter\n\
                    flqd_requests_total 4\n\
                    # TYPE flqd_stage_duration_nanoseconds histogram\n\
                    flqd_stage_duration_nanoseconds_bucket{stage=\"parse\",le=\"1\"} 1\n\
                    flqd_stage_duration_nanoseconds_bucket{stage=\"parse\",le=\"3\"} 2\n\
                    flqd_stage_duration_nanoseconds_bucket{stage=\"parse\",le=\"+Inf\"} 2\n\
                    flqd_stage_duration_nanoseconds_sum{stage=\"parse\"} 5\n\
                    flqd_stage_duration_nanoseconds_count{stage=\"parse\"} 2\n";
        assert_eq!(validate(body), Vec::<String>::new());
    }

    #[test]
    fn violations_are_reported() {
        let headerless = "flqd_mystery_total 1\n";
        assert!(validate(headerless)[0].contains("no preceding # TYPE"));

        let sampleless = "# TYPE flqd_ghost_total counter\n";
        assert!(validate(sampleless)[0].contains("no samples"));

        let nonmonotone = "# TYPE h histogram\n\
                           h_bucket{le=\"1\"} 5\n\
                           h_bucket{le=\"3\"} 2\n\
                           h_bucket{le=\"+Inf\"} 5\n\
                           h_count 5\n";
        assert!(validate(nonmonotone)
            .iter()
            .any(|p| p.contains("decreases")));

        let inf_mismatch = "# TYPE h histogram\n\
                            h_bucket{le=\"+Inf\"} 3\n\
                            h_count 4\n";
        assert!(validate(inf_mismatch)
            .iter()
            .any(|p| p.contains("!= _count")));

        let no_inf = "# TYPE h histogram\n\
                      h_bucket{le=\"1\"} 3\n\
                      h_count 3\n";
        assert!(validate(no_inf)
            .iter()
            .any(|p| p.contains("does not end at le=\"+Inf\"")));

        let float = "# TYPE g gauge\ng 1.5\n";
        assert!(validate(float).iter().any(|p| p.contains("non-integer")));
    }
}
