//! `loadgen` — drive a running `flqd` with a seeded containment workload.
//!
//! ```text
//! loadgen --addr HOST:PORT [--requests N] [--concurrency N] [--batch N]
//!         [--pairs N] [--variants N] [--seed N] [--max-conjuncts N]
//!         [--warmup N] [--keep-alive] [--pipeline N] [--csv FILE] [--verify]
//!         [--server-stats]
//! ```
//!
//! Generates `--pairs` query pairs with the E4 workload generator
//! (seeded, so every run and every verifier sees the same pairs), then
//! fires `--requests` requests round-robin over them from
//! `--concurrency` client threads. `--batch N` groups N pairs per
//! `POST /v1/contains_batch` request instead of one per
//! `POST /v1/contains`.
//!
//! `--variants N` appends N mutated respellings of every base pair to
//! the pair list (redundant atoms + variable renaming + body
//! permutation, seeded like everything else) — the variant-storm
//! workload that exercises the server's semantic cache keys. Combined
//! with `--verify`, every variant's verdict is still checked against a
//! local `contains_with` of that exact variant, so the storm doubles as
//! a canonicalization soundness gate.
//!
//! Three connection modes:
//!
//! * default — a fresh connection per request, `Connection: close`.
//! * `--keep-alive` — one persistent connection per thread, reused for
//!   every request.
//! * `--keep-alive --pipeline N` — additionally keep N requests in
//!   flight per connection; per-request latency is then the window
//!   round trip divided by the window size (service time, not queueing
//!   delay).
//!
//! Connect and request phases are timed separately in every mode, so
//! TCP handshake cost is never conflated with decision cost. Output is
//! `key=value` lines (p50/p95/p99); `--csv FILE` appends one summary
//! row (header written when the file is new). `--warmup N` sends N
//! unmeasured requests first to warm the server's caches.
//!
//! `--verify` recomputes every pair locally with `contains_with` under
//! the same options and exits `1` on any verdict mismatch — the
//! bit-identity check the CI server smoke test relies on. (With only
//! deterministic budgets in play — `--max-conjuncts`, never a deadline —
//! verdicts, including `exhausted` ones, are reproducible.)
//!
//! `--server-stats` scrapes the server's Prometheus `GET /metrics`
//! before and after the measured phase, diffs the per-stage
//! `flqd_stage_duration_nanoseconds` histograms, and prints one
//! `server_stage NAME count= p50_us= p99_us=` line per pipeline stage —
//! the server's own view of where this run's time went — plus the run's
//! `server_batch_dedup_hits` delta.
//!
//! Exit codes: `0` success, `1` mismatch or transport failure, `2` usage.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use flogic_bench::promstats::{diff_stages, scrape_server_stats, ServerStats};
use flogic_bench::wire;
use flogic_core::{contains_with, ContainmentOptions, Verdict};
use flogic_gen::rng::SplitMix64;
use flogic_gen::{generalize, mutate_variant, random_query, GeneralizeConfig, QueryGenConfig};
use flogic_model::ConjunctiveQuery;

struct Config {
    addr: String,
    requests: usize,
    concurrency: usize,
    batch: usize,
    pairs: usize,
    variants: usize,
    seed: u64,
    max_conjuncts: usize,
    warmup: usize,
    keep_alive: bool,
    pipeline: usize,
    csv: Option<String>,
    verify: bool,
    server_stats: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--requests N] [--concurrency N] [--batch N] \
         [--pairs N] [--variants N] [--seed N] [--max-conjuncts N] [--warmup N] \
         [--keep-alive] [--pipeline N] [--csv FILE] [--verify] [--server-stats]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Config, ExitCode> {
    let mut config = Config {
        addr: String::new(),
        requests: 100,
        concurrency: 1,
        batch: 1,
        pairs: 16,
        variants: 0,
        seed: 7,
        max_conjuncts: 50_000,
        warmup: 0,
        keep_alive: false,
        pipeline: 1,
        csv: None,
        verify: false,
        server_stats: false,
    };
    fn text<I: Iterator<Item = String>>(
        it: &mut I,
        arg: &str,
        what: &str,
    ) -> Result<String, ExitCode> {
        it.next().ok_or_else(|| {
            eprintln!("error: {arg} needs {what}");
            usage()
        })
    }
    fn num<I: Iterator<Item = String>>(
        it: &mut I,
        arg: &str,
        what: &str,
    ) -> Result<usize, ExitCode> {
        let raw = text(it, arg, what)?;
        raw.parse().map_err(|_| {
            eprintln!("error: {arg} needs {what}, got {raw:?}");
            usage()
        })
    }
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = text(&mut it, &arg, "an address")?,
            "--requests" => config.requests = num(&mut it, &arg, "a number")?,
            "--concurrency" => config.concurrency = num(&mut it, &arg, "a number")?,
            "--batch" => config.batch = num(&mut it, &arg, "a number")?,
            "--pairs" => config.pairs = num(&mut it, &arg, "a number")?,
            "--variants" => config.variants = num(&mut it, &arg, "a number")?,
            "--seed" => config.seed = num(&mut it, &arg, "a number")? as u64,
            "--max-conjuncts" => config.max_conjuncts = num(&mut it, &arg, "a number")?,
            "--warmup" => config.warmup = num(&mut it, &arg, "a number")?,
            "--keep-alive" => config.keep_alive = true,
            "--pipeline" => config.pipeline = num(&mut it, &arg, "a number")?,
            "--csv" => config.csv = Some(text(&mut it, &arg, "a file path")?),
            "--verify" => config.verify = true,
            "--server-stats" => config.server_stats = true,
            other => {
                eprintln!("error: unknown flag {other:?}");
                return Err(usage());
            }
        }
    }
    if config.addr.is_empty() {
        eprintln!("error: --addr is required");
        return Err(usage());
    }
    if config.requests == 0
        || config.concurrency == 0
        || config.batch == 0
        || config.pairs == 0
        || config.pipeline == 0
    {
        eprintln!(
            "error: --requests, --concurrency, --batch, --pairs and --pipeline must be positive"
        );
        return Err(usage());
    }
    if config.pipeline > 1 && !config.keep_alive {
        eprintln!("error: --pipeline needs --keep-alive (pipelining reuses one connection)");
        return Err(usage());
    }
    Ok(config)
}

/// The E4 workload, first arm: random `q1`, generalized `q2` — plus
/// `variants` mutated respellings of every base pair (both sides
/// independently mutated), appended after the base pairs so round-robin
/// traffic interleaves originals and variants.
fn workload(pairs: usize, variants: usize, seed: u64) -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    let base: Vec<(ConjunctiveQuery, ConjunctiveQuery)> = (0..pairs as u64)
        .map(|i| {
            let q1 = random_query(&qcfg, &mut SplitMix64::seed_from_u64(seed.wrapping_add(i)));
            let q2 = generalize(
                &q1,
                &gcfg,
                &mut SplitMix64::seed_from_u64(seed.wrapping_add(i + 10_000)),
            );
            (q1, q2)
        })
        .collect();
    let mut all = base.clone();
    for v in 1..=variants as u64 {
        for (i, (q1, q2)) in base.iter().enumerate() {
            let s = seed.wrapping_add(v * 1_000_000 + i as u64);
            all.push((
                mutate_variant(q1, &mut SplitMix64::seed_from_u64(s.wrapping_add(20_000))),
                mutate_variant(q2, &mut SplitMix64::seed_from_u64(s.wrapping_add(40_000))),
            ));
        }
    }
    all
}

/// The wire name of a locally computed verdict (matching
/// `flogic-serve`'s encoding).
fn local_verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Holds => "holds",
        Verdict::NotHolds => "not_holds",
        Verdict::Exhausted(_) => "exhausted",
    }
}

/// The request body (and path) for measured request number `r`:
/// round-robin over the pair list, batch-sized. Also returns the pair
/// indices for `--verify`.
fn build_request(
    texts: &[(String, String)],
    r: usize,
    batch: usize,
    max_conjuncts: usize,
) -> (&'static str, String, Vec<usize>) {
    let picked: Vec<usize> = (0..batch).map(|j| (r * batch + j) % texts.len()).collect();
    if batch == 1 {
        let (q1, q2) = &texts[picked[0]];
        (
            "/v1/contains",
            format!(
                "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":{max_conjuncts}}}",
                wire::json_quote(q1),
                wire::json_quote(q2)
            ),
            picked,
        )
    } else {
        let items: Vec<String> = picked
            .iter()
            .map(|&i| {
                let (q1, q2) = &texts[i];
                format!("[{},{}]", wire::json_quote(q1), wire::json_quote(q2))
            })
            .collect();
        (
            "/v1/contains_batch",
            format!(
                "{{\"pairs\":[{}],\"max_conjuncts\":{max_conjuncts}}}",
                items.join(",")
            ),
            picked,
        )
    }
}

/// Checks the verdicts of one response against local ground truth;
/// returns the mismatch count.
fn check_verdicts(
    resp: &str,
    picked: &[usize],
    expected: &[&'static str],
) -> Result<usize, String> {
    let mut mismatches = 0;
    for (j, &i) in picked.iter().enumerate() {
        let got = wire::nth_verdict(resp, j).ok_or_else(|| format!("no verdict {j} in {resp}"))?;
        if got != expected[i] {
            eprintln!(
                "MISMATCH pair {i}: server says {got:?}, local says {:?}",
                expected[i]
            );
            mismatches += 1;
        }
    }
    Ok(mismatches)
}

/// What one client thread measured.
struct ThreadStats {
    connects: Vec<Duration>,
    requests: Vec<Duration>,
    mismatches: usize,
}

#[allow(clippy::too_many_arguments)]
fn client_thread(
    config: &Config,
    texts: &[(String, String)],
    expected: &[&'static str],
    next: &AtomicUsize,
) -> Result<ThreadStats, String> {
    let mut stats = ThreadStats {
        connects: Vec::new(),
        requests: Vec::new(),
        mismatches: 0,
    };
    let conn_err = |e: std::io::Error| format!("connect failed: {e}");
    let req_err = |e: std::io::Error| format!("request failed: {e}");

    if config.keep_alive {
        let mut client = wire::Client::connect(&config.addr).map_err(conn_err)?;
        stats.connects.push(client.connect_time());
        loop {
            // Claim a window of `pipeline` request numbers (one, when
            // not pipelining).
            let base = next.fetch_add(config.pipeline, Ordering::Relaxed);
            if base >= config.requests {
                return Ok(stats);
            }
            let window = config.pipeline.min(config.requests - base);
            let mut picks = Vec::with_capacity(window);
            let mut bodies = Vec::with_capacity(window);
            let mut path = "/v1/contains";
            for w in 0..window {
                let (p, body, picked) =
                    build_request(texts, base + w, config.batch, config.max_conjuncts);
                path = p;
                bodies.push(body);
                picks.push(picked);
            }
            let t0 = Instant::now();
            let responses = if window == 1 {
                vec![client.post(path, &bodies[0]).map_err(req_err)?]
            } else {
                client.post_pipelined(path, &bodies).map_err(req_err)?
            };
            // Per-request service time: the window round trip shared
            // evenly. Exact for window == 1.
            let per_request = t0.elapsed() / window as u32;
            for ((status, resp), picked) in responses.iter().zip(&picks) {
                stats.requests.push(per_request);
                if *status != 200 {
                    return Err(format!("HTTP {status}: {resp}"));
                }
                if config.verify {
                    stats.mismatches += check_verdicts(resp, picked, expected)?;
                }
            }
        }
    } else {
        loop {
            let r = next.fetch_add(1, Ordering::Relaxed);
            if r >= config.requests {
                return Ok(stats);
            }
            let (path, body, picked) = build_request(texts, r, config.batch, config.max_conjuncts);
            // A fresh connection per request, but timed as two phases:
            // the handshake is transport cost, not decision cost.
            let mut client = wire::Client::connect(&config.addr).map_err(conn_err)?;
            stats.connects.push(client.connect_time());
            let t0 = Instant::now();
            let (status, resp) = client.post(path, &body).map_err(req_err)?;
            stats.requests.push(t0.elapsed());
            if status != 200 {
                return Err(format!("HTTP {status}: {resp}"));
            }
            if config.verify {
                stats.mismatches += check_verdicts(&resp, picked.as_slice(), expected)?;
            }
        }
    }
}

/// Prints the `server_stage` / `server_batch_dedup_hits` lines for the
/// window between two scrapes.
fn print_server_stats(before: &ServerStats, after: &ServerStats) {
    for (stage, diff) in diff_stages(before, after) {
        println!(
            "server_stage {stage} count={} p50_us={} p99_us={}",
            diff.count,
            diff.p50() / 1_000,
            diff.p99() / 1_000
        );
    }
    println!(
        "server_batch_dedup_hits {}",
        after
            .batch_dedup_hits
            .saturating_sub(before.batch_dedup_hits)
    );
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(code) => return code,
    };
    let pairs = workload(config.pairs, config.variants, config.seed);
    let texts: Arc<Vec<(String, String)>> = Arc::new(
        pairs
            .iter()
            .map(|(q1, q2)| {
                (
                    flogic_syntax::query_to_flogic(q1),
                    flogic_syntax::query_to_flogic(q2),
                )
            })
            .collect(),
    );

    // Local ground truth for --verify, computed once per distinct pair
    // under exactly the options the requests carry.
    let expected: Arc<Vec<&'static str>> = Arc::new(if config.verify {
        let opts = ContainmentOptions {
            max_conjuncts: config.max_conjuncts,
            ..Default::default()
        };
        pairs
            .iter()
            .map(|(q1, q2)| {
                local_verdict_name(
                    contains_with(q1, q2, &opts)
                        .expect("generated pairs decide without errors")
                        .verdict(),
                )
            })
            .collect()
    } else {
        Vec::new()
    });

    // Unmeasured warmup: fill the server's decision/snapshot caches so
    // the measured phase reports steady-state latency.
    if config.warmup > 0 {
        let mut client = match wire::Client::connect(&config.addr) {
            Ok(client) => client,
            Err(e) => {
                eprintln!("error: warmup connect failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for r in 0..config.warmup {
            let (path, body, _) = build_request(&texts, r, config.batch, config.max_conjuncts);
            if let Err(e) = client.post(path, &body) {
                eprintln!("error: warmup request failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Baseline scrape for --server-stats: after warmup, so the diff
    // covers exactly the measured phase.
    let baseline = if config.server_stats {
        match scrape_server_stats(&config.addr) {
            Ok(stats) => Some(stats),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let next = Arc::new(AtomicUsize::new(0));
    let config = Arc::new(config);
    let started = Instant::now();
    let threads: Vec<_> = (0..config.concurrency)
        .map(|_| {
            let texts = Arc::clone(&texts);
            let expected = Arc::clone(&expected);
            let next = Arc::clone(&next);
            let config = Arc::clone(&config);
            thread::spawn(move || client_thread(&config, &texts, &expected, &next))
        })
        .collect();

    let mut connects: Vec<Duration> = Vec::new();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut mismatches = 0usize;
    for t in threads {
        match t.join().expect("client thread panicked") {
            Ok(stats) => {
                connects.extend(stats.connects);
                latencies.extend(stats.requests);
                mismatches += stats.mismatches;
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    let elapsed = started.elapsed();
    connects.sort();
    latencies.sort();
    let decided = latencies.len() * config.batch;
    let mode = if config.pipeline > 1 {
        "pipeline"
    } else if config.keep_alive {
        "keep-alive"
    } else {
        "close"
    };
    println!(
        "mode={mode} requests={} batch={} concurrency={} pipeline={} decided_pairs={decided}",
        config.requests, config.batch, config.concurrency, config.pipeline
    );
    println!(
        "connect_us count={} p50={:.0} max={:.0}",
        connects.len(),
        us(quantile(&connects, 0.5)),
        us(quantile(&connects, 1.0)),
    );
    println!(
        "latency_us min={:.0} p50={:.0} p95={:.0} p99={:.0} max={:.0}",
        us(quantile(&latencies, 0.0)),
        us(quantile(&latencies, 0.5)),
        us(quantile(&latencies, 0.95)),
        us(quantile(&latencies, 0.99)),
        us(quantile(&latencies, 1.0)),
    );
    let throughput = decided as f64 / elapsed.as_secs_f64();
    println!("throughput_pairs_per_s {throughput:.0}");

    if let Some(before) = &baseline {
        match scrape_server_stats(&config.addr) {
            Ok(after) => print_server_stats(before, &after),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &config.csv {
        let header = "mode,requests,batch,concurrency,pipeline,connect_p50_us,p50_us,p95_us,p99_us,throughput_pairs_per_s\n";
        let row = format!(
            "{mode},{},{},{},{},{:.0},{:.0},{:.0},{:.0},{throughput:.0}\n",
            config.requests,
            config.batch,
            config.concurrency,
            config.pipeline,
            us(quantile(&connects, 0.5)),
            us(quantile(&latencies, 0.5)),
            us(quantile(&latencies, 0.95)),
            us(quantile(&latencies, 0.99)),
        );
        let new = !std::path::Path::new(path).exists();
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| {
                if new {
                    f.write_all(header.as_bytes())?;
                }
                f.write_all(row.as_bytes())
            });
        if let Err(e) = written {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if config.verify {
        if mismatches > 0 {
            eprintln!("error: {mismatches} verdict mismatches");
            return ExitCode::FAILURE;
        }
        println!("verify: all {decided} verdicts match local contains_with");
    }
    ExitCode::SUCCESS
}
