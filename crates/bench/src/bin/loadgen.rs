//! `loadgen` — drive a running `flqd` with a seeded containment workload.
//!
//! ```text
//! loadgen --addr HOST:PORT [--requests N] [--concurrency N] [--batch N]
//!         [--pairs N] [--seed N] [--max-conjuncts N] [--verify]
//! ```
//!
//! Generates `--pairs` query pairs with the E4 workload generator
//! (seeded, so every run and every verifier sees the same pairs), then
//! fires `--requests` requests round-robin over them from
//! `--concurrency` client threads. `--batch N` groups N pairs per
//! `POST /v1/contains_batch` request instead of one per
//! `POST /v1/contains`. Prints latency quantiles and throughput.
//!
//! `--verify` recomputes every pair locally with `contains_with` under
//! the same options and exits `1` on any verdict mismatch — the
//! bit-identity check the CI server smoke test relies on. (With only
//! deterministic budgets in play — `--max-conjuncts`, never a deadline —
//! verdicts, including `exhausted` ones, are reproducible.)
//!
//! Exit codes: `0` success, `1` mismatch or transport failure, `2` usage.

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use flogic_bench::wire;
use flogic_core::{contains_with, ContainmentOptions, Verdict};
use flogic_gen::rng::SplitMix64;
use flogic_gen::{generalize, random_query, GeneralizeConfig, QueryGenConfig};
use flogic_model::ConjunctiveQuery;

struct Config {
    addr: String,
    requests: usize,
    concurrency: usize,
    batch: usize,
    pairs: usize,
    seed: u64,
    max_conjuncts: usize,
    verify: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--requests N] [--concurrency N] [--batch N] \
         [--pairs N] [--seed N] [--max-conjuncts N] [--verify]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Config, ExitCode> {
    let mut config = Config {
        addr: String::new(),
        requests: 100,
        concurrency: 1,
        batch: 1,
        pairs: 16,
        seed: 7,
        max_conjuncts: 50_000,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |what: &str| -> Result<usize, ExitCode> {
            it.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                eprintln!("error: {arg} needs {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(addr) => config.addr = addr,
                None => {
                    eprintln!("error: --addr needs an address");
                    return Err(usage());
                }
            },
            "--requests" => config.requests = num("a number")?,
            "--concurrency" => config.concurrency = num("a number")?,
            "--batch" => config.batch = num("a number")?,
            "--pairs" => config.pairs = num("a number")?,
            "--seed" => config.seed = num("a number")? as u64,
            "--max-conjuncts" => config.max_conjuncts = num("a number")?,
            "--verify" => config.verify = true,
            other => {
                eprintln!("error: unknown flag {other:?}");
                return Err(usage());
            }
        }
    }
    if config.addr.is_empty() {
        eprintln!("error: --addr is required");
        return Err(usage());
    }
    if config.requests == 0 || config.concurrency == 0 || config.batch == 0 || config.pairs == 0 {
        eprintln!("error: --requests, --concurrency, --batch and --pairs must be positive");
        return Err(usage());
    }
    Ok(config)
}

/// The E4 workload, first arm: random `q1`, generalized `q2`.
fn workload(pairs: usize, seed: u64) -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    (0..pairs as u64)
        .map(|i| {
            let q1 = random_query(&qcfg, &mut SplitMix64::seed_from_u64(seed.wrapping_add(i)));
            let q2 = generalize(
                &q1,
                &gcfg,
                &mut SplitMix64::seed_from_u64(seed.wrapping_add(i + 10_000)),
            );
            (q1, q2)
        })
        .collect()
}

/// The wire name of a locally computed verdict (matching
/// `flogic-serve`'s encoding).
fn local_verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Holds => "holds",
        Verdict::NotHolds => "not_holds",
        Verdict::Exhausted(_) => "exhausted",
    }
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(code) => return code,
    };
    let pairs = Arc::new(workload(config.pairs, config.seed));
    let texts: Arc<Vec<(String, String)>> = Arc::new(
        pairs
            .iter()
            .map(|(q1, q2)| {
                (
                    flogic_syntax::query_to_flogic(q1),
                    flogic_syntax::query_to_flogic(q2),
                )
            })
            .collect(),
    );

    // Local ground truth for --verify, computed once per distinct pair
    // under exactly the options the requests carry.
    let expected: Arc<Vec<&'static str>> = Arc::new(if config.verify {
        let opts = ContainmentOptions {
            max_conjuncts: config.max_conjuncts,
            ..Default::default()
        };
        pairs
            .iter()
            .map(|(q1, q2)| {
                local_verdict_name(
                    contains_with(q1, q2, &opts)
                        .expect("generated pairs decide without errors")
                        .verdict(),
                )
            })
            .collect()
    } else {
        Vec::new()
    });

    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let threads: Vec<_> = (0..config.concurrency)
        .map(|_| {
            let texts = Arc::clone(&texts);
            let expected = Arc::clone(&expected);
            let next = Arc::clone(&next);
            let addr = config.addr.clone();
            let (requests, batch, max_conjuncts, verify) = (
                config.requests,
                config.batch,
                config.max_conjuncts,
                config.verify,
            );
            thread::spawn(move || -> Result<(Vec<Duration>, usize), String> {
                let mut latencies = Vec::new();
                let mut mismatches = 0usize;
                loop {
                    let r = next.fetch_add(1, Ordering::Relaxed);
                    if r >= requests {
                        return Ok((latencies, mismatches));
                    }
                    // Round-robin over the pair list, batch-sized.
                    let picked: Vec<usize> =
                        (0..batch).map(|j| (r * batch + j) % texts.len()).collect();
                    let (path, body) = if batch == 1 {
                        let (q1, q2) = &texts[picked[0]];
                        (
                            "/v1/contains",
                            format!(
                                "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":{max_conjuncts}}}",
                                wire::json_quote(q1),
                                wire::json_quote(q2)
                            ),
                        )
                    } else {
                        let items: Vec<String> = picked
                            .iter()
                            .map(|&i| {
                                let (q1, q2) = &texts[i];
                                format!("[{},{}]", wire::json_quote(q1), wire::json_quote(q2))
                            })
                            .collect();
                        (
                            "/v1/contains_batch",
                            format!(
                                "{{\"pairs\":[{}],\"max_conjuncts\":{max_conjuncts}}}",
                                items.join(",")
                            ),
                        )
                    };
                    let t0 = Instant::now();
                    let (status, resp) = wire::post(&addr, path, &body)
                        .map_err(|e| format!("request failed: {e}"))?;
                    latencies.push(t0.elapsed());
                    if status != 200 {
                        return Err(format!("HTTP {status}: {resp}"));
                    }
                    if verify {
                        for (j, &i) in picked.iter().enumerate() {
                            let got = wire::nth_verdict(&resp, j)
                                .ok_or_else(|| format!("no verdict {j} in {resp}"))?;
                            if got != expected[i] {
                                eprintln!(
                                    "MISMATCH pair {i}: server says {got:?}, local says {:?}",
                                    expected[i]
                                );
                                mismatches += 1;
                            }
                        }
                    }
                }
            })
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::new();
    let mut mismatches = 0usize;
    for t in threads {
        match t.join().expect("client thread panicked") {
            Ok((lats, miss)) => {
                latencies.extend(lats);
                mismatches += miss;
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    let elapsed = started.elapsed();
    latencies.sort();
    let at = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    let decided = config.requests * config.batch;
    println!(
        "requests={} batch={} concurrency={} decided_pairs={}",
        config.requests, config.batch, config.concurrency, decided
    );
    println!(
        "latency_us min={:.0} p50={:.0} p95={:.0} max={:.0}",
        at(0.0).as_secs_f64() * 1e6,
        at(0.5).as_secs_f64() * 1e6,
        at(0.95).as_secs_f64() * 1e6,
        at(1.0).as_secs_f64() * 1e6,
    );
    println!(
        "throughput_pairs_per_s {:.0}",
        decided as f64 / elapsed.as_secs_f64()
    );
    if config.verify {
        if mismatches > 0 {
            eprintln!("error: {mismatches} verdict mismatches");
            return ExitCode::FAILURE;
        }
        println!("verify: all {decided} verdicts match local contains_with");
    }
    ExitCode::SUCCESS
}
