//! `validate_trace` — structural validator for `flq --trace-out` JSONL files.
//!
//! Usage: `cargo run -p flogic-bench --bin validate_trace -- <trace.jsonl>...`
//!
//! For each file, the validator re-parses every line with the strict
//! parser from `flogic_obs::export` and checks the invariants the tracer
//! promises:
//!
//! * every line is a well-formed flat JSON event object;
//! * within each worker, sequence numbers are strictly increasing (the
//!   per-worker rings are single-writer, so a snapshot lists each
//!   worker's events in emission order);
//! * every `rule_fired` names a `Σ_FL` rule in `rho1..rho12`;
//! * when a `bound` event is present, the observed chase depth (the
//!   maximum level any event mentions) stays within the Theorem 12 bound
//!   `2·|q1|·|q2|`.
//!
//! An empty file is a valid (empty) trace. Exit codes: `0` all files
//! valid, `1` any violation, `2` usage error.

use std::collections::HashMap;
use std::process::ExitCode;

use flogic_obs::{export, ChaseEvent, Recorded};

/// The largest chase level an event mentions, if it mentions one.
fn event_level(event: &ChaseEvent) -> Option<u64> {
    match event {
        ChaseEvent::RuleFired { level, .. } | ChaseEvent::NullInvented { level, .. } => {
            Some(u64::from(*level))
        }
        ChaseEvent::Frontier { max_level, .. } => Some(u64::from(*max_level)),
        _ => None,
    }
}

/// Validates one parsed trace; returns a list of violations.
fn validate(events: &[Recorded]) -> Vec<String> {
    let mut problems = Vec::new();
    let mut last_seq: HashMap<u32, u64> = HashMap::new();
    let mut observed_depth: u64 = 0;
    let mut theorem_bound: Option<u64> = None;
    for (i, rec) in events.iter().enumerate() {
        if let Some(prev) = last_seq.insert(rec.worker, rec.seq) {
            if rec.seq <= prev {
                problems.push(format!(
                    "event {}: worker {} seq {} not after {}",
                    i + 1,
                    rec.worker,
                    rec.seq,
                    prev
                ));
            }
        }
        if let Some(level) = event_level(&rec.event) {
            observed_depth = observed_depth.max(level);
        }
        if let ChaseEvent::Bound {
            theorem_bound: t, ..
        } = rec.event
        {
            theorem_bound = Some(theorem_bound.map_or(t, |prev: u64| prev.max(t)));
        }
    }
    if let Some(bound) = theorem_bound {
        if observed_depth > bound {
            problems.push(format!(
                "observed chase depth {observed_depth} exceeds the Theorem 12 bound {bound}"
            ));
        }
    }
    problems
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_trace <trace.jsonl>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let events = match export::parse_jsonl(&text) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                failed = true;
                continue;
            }
        };
        let problems = validate(&events);
        if problems.is_empty() {
            let workers: std::collections::HashSet<u32> = events.iter().map(|r| r.worker).collect();
            println!(
                "{path}: ok — {} events from {} worker(s)",
                events.len(),
                workers.len()
            );
        } else {
            for p in &problems {
                eprintln!("{path}: {p}");
            }
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
