//! Experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run -p flogic-bench --bin harness --release            # all experiments
//!   cargo run -p flogic-bench --bin harness --release -- e3 e5   # a subset
//!   cargo run -p flogic-bench --bin harness --release -- --quick # smaller workloads
//!
//! Tables are printed to stdout and exported as CSV under `bench_results/`.

use std::path::PathBuf;

use flogic_bench::experiments::{self, ExperimentOutput};

fn out_dir() -> PathBuf {
    // Relative to the invocation directory (usually the workspace root).
    PathBuf::from("bench_results")
}

fn run(id: &str, quick: bool) -> Option<ExperimentOutput> {
    let out = match id {
        "e1" => experiments::e1(),
        "e2" => experiments::e2(),
        "e3" => experiments::e3(),
        "e4" => {
            if quick {
                experiments::e4(15, 2)
            } else {
                experiments::e4(60, 5)
            }
        }
        "e5" => experiments::e5(if quick { 3 } else { 11 }),
        "e6" => experiments::e6(if quick { 20 } else { 100 }),
        "e7" => experiments::e7(),
        "e8" => experiments::e8(if quick { 5 } else { 15 }),
        _ => return None,
    };
    Some(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    if ids.is_empty() {
        ids = (1..=8).map(|i| format!("e{i}")).collect();
    }

    let dir = out_dir();
    for id in &ids {
        let Some(output) = run(id, quick) else {
            eprintln!("unknown experiment `{id}` (expected e1..e8)");
            std::process::exit(2);
        };
        for (i, table) in output.tables.iter().enumerate() {
            println!("{table}");
            let name = if output.tables.len() == 1 {
                format!("{id}.csv")
            } else {
                format!("{id}_{}.csv", (b'a' + i as u8) as char)
            };
            if let Err(e) = table.write_csv(&dir.join(&name)) {
                eprintln!("warning: could not write {name}: {e}");
            }
        }
        for note in &output.notes {
            println!("{note}");
        }
    }
    println!("CSV exports written to {}/", dir.display());
}
