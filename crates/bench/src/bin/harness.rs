//! Experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run -p flogic-bench --bin harness --release              # all experiments
//!   cargo run -p flogic-bench --bin harness --release -- e3 e5     # a subset
//!   cargo run -p flogic-bench --bin harness --release -- --quick   # smaller workloads
//!   cargo run -p flogic-bench --bin harness --release -- --threads 8 e9
//!
//! `--threads N` sets the worker count for the experiments that exercise
//! the parallel chase engine (`0` = all available cores); `--quick` shrinks
//! the workloads. Any other flag is an error. Tables are printed to stdout
//! and exported as CSV under `bench_results/`; each experiment is followed
//! by the engine metrics it accumulated (chase and hom wall-clock, cache
//! hits/misses, and the static-analysis fast-path counters, which are also
//! exported as `bench_results/analysis_counters.csv`). Resource-governor
//! stops (deadline hits, budget hits, cancellations) are tracked per
//! experiment and exported as `bench_results/governor_counters.csv`.
//! E10 additionally exports its aggregate chase profile as
//! `bench_results/rule_profile.csv` and `bench_results/level_growth.csv`.

use std::path::PathBuf;

use flogic_bench::experiments::{self, ExperimentOutput};
use flogic_bench::table::Table;
use flogic_term::Metrics;

fn out_dir() -> PathBuf {
    // Relative to the invocation directory (usually the workspace root).
    PathBuf::from("bench_results")
}

fn run(id: &str, quick: bool, threads: usize) -> Option<ExperimentOutput> {
    let out = match id {
        "e1" => experiments::e1(),
        "e2" => experiments::e2(),
        "e3" => experiments::e3(),
        "e4" => {
            if quick {
                experiments::e4(15, 2)
            } else {
                experiments::e4(60, 5)
            }
        }
        "e5" => experiments::e5(if quick { 3 } else { 11 }),
        "e6" => experiments::e6(if quick { 20 } else { 100 }),
        "e7" => experiments::e7(),
        "e8" => experiments::e8(if quick { 5 } else { 15 }),
        "e9" => {
            if quick {
                experiments::e9(3, 4, threads)
            } else {
                experiments::e9(5, 8, threads)
            }
        }
        "e10" => {
            if quick {
                experiments::e10(10, 3)
            } else {
                experiments::e10(40, 5)
            }
        }
        "e11" => {
            if quick {
                experiments::e11(6, 2)
            } else {
                experiments::e11(16, 4)
            }
        }
        "e12" => {
            if quick {
                experiments::e12(6, 2)
            } else {
                experiments::e12(16, 4)
            }
        }
        "e13" => {
            if quick {
                experiments::e13(40, 3)
            } else {
                experiments::e13(150, 5)
            }
        }
        "e14" => {
            if quick {
                experiments::e14(6, 2)
            } else {
                experiments::e14(12, 4)
            }
        }
        "e15" => {
            if quick {
                experiments::e15(6, 120)
            } else {
                experiments::e15(12, 400)
            }
        }
        "e16" => {
            if quick {
                experiments::e16(6, 2)
            } else {
                experiments::e16(12, 3)
            }
        }
        _ => return None,
    };
    Some(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut threads = 0usize; // 0 = all available cores
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--threads requires a number (0 = all cores)");
                    std::process::exit(2);
                };
                threads = n;
            }
            s if s.starts_with("--") => {
                eprintln!("unknown flag `{s}` (expected --quick or --threads N)");
                std::process::exit(2);
            }
            _ => ids.push(a.to_lowercase()),
        }
    }
    if ids.is_empty() {
        ids = (1..=16).map(|i| format!("e{i}")).collect();
    }

    let dir = out_dir();
    let mut counters = Table::new(
        "Static-analysis fast-path counters per experiment",
        &["experiment", "early_false", "early_true", "chased"],
    );
    let mut governor = Table::new(
        "Resource-governor stops per experiment",
        &[
            "experiment",
            "deadline_hits",
            "budget_hits",
            "cancellations",
        ],
    );
    for id in &ids {
        let before = Metrics::global().snapshot();
        let Some(output) = run(id, quick, threads) else {
            eprintln!("unknown experiment `{id}` (expected e1..e16)");
            std::process::exit(2);
        };
        for (i, table) in output.tables.iter().enumerate() {
            println!("{table}");
            let name = if output.tables.len() == 1 {
                format!("{id}.csv")
            } else {
                format!("{id}_{}.csv", (b'a' + i as u8) as char)
            };
            if let Err(e) = table.write_csv(&dir.join(&name)) {
                eprintln!("warning: could not write {name}: {e}");
            }
        }
        for note in &output.notes {
            println!("{note}");
        }
        for (name, contents) in &output.files {
            let path = dir.join(name);
            let written =
                std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, contents));
            if let Err(e) = written {
                eprintln!("warning: could not write {name}: {e}");
            }
        }
        let delta = Metrics::global().snapshot().since(&before);
        println!("[{id} metrics] {delta}\n");
        counters.push(vec![
            id.clone(),
            delta.analysis_early_false.to_string(),
            delta.analysis_early_true.to_string(),
            delta.analysis_chased.to_string(),
        ]);
        governor.push(vec![
            id.clone(),
            delta.governor_deadline_hits.to_string(),
            delta.governor_budget_hits.to_string(),
            delta.governor_cancellations.to_string(),
        ]);
    }
    if let Err(e) = counters.write_csv(&dir.join("analysis_counters.csv")) {
        eprintln!("warning: could not write analysis_counters.csv: {e}");
    }
    if let Err(e) = governor.write_csv(&dir.join("governor_counters.csv")) {
        eprintln!("warning: could not write governor_counters.csv: {e}");
    }
    println!("CSV exports written to {}/", dir.display());
}
