//! Experiment implementations for the benchmark harness.
//!
//! The paper is pure theory — no tables or figures to re-measure — so each
//! experiment here regenerates one of its *claims* as a table (see
//! DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
//! outputs):
//!
//! | id | claim |
//! |----|-------|
//! | E1 | the two worked containments of Section 2 (plus strictness and classical failure) |
//! | E2 | Example 1: ρ12+ρ4 rewrite the query head |
//! | E3 | Example 2 / Figure 1: chase-graph shape of the infinite chase |
//! | E4 | soundness of the Theorem 12 procedure vs naive deepening and concrete databases |
//! | E5 | scaling of the decision procedure in `|q1|`, `|q2|` (Theorem 13) |
//! | E6 | Σ_FL yields strictly more containments than classical CQ reasoning |
//! | E7 | the Theorem 12 level bound vs the level actually needed |
//! | E8 | `chase⁻` stays polynomial (Theorem 13, step 1) |
//! | E9 | repeated-query batches: decision cache, shared chase, parallel chase |
//! | E10 | tracer overhead A/B (disabled handle vs enabled) + exported chase profiles |
//! | E11 | `flqd` serving economics: cold vs warm latency, batch throughput by worker count |
//! | E12 | transport shapes over warm decisions: close vs keep-alive vs pipelined clients |
//! | E13 | Σ-admission classifier cost and derived chase bounds vs the Theorem 12 bound |
//! | E14 | semantic (canonicalized) cache keys vs raw keys on variant-heavy traffic |
//! | E15 | request-level observability overhead (spans + histograms + access log) and per-stage latency |

pub mod experiments;
pub mod microbench;
pub mod promstats;
pub mod table;
pub mod wire;

pub use table::Table;
