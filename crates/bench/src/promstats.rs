//! Scrape-side recovery of `flqd`'s stage histograms.
//!
//! `flqd` exposes its per-stage latency as cumulative Prometheus
//! histogram series (`flqd_stage_duration_nanoseconds_bucket{stage=...,
//! le=...}`). This module inverts that rendering back into
//! [`HistogramSnapshot`]s so clients can diff two scrapes and compute
//! percentiles over exactly the window between them — `loadgen
//! --server-stats` and experiment E15 both build on it.

use std::collections::HashMap;

use flogic_obs::{bucket_upper_bound, HistogramSnapshot, BUCKET_COUNT};

use crate::wire;

/// One Prometheus scrape of the server's observability state, reduced
/// to the parts clients diff: per-stage latency histograms and the
/// batch-dedup counter.
pub struct ServerStats {
    /// Stage name (`"parse"`, …, `"write"`) → recovered histogram.
    pub stages: HashMap<String, HistogramSnapshot>,
    /// The `flqd_batch_dedup_hits_total` counter.
    pub batch_dedup_hits: u64,
}

/// Fetches and parses `GET /metrics` from the server at `addr`.
pub fn scrape_server_stats(addr: &str) -> Result<ServerStats, String> {
    let (status, body) =
        wire::get(addr, "/metrics").map_err(|e| format!("metrics scrape failed: {e}"))?;
    if status != 200 {
        return Err(format!("metrics scrape answered HTTP {status}"));
    }
    parse_server_stats(&body)
}

/// Rebuilds per-stage [`HistogramSnapshot`]s from the cumulative
/// `flqd_stage_duration_nanoseconds_bucket{stage=...,le=...}` series
/// (the inverse of the server's exposition rendering).
pub fn parse_server_stats(body: &str) -> Result<ServerStats, String> {
    const BUCKET: &str = "flqd_stage_duration_nanoseconds_bucket{stage=\"";
    const SUM: &str = "flqd_stage_duration_nanoseconds_sum{stage=\"";
    let mut stages: HashMap<String, HistogramSnapshot> = HashMap::new();
    let mut batch_dedup_hits = 0;
    let bad = |line: &str| format!("cannot parse metrics line {line:?}");
    for line in body.lines() {
        if let Some(value) = line.strip_prefix("flqd_batch_dedup_hits_total ") {
            batch_dedup_hits = value.trim().parse().map_err(|_| bad(line))?;
        } else if let Some(rest) = line.strip_prefix(BUCKET) {
            let (stage, rest) = rest.split_once("\",le=\"").ok_or_else(|| bad(line))?;
            let (le, value) = rest.split_once("\"} ").ok_or_else(|| bad(line))?;
            let cum: u64 = value.trim().parse().map_err(|_| bad(line))?;
            let hist = stages.entry(stage.to_string()).or_default();
            if le == "+Inf" {
                hist.count = cum;
            } else {
                let upper: u64 = le.parse().map_err(|_| bad(line))?;
                let idx = (0..BUCKET_COUNT)
                    .find(|&i| bucket_upper_bound(i) == upper)
                    .ok_or_else(|| bad(line))?;
                hist.buckets[idx] = cum;
            }
        } else if let Some(rest) = line.strip_prefix(SUM) {
            let (stage, value) = rest.split_once("\"} ").ok_or_else(|| bad(line))?;
            stages.entry(stage.to_string()).or_default().sum =
                value.trim().parse().map_err(|_| bad(line))?;
        }
    }
    // The scraped buckets are cumulative (and rendered only up to the
    // highest non-empty one): de-cumulate in place.
    for hist in stages.values_mut() {
        let mut prev = 0u64;
        for bucket in hist.buckets.iter_mut() {
            let cum = (*bucket).max(prev);
            *bucket = cum - prev;
            prev = cum;
        }
    }
    Ok(ServerStats {
        stages,
        batch_dedup_hits,
    })
}

/// The histogram of what happened *between* two scrapes; `max` is
/// approximated by the upper bound of the highest bucket the window
/// touched (the server only exposes its lifetime max).
pub fn diff_snapshots(before: &HistogramSnapshot, after: &HistogramSnapshot) -> HistogramSnapshot {
    let mut diff = HistogramSnapshot::default();
    for i in 0..BUCKET_COUNT {
        diff.buckets[i] = after.buckets[i].saturating_sub(before.buckets[i]);
    }
    diff.count = after.count.saturating_sub(before.count);
    diff.sum = after.sum.saturating_sub(before.sum);
    diff.max = diff
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map(bucket_upper_bound)
        .unwrap_or(0);
    diff
}

/// The per-stage diff between two scrapes, in the server's canonical
/// stage order (missing stages diff as empty histograms).
pub fn diff_stages(
    before: &ServerStats,
    after: &ServerStats,
) -> Vec<(&'static str, HistogramSnapshot)> {
    let empty = HistogramSnapshot::default();
    flogic_serve::obs::STAGES
        .iter()
        .map(|&stage| {
            let b = before.stages.get(stage).unwrap_or(&empty);
            let a = after.stages.get(stage).unwrap_or(&empty);
            (stage, diff_snapshots(b, a))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_roundtrips_a_rendered_histogram() {
        let hist = flogic_obs::Histogram::new();
        for v in [0, 1, 2, 500, 70_000, 70_001, 1_000_000] {
            hist.record_nanos(v);
        }
        let mut body = String::from("# TYPE flqd_stage_duration_nanoseconds histogram\n");
        hist.snapshot().render_prometheus(
            &mut body,
            "flqd_stage_duration_nanoseconds",
            "stage=\"decide\"",
        );
        body.push_str("flqd_batch_dedup_hits_total 3\n");
        let stats = parse_server_stats(&body).expect("parses");
        assert_eq!(stats.batch_dedup_hits, 3);
        let decide = &stats.stages["decide"];
        assert_eq!(decide.count, 7);
        assert_eq!(decide.sum, hist.snapshot().sum);
        // Bucket contents survive the cumulative render + de-cumulate.
        assert_eq!(decide.buckets, hist.snapshot().buckets);
    }

    #[test]
    fn diff_isolates_the_window() {
        let hist = flogic_obs::Histogram::new();
        hist.record_nanos(100);
        let before = hist.snapshot();
        hist.record_nanos(1_000_000);
        hist.record_nanos(1_000_001);
        let diff = diff_snapshots(&before, &hist.snapshot());
        assert_eq!(diff.count, 2);
        assert_eq!(diff.sum, 2_000_001);
        // Both window values land in one bucket; p50 reads from it.
        assert!(
            diff.p50() >= 524_288,
            "p50 {} in the window's bucket",
            diff.p50()
        );
    }
}
