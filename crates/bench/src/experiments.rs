//! The experiments (see crate docs and DESIGN.md).

use std::sync::Arc;
use std::time::{Duration, Instant};

use flogic_gen::rng::SplitMix64;

use flogic_analysis::{classify_rule_set, SigmaClass};
use flogic_chase::{
    chase_bounded, chase_minus, find_mandatory_cycles, to_dot, to_text, ChaseOptions, ChaseOutcome,
};
use flogic_core::{
    bound_from_sizes, classic_contains, contains, contains_batch, contains_with, naive,
    theorem_bound, ContainmentOptions, DecisionCache,
};
use flogic_datalog::{answers, close_database, ClosureOptions};
use flogic_gen::{
    generalize, generalize_from_chase, mutate_variant, random_database, random_query,
    random_rule_set, DbGenConfig, GeneralizeConfig, QueryGenConfig, SigmaGenConfig,
};
use flogic_model::{Atom, ConjunctiveQuery, Pred, RuleSet};
use flogic_syntax::parse_query;
use flogic_term::{Metrics, Subst, Symbol, Term};

use crate::Table;

/// Output of one experiment: tables plus free-form notes/artifacts.
#[derive(Clone, Debug, Default)]
pub struct ExperimentOutput {
    /// The tables to print and export.
    pub tables: Vec<Table>,
    /// Extra artifacts (e.g. a DOT rendering) printed after the tables.
    pub notes: Vec<String>,
    /// Extra files to write verbatim under `bench_results/` as
    /// `(file name, contents)` — for exports that are not shaped like a
    /// [`Table`] (e.g. E10's profile CSVs).
    pub files: Vec<(String, String)>,
}

fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(seed)
}

/// Median wall-clock time of `reps` runs of `f`.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed();
            std::hint::black_box(out);
            dt
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn micros(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// The paper's four Section 2 queries.
pub fn paper_pairs() -> Vec<(&'static str, ConjunctiveQuery, ConjunctiveQuery)> {
    let q = |s: &str| parse_query(s).expect("paper query parses");
    vec![
        (
            "joinable-attributes",
            q("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_]."),
            q("qq(A,B) :- T1[A*=>T2], T2[B*=>_]."),
        ),
        (
            "mandatory-attribute",
            q("q(Att,Class,Type) :- Class[Att {1,*} *=> _], Class[Att*=>Type], _:Class."),
            q("qq(Att,Class,Type) :- Obj[Att->_], Obj:Class, Class[Att*=>Type]."),
        ),
    ]
}

// ---------------------------------------------------------------------------
// E1 — Section 2 worked containments.
// ---------------------------------------------------------------------------

/// E1: both worked containments of Section 2 hold under `Σ_FL`, are strict,
/// and fail classically.
pub fn e1() -> ExperimentOutput {
    let mut t = Table::new(
        "E1: Section 2 worked containments (expected: sigma=true, converse=false, classic=false)",
        &[
            "pair",
            "q subset qq (Sigma)",
            "qq subset q (Sigma)",
            "q subset qq (classic)",
            "time_us",
        ],
    );
    for (name, q1, q2) in paper_pairs() {
        let sigma = contains(&q1, &q2).expect("arity ok").holds();
        let conv = contains(&q2, &q1).expect("arity ok").holds();
        let classic = classic_contains(&q1, &q2).expect("arity ok");
        let dt = time_median(21, || contains(&q1, &q2).unwrap().holds());
        t.push(vec![
            name.into(),
            sigma.to_string(),
            conv.to_string(),
            classic.to_string(),
            micros(dt),
        ]);
    }
    ExperimentOutput {
        tables: vec![t],
        notes: vec![],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E2 — Example 1: head rewriting.
// ---------------------------------------------------------------------------

/// E2: the chase of Example 1 rewrites the head `(V1, V2)` to `(V1, V1)`.
pub fn e2() -> ExperimentOutput {
    let q = parse_query("q(V1, V2) :- data(O, A, V1), data(O, A, V2), funct(A, C), member(O, C).")
        .expect("Example 1 parses");
    let chase = chase_minus(&q);
    let mut t = Table::new(
        "E2: Example 1 head rewriting by rho12 + rho4",
        &["quantity", "value"],
    );
    t.push(vec!["head before chase".into(), "(V1, V2)".into()]);
    let head: Vec<String> = chase.head().iter().map(|x| x.to_string()).collect();
    t.push(vec![
        "head after chase".into(),
        format!("({})", head.join(", ")),
    ]);
    t.push(vec![
        "funct(A, O) derived".into(),
        chase
            .find(&Atom::funct(Term::var("A"), Term::var("O")))
            .is_some()
            .to_string(),
    ]);
    t.push(vec![
        "merges performed".into(),
        chase.stats().merges.to_string(),
    ]);
    let follows = contains(&q, &parse_query("qq(W, W) :- data(O, A, W).").unwrap())
        .unwrap()
        .holds();
    t.push(vec![
        "q subset qq(W,W) :- data(O,A,W)".into(),
        follows.to_string(),
    ]);
    ExperimentOutput {
        tables: vec![t],
        notes: vec![],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E3 — Example 2 / Figure 1: chase-graph shape.
// ---------------------------------------------------------------------------

/// E3: the chase graph of Example 2 — per-level census, cycle detection,
/// and the Figure 1 rendering (text + DOT artifact).
pub fn e3() -> ExperimentOutput {
    let q =
        parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").expect("Example 2 parses");
    let cycles = find_mandatory_cycles(q.body());
    let chase = chase_bounded(
        &q,
        &ChaseOptions {
            level_bound: 9,
            max_conjuncts: 100_000,
            ..Default::default()
        },
    )
    .expect("sequential chase cannot fail");

    let mut census = Table::new(
        "E3: Example 2 chase census per level (the rho5-rho1-rho6-rho10 pump)",
        &["level", "conjuncts", "data", "member", "type", "mandatory"],
    );
    for level in 0..=chase.max_level() {
        let ids = chase.at_level(level);
        let count_pred = |p: Pred| {
            ids.iter()
                .filter(|&&id| chase.atom(id).pred() == p)
                .count()
                .to_string()
        };
        census.push(vec![
            level.to_string(),
            ids.len().to_string(),
            count_pred(Pred::Data),
            count_pred(Pred::Member),
            count_pred(Pred::Type),
            count_pred(Pred::Mandatory),
        ]);
    }

    let mut facts = Table::new("E3: Example 2 facts", &["quantity", "value"]);
    facts.push(vec![
        "mandatory/type cycles in q".into(),
        cycles.len().to_string(),
    ]);
    facts.push(vec![
        "chase outcome at bound 9".into(),
        format!("{:?}", chase.outcome()),
    ]);
    facts.push(vec![
        "nulls invented".into(),
        chase.stats().nulls_invented.to_string(),
    ]);
    facts.push(vec![
        "cross-arcs".into(),
        chase.stats().cross_arcs.to_string(),
    ]);

    let text = to_text(&chase);
    let dot = to_dot(&chase);
    ExperimentOutput {
        tables: vec![facts, census],
        notes: vec![
            format!("Figure 1 (text rendering):\n{text}"),
            format!("DOT:\n{dot}"),
        ],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E4 — soundness cross-validation.
// ---------------------------------------------------------------------------

/// E4: verdict agreement between the Theorem 12 procedure, the naive
/// iterative-deepening baseline, and evaluation over concrete
/// `Σ_FL`-closed databases.
///
/// Pairs whose chase exceeds the conjunct cap are skipped and counted
/// separately — random variable-heavy queries can have chases that grow
/// exponentially *within* the Theorem 12 bound (the problem is NP-hard;
/// the cap keeps the harness total-time bounded).
pub fn e4(pairs: usize, dbs_per_pair: u64) -> ExperimentOutput {
    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    let copts = ContainmentOptions {
        level_bound: None,
        max_conjuncts: 50_000,
        ..Default::default()
    };

    let mut n_holds = 0usize;
    let mut n_rejects = 0usize;
    let mut n_vacuous = 0usize;
    let mut n_capped = 0usize;
    let mut naive_agree = 0usize;
    let mut naive_decided = 0usize;
    let mut db_checks = 0usize;
    let mut db_violations = 0usize;

    for i in 0..pairs as u64 {
        let q1 = random_query(&qcfg, &mut rng(i));
        let q2 = match i % 3 {
            0 => generalize(&q1, &gcfg, &mut rng(i + 10_000)),
            1 => match generalize_from_chase(&q1, &gcfg, &mut rng(i + 20_000)) {
                Some(q) => q,
                None => continue,
            },
            _ => {
                let alt = random_query(&qcfg, &mut rng(i + 30_000));
                if alt.arity() != q1.arity() {
                    continue;
                }
                alt
            }
        };
        let verdict = match contains_with(&q1, &q2, &copts) {
            Ok(v) if v.is_exhausted() => {
                n_capped += 1;
                continue;
            }
            Ok(v) => v,
            Err(e) => panic!("unexpected error: {e}"),
        };
        if verdict.is_vacuous() {
            n_vacuous += 1;
        } else if verdict.holds() {
            n_holds += 1;
        } else {
            n_rejects += 1;
        }

        match naive::contains_naive(&q1, &q2, 10, 20_000) {
            Ok(naive::NaiveOutcome::Holds { .. }) => {
                naive_decided += 1;
                if verdict.holds() {
                    naive_agree += 1;
                }
            }
            Ok(naive::NaiveOutcome::NotContained { .. }) => {
                naive_decided += 1;
                if !verdict.holds() {
                    naive_agree += 1;
                }
            }
            Ok(naive::NaiveOutcome::Unknown) | Err(flogic_core::CoreError::Exhausted { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }

        if verdict.holds() {
            for s in 0..dbs_per_pair {
                let db = random_database(&DbGenConfig::default(), &mut rng(i * 100 + s));
                let Ok((closed, _)) = close_database(&db, &ClosureOptions::default()) else {
                    continue;
                };
                db_checks += 1;
                if !answers(&q1, &closed).is_subset(&answers(&q2, &closed)) {
                    db_violations += 1;
                }
            }
        }
    }

    let mut t = Table::new(
        "E4: soundness cross-validation (expected: agreement 100%, violations 0)",
        &["quantity", "value"],
    );
    t.push(vec![
        "pairs checked".into(),
        (n_holds + n_rejects + n_vacuous).to_string(),
    ]);
    t.push(vec![
        "pairs over the resource cap".into(),
        n_capped.to_string(),
    ]);
    t.push(vec!["verdict contained".into(), n_holds.to_string()]);
    t.push(vec!["verdict not contained".into(), n_rejects.to_string()]);
    t.push(vec![
        "verdict vacuous (failed chase)".into(),
        n_vacuous.to_string(),
    ]);
    t.push(vec![
        "naive baseline agreement".into(),
        format!("{naive_agree}/{naive_decided}"),
    ]);
    t.push(vec!["database subset checks".into(), db_checks.to_string()]);
    t.push(vec![
        "database counterexamples".into(),
        db_violations.to_string(),
    ]);
    ExperimentOutput {
        tables: vec![t],
        notes: vec![],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E5 — scaling (Theorem 13).
// ---------------------------------------------------------------------------

/// Builds the `sub`-chain query `q(X0, Xn) :- sub(X0,X1), …, sub(X(n-1),Xn)`.
pub fn sub_chain(n: usize) -> ConjunctiveQuery {
    let v = |i: usize| Term::var(&format!("X{i}"));
    let body: Vec<Atom> = (0..n).map(|i| Atom::sub(v(i), v(i + 1))).collect();
    ConjunctiveQuery::new(Symbol::intern("chain"), vec![v(0), v(n)], body)
        .expect("chains are valid")
}

/// E5: decision time and chase size as `|q1|` and `|q2|` grow, on acyclic
/// chains (positive and negative instances) and on cyclic queries.
pub fn e5(reps: usize) -> ExperimentOutput {
    let mut chains = Table::new(
        "E5a: sub-chain workload — chain(n) subset chain(m) iff m <= n",
        &[
            "n (=|q1|)",
            "m (=|q2|)",
            "holds",
            "chase conjuncts",
            "time_us",
        ],
    );
    // Negative instances (m > n) force the hom search to exhaust an
    // exponentially large path space — the NP-hardness of CQ containment
    // made visible — so they are kept small; positive instances scale
    // further.
    for &(n, m) in &[
        (2usize, 2usize),
        (4, 2),
        (4, 4),
        (4, 6),
        (8, 4),
        (8, 8),
        (8, 10),
        (16, 8),
        (16, 16),
        (24, 24),
        (32, 32),
    ] {
        let q1 = sub_chain(n);
        let q2 = sub_chain(m);
        let r = contains(&q1, &q2).expect("arity ok");
        let dt = time_median(reps, || contains(&q1, &q2).unwrap().holds());
        assert_eq!(r.holds(), m <= n, "chain workload ground truth");
        chains.push(vec![
            n.to_string(),
            m.to_string(),
            r.holds().to_string(),
            r.chase_conjuncts().to_string(),
            micros(dt),
        ]);
    }

    let mut cyclic = Table::new(
        "E5b: cyclic workload — q1 has a mandatory cycle of length k, q2 probes d pump steps",
        &[
            "k",
            "d (=|q2|)",
            "holds",
            "bound",
            "chase conjuncts",
            "time_us",
        ],
    );
    for &(k, d) in &[
        (1usize, 1usize),
        (1, 3),
        (2, 2),
        (2, 4),
        (3, 3),
        (3, 6),
        (4, 4),
    ] {
        let q1 = cyclic_query(k);
        let q2 = pump_probe(k, d);
        let r = contains(&q1, &q2).expect("arity ok");
        let dt = time_median(reps, || contains(&q1, &q2).unwrap().holds());
        assert!(r.holds(), "pump probes are always produced by the cycle");
        cyclic.push(vec![
            k.to_string(),
            d.to_string(),
            r.holds().to_string(),
            r.level_bound().to_string(),
            r.chase_conjuncts().to_string(),
            micros(dt),
        ]);
    }

    let mut random = Table::new(
        "E5c: random workload — median time over 20 random pairs per size",
        &[
            "|q1| = |q2|",
            "median_us",
            "contained_fraction",
            "exhausted",
        ],
    );
    for &n in &[2usize, 4, 8, 12] {
        let cfg = QueryGenConfig {
            n_atoms: n,
            n_vars: n + 2,
            n_consts: 3,
            ..Default::default()
        };
        let mut times = Vec::new();
        let mut held = 0usize;
        let mut total = 0usize;
        let mut exhausted = 0usize;
        for seed in 0..20u64 {
            let q1 = random_query(&cfg, &mut rng(seed * 7 + n as u64));
            let q2 = generalize(
                &q1,
                &GeneralizeConfig::default(),
                &mut rng(seed * 13 + n as u64),
            );
            let t0 = Instant::now();
            let copts = ContainmentOptions {
                level_bound: None,
                max_conjuncts: 50_000,
                ..Default::default()
            };
            let r = contains_with(&q1, &q2, &copts).expect("arity ok");
            if r.is_exhausted() {
                // Resource-capped pair: excluded from the medians.
                exhausted += 1;
                continue;
            }
            times.push(t0.elapsed());
            total += 1;
            if r.holds() {
                held += 1;
            }
        }
        times.sort();
        random.push(vec![
            n.to_string(),
            micros(times[times.len() / 2]),
            format!("{held}/{total}"),
            exhausted.to_string(),
        ]);
    }

    ExperimentOutput {
        tables: vec![chains, cyclic, random],
        notes: vec![],
        files: vec![],
    }
}

/// A Boolean query holding a mandatory/type cycle of length `k`
/// (Section 4's infinite-chase pattern).
pub fn cyclic_query(k: usize) -> ConjunctiveQuery {
    let cfg = QueryGenConfig {
        n_atoms: 1,
        n_vars: 1,
        n_consts: 0,
        const_prob: 0.0,
        head_arity: 0,
        // One harmless member atom plus the injected cycle.
        pred_weights: [1, 0, 0, 0, 0, 0],
        cycle: Some(k),
    };
    random_query(&cfg, &mut rng(0))
}

/// A probe of `d` pump steps: `data(T0, a0, V1), data(V1, a1, V2), …` with
/// the cycle's attribute constants; produced by the chase of
/// [`cyclic_query`] at level ≈ 4·d.
pub fn pump_probe(k: usize, d: usize) -> ConjunctiveQuery {
    let v = |i: usize| Term::var(&format!("P{i}"));
    let attr = |i: usize| Term::constant(&format!("cyc_a{}", i % k));
    let mut body = vec![Atom::data(Term::constant("cyc_t0"), attr(0), v(1))];
    for i in 1..d {
        body.push(Atom::data(v(i), attr(i), v(i + 1)));
    }
    ConjunctiveQuery::new(Symbol::intern("probe"), vec![], body).expect("probe is valid")
}

// ---------------------------------------------------------------------------
// E6 — Σ_FL containments beyond classical.
// ---------------------------------------------------------------------------

/// E6: fraction of pairs contained classically vs under `Σ_FL`, on two
/// workloads (body generalizations vs chase generalizations), plus the
/// curated pairs where only `Σ_FL` succeeds.
pub fn e6(pairs: u64) -> ExperimentOutput {
    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();

    let mut t = Table::new(
        "E6: classical vs Sigma_FL containment rates",
        &[
            "workload",
            "pairs",
            "classic holds",
            "sigma holds",
            "sigma-only",
        ],
    );
    for (name, from_chase) in [("generalize(body)", false), ("generalize(chase)", true)] {
        let mut total = 0u64;
        let mut classic_n = 0u64;
        let mut sigma_n = 0u64;
        let mut only = 0u64;
        for seed in 0..pairs {
            let q1 = random_query(&qcfg, &mut rng(seed));
            let q2 = if from_chase {
                match generalize_from_chase(&q1, &gcfg, &mut rng(seed + 40_000)) {
                    Some(q) => q,
                    None => continue,
                }
            } else {
                generalize(&q1, &gcfg, &mut rng(seed + 50_000))
            };
            let copts = ContainmentOptions {
                level_bound: None,
                max_conjuncts: 50_000,
                ..Default::default()
            };
            let r = contains_with(&q1, &q2, &copts).expect("arity ok");
            if r.is_exhausted() {
                continue; // resource-capped pair
            }
            total += 1;
            let c = classic_contains(&q1, &q2).expect("arity ok");
            let s = r.holds();
            assert!(!c || s, "classic must imply sigma");
            if c {
                classic_n += 1;
            }
            if s {
                sigma_n += 1;
            }
            if s && !c {
                only += 1;
            }
        }
        t.push(vec![
            name.into(),
            total.to_string(),
            classic_n.to_string(),
            sigma_n.to_string(),
            only.to_string(),
        ]);
    }

    let mut curated = Table::new(
        "E6b: curated sigma-only containments",
        &["q1", "q2", "classic", "sigma"],
    );
    let cases = [
        ("q(X,Z) :- sub(X,Y), sub(Y,Z).", "p(X,Z) :- sub(X,Z)."),
        ("q(O,D) :- member(O,C), sub(C,D).", "p(O,D) :- member(O,D)."),
        (
            "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].",
            "p(A,B) :- T1[A*=>T2], T2[B*=>_].",
        ),
        ("q(O) :- mandatory(a, O).", "p(O) :- data(O, a, V)."),
        (
            "q(O,T) :- member(O,C), type(C,a,T).",
            "p(O,T) :- type(O,a,T).",
        ),
    ];
    for (s1, s2) in cases {
        let q1 = parse_query(s1).expect("curated parses");
        let q2 = parse_query(s2).expect("curated parses");
        let c = classic_contains(&q1, &q2).expect("arity ok");
        let s = contains(&q1, &q2).expect("arity ok").holds();
        curated.push(vec![s1.into(), s2.into(), c.to_string(), s.to_string()]);
    }
    ExperimentOutput {
        tables: vec![t, curated],
        notes: vec![],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E7 — bound tightness (Lemmas 9/11, Theorem 12).
// ---------------------------------------------------------------------------

/// E7: the level at which the witness homomorphism actually appears vs the
/// Theorem 12 bound `2·|q1|·|q2|`, on cyclic workloads.
pub fn e7() -> ExperimentOutput {
    let mut t = Table::new(
        "E7: witness level vs Theorem 12 bound (cyclic pump workloads)",
        &["k", "d", "|q1|", "|q2|", "bound", "witness level", "slack"],
    );
    for &(k, d) in &[
        (1usize, 1usize),
        (1, 2),
        (1, 4),
        (2, 2),
        (2, 4),
        (3, 3),
        (4, 4),
        (2, 6),
    ] {
        let q1 = cyclic_query(k);
        let q2 = pump_probe(k, d);
        let bound = theorem_bound(&q1, &q2);
        let outcome = naive::contains_naive(&q1, &q2, bound, 2_000_000).expect("arity ok");
        let naive::NaiveOutcome::Holds { level } = outcome else {
            panic!("pump probe must be contained within the bound, got {outcome:?}");
        };
        t.push(vec![
            k.to_string(),
            d.to_string(),
            q1.size().to_string(),
            q2.size().to_string(),
            bound.to_string(),
            level.to_string(),
            (bound - level).to_string(),
        ]);
    }
    ExperimentOutput {
        tables: vec![t],
        notes: vec![
            "The witness always appears within the Theorem 12 bound; the slack \
             shows the bound is conservative (its tightness is the paper's open \
             lower-bound question)."
                .into(),
        ],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E8 — chase⁻ is polynomial.
// ---------------------------------------------------------------------------

/// E8: `chase⁻` size and time on random acyclic queries of growing size.
pub fn e8(reps: usize) -> ExperimentOutput {
    let mut t = Table::new(
        "E8: chase-minus growth on random acyclic queries (Theorem 13 step 1 is polynomial)",
        &["|q|", "median conjuncts", "max conjuncts", "median_us"],
    );
    for &n in &[2usize, 4, 8, 16, 32, 64] {
        let cfg = QueryGenConfig {
            n_atoms: n,
            n_vars: n,
            n_consts: 4,
            ..Default::default()
        };
        let mut sizes = Vec::new();
        let mut times = Vec::new();
        for seed in 0..reps as u64 {
            let q = random_query(&cfg, &mut rng(seed * 31 + n as u64));
            let t0 = Instant::now();
            let chase = chase_minus(&q);
            times.push(t0.elapsed());
            if !chase.is_failed() {
                assert_eq!(chase.outcome(), ChaseOutcome::Completed);
                sizes.push(chase.len());
            }
        }
        sizes.sort_unstable();
        times.sort();
        t.push(vec![
            n.to_string(),
            sizes.get(sizes.len() / 2).copied().unwrap_or(0).to_string(),
            sizes.last().copied().unwrap_or(0).to_string(),
            micros(times[times.len() / 2]),
        ]);
    }
    ExperimentOutput {
        tables: vec![t],
        notes: vec![],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E9 — repeated-query batches: decision cache, shared chase, parallel chase.
// ---------------------------------------------------------------------------

/// E9: the same containment workload decided four ways — one `contains_with`
/// call per pair, `contains_batch` (one shared chase of `q1`), and a
/// [`DecisionCache`] in both single-pair and batch mode — plus the parallel
/// chase engine at several thread counts.
///
/// The workload repeats each distinct `q2` several times under fresh
/// variable names, the shape a query optimiser produces when it re-asks the
/// same containment question for syntactically distinct rewrites. The cache
/// canonicalizes the renames away, so only the first occurrence pays for a
/// chase + hom search.
pub fn e9(distinct: usize, repeats: usize, threads: usize) -> ExperimentOutput {
    let q1 = cyclic_query(2);
    let copts = ContainmentOptions {
        level_bound: None,
        max_conjuncts: 200_000,
        ..Default::default()
    };

    // `distinct` probe shapes, each repeated `repeats` times under fresh
    // variable names (every rename adds another `'` to each variable).
    let mut q2s: Vec<ConjunctiveQuery> = Vec::new();
    for d in 1..=distinct {
        let base = pump_probe(2, d);
        let mut copy = base.clone();
        for _ in 0..repeats {
            q2s.push(copy.clone());
            copy = copy.rename_apart(&copy);
        }
    }

    let metrics = flogic_term::Metrics::global();
    let time_total = |f: &mut dyn FnMut() -> Vec<bool>| -> (Vec<bool>, Duration) {
        let t0 = Instant::now();
        let verdicts = f();
        (verdicts, t0.elapsed())
    };

    let (singles, t_singles) = time_total(&mut || {
        q2s.iter()
            .map(|q2| contains_with(&q1, q2, &copts).expect("within cap").holds())
            .collect()
    });

    let (batched, t_batch) = time_total(&mut || {
        contains_batch(&q1, &q2s, &copts)
            .into_iter()
            .map(|r| r.expect("within cap").holds())
            .collect()
    });

    let cache = DecisionCache::new();
    let before = metrics.snapshot();
    let (cached, t_cache) = time_total(&mut || {
        q2s.iter()
            .map(|q2| {
                cache
                    .contains_with(&q1, q2, &copts)
                    .expect("within cap")
                    .holds()
            })
            .collect()
    });
    let cache_delta = metrics.snapshot().since(&before);

    let cache2 = DecisionCache::new();
    let before = metrics.snapshot();
    let (cached_batch, t_cache_batch) = time_total(&mut || {
        cache2
            .contains_batch(&q1, &q2s, &copts)
            .into_iter()
            .map(|r| r.expect("within cap").holds())
            .collect()
    });
    let cache_batch_delta = metrics.snapshot().since(&before);

    assert_eq!(singles, batched, "batch must agree with singles");
    assert_eq!(singles, cached, "cache must agree with singles");
    assert_eq!(
        singles, cached_batch,
        "cached batch must agree with singles"
    );

    let n = q2s.len();
    let speedup = |t: Duration| format!("{:.2}x", t_singles.as_secs_f64() / t.as_secs_f64());
    let mut t = Table::new(
        "E9a: repeated-query batch — same verdicts, shared work (expected: speedup > 1 for cache)",
        &[
            "strategy",
            "decisions",
            "total_ms",
            "per_decision_us",
            "speedup",
            "cache hits",
            "cache misses",
        ],
    );
    let ms = |d: Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    let per = |d: Duration| format!("{:.1}", d.as_secs_f64() * 1e6 / n as f64);
    t.push(vec![
        "contains_with per pair".into(),
        n.to_string(),
        ms(t_singles),
        per(t_singles),
        "1.00x".into(),
        "-".into(),
        "-".into(),
    ]);
    t.push(vec![
        "contains_batch (shared chase)".into(),
        n.to_string(),
        ms(t_batch),
        per(t_batch),
        speedup(t_batch),
        "-".into(),
        "-".into(),
    ]);
    t.push(vec![
        "DecisionCache per pair".into(),
        n.to_string(),
        ms(t_cache),
        per(t_cache),
        speedup(t_cache),
        cache_delta.cache_hits.to_string(),
        cache_delta.cache_misses.to_string(),
    ]);
    t.push(vec![
        "DecisionCache + contains_batch".into(),
        n.to_string(),
        ms(t_cache_batch),
        per(t_cache_batch),
        speedup(t_cache_batch),
        cache_batch_delta.cache_hits.to_string(),
        cache_batch_delta.cache_misses.to_string(),
    ]);

    // Parallel chase: Example 2's infinite chase, cut at a fixed level, is
    // re-run at several thread counts; the results must be identical.
    let example2 =
        parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").expect("Example 2 parses");
    let chase_at = |workers: usize| {
        chase_bounded(
            &example2,
            &ChaseOptions {
                level_bound: 11,
                max_conjuncts: 500_000,
                threads: workers,
                ..Default::default()
            },
        )
        .expect("no worker failure expected")
    };
    let baseline = chase_at(1);
    let mut pt = Table::new(
        "E9b: parallel chase of Example 2 (level bound 11; expected: identical = true)",
        &[
            "threads",
            "conjuncts",
            "max level",
            "time_ms",
            "identical to threads=1",
        ],
    );
    let mut thread_counts = vec![1usize, 2, 4];
    if threads > 0 && !thread_counts.contains(&threads) {
        thread_counts.push(threads);
    }
    for workers in thread_counts {
        let chase = chase_at(workers);
        let dt = time_median(3, || chase_at(workers).len());
        let identical = chase.len() == baseline.len()
            && chase.max_level() == baseline.max_level()
            && chase.outcome() == baseline.outcome()
            && chase.stats() == baseline.stats();
        pt.push(vec![
            workers.to_string(),
            chase.len().to_string(),
            chase.max_level().to_string(),
            format!("{:.2}", dt.as_secs_f64() * 1e3),
            identical.to_string(),
        ]);
    }

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    ExperimentOutput {
        tables: vec![t, pt],
        notes: vec![format!(
            "E9 workload: {distinct} distinct probes x {repeats} renamed repeats = {n} decisions \
             against one q1 (mandatory cycle of length 2). Host reports {cores} core(s): \
             with a single core the parallel engine can only demonstrate determinism, \
             not speedup."
        )],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E10 — overhead of the tracing layer + exported chase profiles.
// ---------------------------------------------------------------------------

/// E10: A/B microbenchmark of the disabled tracer on the E4 workload, plus
/// an enabled pass whose aggregate [`ChaseProfile`](flogic_obs::ChaseProfile)
/// is exported as `rule_profile.csv` and `level_growth.csv`.
///
/// The disabled handle is measured twice: the spread between the two
/// disabled runs is the noise floor the enabled-run overhead must be read
/// against. The acceptance bar is disabled-vs-disabled ≈ enabled overhead
/// (the disabled handle costs one branch per site).
pub fn e10(pairs: usize, reps: usize) -> ExperimentOutput {
    use flogic_obs::{export, ChaseProfile, TraceHandle, Tracer};

    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    // Pre-generate the workload so every configuration decides the
    // identical pair list (the E4 generator, first arm).
    let workload: Vec<(ConjunctiveQuery, ConjunctiveQuery)> = (0..pairs as u64)
        .map(|i| {
            let q1 = random_query(&qcfg, &mut rng(i));
            let q2 = generalize(&q1, &gcfg, &mut rng(i + 10_000));
            (q1, q2)
        })
        .collect();

    let decide_all = |trace: &TraceHandle| -> usize {
        let opts = ContainmentOptions {
            max_conjuncts: 50_000,
            trace: trace.clone(),
            ..Default::default()
        };
        workload
            .iter()
            .filter(|(q1, q2)| {
                contains_with(q1, q2, &opts).is_ok_and(|v| !v.is_exhausted() && v.holds())
            })
            .count()
    };

    // A/B protocol: the disabled handle is benchmarked twice with the
    // vendored microbench runner (warmed up, batch-sized, min-of-samples),
    // then the enabled handle with one long-lived tracer (ring allocation
    // is a per-profiling-session cost, not a per-decision cost). The
    // minimum is the robust statistic here: the A/B claim is about the
    // instrumentation's intrinsic cost, not scheduler noise.
    let mut runner = crate::microbench::Runner::new("e10");
    runner.samples(reps.max(2)).min_sample_ms(5);
    runner.bench("disabled_a", || decide_all(&TraceHandle::Disabled));
    runner.bench("disabled_b", || decide_all(&TraceHandle::Disabled));
    let tracer = Tracer::with_default_capacity();
    let enabled_handle = TraceHandle::enabled(&tracer);
    runner.bench("enabled", || decide_all(&enabled_handle));
    let [disabled_a, disabled_b, enabled] = runner.results() else {
        unreachable!("three benches recorded");
    };

    let pct = |num: f64, base: f64| {
        if base > 0.0 {
            format!("{:+.2}%", (num - base) / base * 100.0)
        } else {
            "n/a".into()
        }
    };
    let base = disabled_a
        .min
        .as_secs_f64()
        .min(disabled_b.min.as_secs_f64());
    let mut t = Table::new(
        "E10: tracer overhead on the E4 workload (expected: disabled A/B within \
         noise of each other; enabled pays only for event appends)",
        &[
            "config",
            "workload min",
            "workload median",
            "vs disabled best",
        ],
    );
    for (label, s) in [
        ("tracing disabled (run A)", &disabled_a),
        ("tracing disabled (run B)", &disabled_b),
        ("tracing enabled", &enabled),
    ] {
        t.push(vec![
            label.into(),
            micros(s.min),
            micros(s.median),
            pct(s.min.as_secs_f64(), base),
        ]);
    }

    // Profile pass: one tracer per pair (fresh rings, so nothing is
    // dropped between pairs), aggregated into a single workload profile.
    let mut profile = ChaseProfile::default();
    for (q1, q2) in &workload {
        let tracer = Tracer::with_default_capacity();
        let opts = ContainmentOptions {
            max_conjuncts: 50_000,
            trace: TraceHandle::enabled(&tracer),
            ..Default::default()
        };
        let _ = contains_with(q1, q2, &opts);
        profile.absorb(&ChaseProfile::from_snapshot(&tracer.snapshot()));
    }

    ExperimentOutput {
        tables: vec![t],
        notes: vec![format!(
            "E10 workload: {pairs} generated containment pairs (E4 generator); \
             each config benched over {reps} batch-sized samples (min is the \
             headline). Aggregate profile over the traced pass: {} rule \
             firings, observed depth {} (exported as rule_profile.csv and \
             level_growth.csv).",
            profile.total_firings(),
            profile.observed_depth,
        )],
        files: vec![
            (
                "rule_profile.csv".into(),
                export::rule_profile_csv(&profile),
            ),
            (
                "level_growth.csv".into(),
                export::level_growth_csv(&profile),
            ),
        ],
    }
}

/// E11: `flqd` serving economics — the cost of a containment decision
/// over the wire, cold (first sight of a `q1`: the server chases) versus
/// warm (decision and snapshot caches resident), and batch throughput as
/// the worker pool grows.
///
/// For each worker count an in-process server is started fresh (cold
/// caches), the same `distinct`-pair workload (the E4 generator, first
/// arm) is sent once cold and `repeats` rounds warm over
/// `POST /v1/contains`, and then `workers` concurrent clients each post
/// the full pair list `repeats` times via `POST /v1/contains_batch`.
/// Expected shape: warm p50 well below cold p50 (the chase amortized
/// away), batch throughput scaling with workers until decisions, not
/// transport, dominate.
pub fn e11(distinct: usize, repeats: usize) -> ExperimentOutput {
    use crate::wire;
    use flogic_serve::{Server, ServerConfig};
    use std::sync::Arc;

    // Heavier queries than E4's defaults: on loopback a request costs
    // ~1ms of transport, so the cold chase must be comfortably more
    // expensive than that for the cold/warm contrast to be visible.
    let qcfg = QueryGenConfig {
        n_atoms: 7,
        n_vars: 5,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    let texts: Arc<Vec<(String, String)>> = Arc::new(
        (0..distinct as u64)
            .map(|i| {
                let q1 = random_query(&qcfg, &mut rng(i));
                let q2 = generalize(&q1, &gcfg, &mut rng(i + 10_000));
                (
                    flogic_syntax::query_to_flogic(&q1),
                    flogic_syntax::query_to_flogic(&q2),
                )
            })
            .collect(),
    );
    let contains_body = |q1: &str, q2: &str| {
        format!(
            "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":50000}}",
            wire::json_quote(q1),
            wire::json_quote(q2)
        )
    };
    let batch_body = {
        let items: Vec<String> = texts
            .iter()
            .map(|(q1, q2)| format!("[{},{}]", wire::json_quote(q1), wire::json_quote(q2)))
            .collect();
        Arc::new(format!(
            "{{\"pairs\":[{}],\"max_conjuncts\":50000}}",
            items.join(",")
        ))
    };
    let median = |mut samples: Vec<Duration>| -> Duration {
        samples.sort();
        samples[samples.len() / 2]
    };

    let mut t = Table::new(
        "E11: flqd serving economics (cold chase vs warm caches, batch throughput by workers)",
        &[
            "workers",
            "connect_p50_us",
            "cold_p50_us",
            "warm_p50_us",
            "warm_speedup",
            "batch_pairs_per_s",
        ],
    );
    for workers in [1usize, 2, 4] {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            ..ServerConfig::default()
        })
        .expect("bind in-process server");
        let addr = Arc::new(server.local_addr().expect("local addr").to_string());
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());

        // A fresh connection per request (the worst-case client), but
        // timed as two phases so TCP handshake cost never pollutes the
        // decision numbers.
        let shoot = |q1: &str, q2: &str| -> (Duration, Duration) {
            let mut client = wire::Client::connect(&addr).expect("connect");
            let t0 = Instant::now();
            let (status, body) = client
                .post("/v1/contains", &contains_body(q1, q2))
                .expect("request");
            assert_eq!(status, 200, "{body}");
            (client.connect_time(), t0.elapsed())
        };
        let mut connects = Vec::new();
        // Cold: first sight of every pair on a fresh server.
        let cold = median(
            texts
                .iter()
                .map(|(q1, q2)| {
                    let (connect, request) = shoot(q1, q2);
                    connects.push(connect);
                    request
                })
                .collect(),
        );
        // Warm: the same pairs again, now answered from the caches.
        let warm = median(
            (0..repeats.max(1))
                .flat_map(|_| {
                    texts
                        .iter()
                        .map(|(q1, q2)| {
                            let (connect, request) = shoot(q1, q2);
                            connects.push(connect);
                            request
                        })
                        .collect::<Vec<_>>()
                })
                .collect(),
        );
        let connect = median(connects);

        // Batch throughput: one client per worker, each posting the full
        // pair list `repeats` times.
        let t0 = Instant::now();
        let clients: Vec<_> = (0..workers)
            .map(|_| {
                let addr = Arc::clone(&addr);
                let batch_body = Arc::clone(&batch_body);
                let reps = repeats.max(1);
                std::thread::spawn(move || {
                    for _ in 0..reps {
                        let (status, body) =
                            wire::post(&addr, "/v1/contains_batch", &batch_body).expect("batch");
                        assert_eq!(status, 200, "{body}");
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client");
        }
        let batch_pairs = workers * repeats.max(1) * texts.len();
        let throughput = batch_pairs as f64 / t0.elapsed().as_secs_f64();

        handle.shutdown();
        join.join().expect("server thread").expect("clean drain");

        t.push(vec![
            workers.to_string(),
            micros(connect),
            micros(cold),
            micros(warm),
            format!("{:.1}x", cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)),
            format!("{throughput:.0}"),
        ]);
    }
    ExperimentOutput {
        tables: vec![t],
        notes: vec![format!(
            "{distinct} distinct pairs; warm rounds repeat the identical requests, so the \
             decision cache answers them without re-chasing. Batch rows post all pairs per \
             request from one client per worker. Every request opens a fresh connection; \
             connect_p50_us reports that handshake phase separately so cold/warm reflect \
             request time only (see E12 for kept-alive and pipelined clients)."
        )],
        files: vec![],
    }
}

/// E12: blocking-vs-reactor client economics — what the transport shape
/// costs once decisions are warm.
///
/// One server, one warm workload, three client shapes over
/// `POST /v1/contains`: a fresh connection per request (`close`, the
/// only mode the pre-reactor server supported), one kept-alive
/// connection (`keep-alive`), and a kept-alive connection with a window
/// of requests in flight (`pipeline`). A local baseline row decides the
/// same pairs in-process with `contains_with` — the raw decision cost
/// with no transport at all.
///
/// Expected shape: keep-alive within ~2× the raw warm decision cost
/// (one loopback round trip plus JSON framing), pipelining amortizing
/// the round trip below it, and `close` paying the extra handshake —
/// reported separately, never folded into request time.
pub fn e12(distinct: usize, repeats: usize) -> ExperimentOutput {
    use crate::wire;
    use flogic_serve::{Server, ServerConfig};

    const PIPELINE_WINDOW: usize = 8;

    // The E11 workload, so the two tables are directly comparable.
    let qcfg = QueryGenConfig {
        n_atoms: 7,
        n_vars: 5,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    let pairs: Vec<(ConjunctiveQuery, ConjunctiveQuery)> = (0..distinct as u64)
        .map(|i| {
            let q1 = random_query(&qcfg, &mut rng(i));
            let q2 = generalize(&q1, &gcfg, &mut rng(i + 10_000));
            (q1, q2)
        })
        .collect();
    let texts: Vec<(String, String)> = pairs
        .iter()
        .map(|(q1, q2)| {
            (
                flogic_syntax::query_to_flogic(q1),
                flogic_syntax::query_to_flogic(q2),
            )
        })
        .collect();
    let bodies: Vec<String> = texts
        .iter()
        .map(|(q1, q2)| {
            format!(
                "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":50000}}",
                wire::json_quote(q1),
                wire::json_quote(q2)
            )
        })
        .collect();
    let median = |mut samples: Vec<Duration>| -> Duration {
        samples.sort();
        samples[samples.len() / 2]
    };
    let rounds = repeats.max(1);

    // Local baseline: deciding a pair given its *text* — parse both
    // queries, then decide — warm (one unmeasured round first, exactly
    // like the server's warmup below). Parsing belongs to the decision,
    // not the transport: the wire carries text, and so does `flq
    // contains`.
    let opts = ContainmentOptions {
        max_conjuncts: 50_000,
        ..ContainmentOptions::default()
    };
    for (q1, q2) in &pairs {
        let _ = contains_with(q1, q2, &opts).expect("baseline decision");
    }
    let decision = median(
        (0..rounds)
            .flat_map(|_| {
                texts.iter().map(|(t1, t2)| {
                    let t0 = Instant::now();
                    let q1 = flogic_syntax::parse_query(t1).expect("baseline parse");
                    let q2 = flogic_syntax::parse_query(t2).expect("baseline parse");
                    let _ = contains_with(&q1, &q2, &opts).expect("baseline decision");
                    t0.elapsed()
                })
            })
            .collect(),
    );

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind in-process server");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    // Warm every pair once so each mode below measures steady state.
    {
        let mut client = wire::Client::connect(&addr).expect("connect");
        for body in &bodies {
            let (status, resp) = client.post("/v1/contains", body).expect("warmup");
            assert_eq!(status, 200, "{resp}");
        }
    }

    let mut t = Table::new(
        "E12: client shapes over warm decisions (close vs keep-alive vs pipelined vs no transport)",
        &[
            "mode",
            "connect_p50_us",
            "warm_p50_us",
            "vs_decision",
            "pairs_per_s",
        ],
    );
    let ratio = |warm: Duration| -> String {
        format!(
            "{:.1}x",
            warm.as_secs_f64() / decision.as_secs_f64().max(1e-9)
        )
    };
    let throughput = |n: usize, elapsed: Duration| -> String {
        format!("{:.0}", n as f64 / elapsed.as_secs_f64().max(1e-9))
    };

    // close: a fresh connection per request, phases timed separately.
    {
        let mut connects = Vec::new();
        let mut requests = Vec::new();
        let t0 = Instant::now();
        for _ in 0..rounds {
            for body in &bodies {
                let mut client = wire::Client::connect(&addr).expect("connect");
                connects.push(client.connect_time());
                let r0 = Instant::now();
                let (status, resp) = client.post("/v1/contains", body).expect("request");
                requests.push(r0.elapsed());
                assert_eq!(status, 200, "{resp}");
            }
        }
        let elapsed = t0.elapsed();
        let warm = median(requests);
        t.push(vec![
            "close".into(),
            micros(median(connects)),
            micros(warm),
            ratio(warm),
            throughput(rounds * bodies.len(), elapsed),
        ]);
    }

    // keep-alive: one connection for everything.
    {
        let mut client = wire::Client::connect(&addr).expect("connect");
        let connect = client.connect_time();
        let mut requests = Vec::new();
        let t0 = Instant::now();
        for _ in 0..rounds {
            for body in &bodies {
                let r0 = Instant::now();
                let (status, resp) = client.post("/v1/contains", body).expect("request");
                requests.push(r0.elapsed());
                assert_eq!(status, 200, "{resp}");
            }
        }
        let elapsed = t0.elapsed();
        let warm = median(requests);
        t.push(vec![
            "keep-alive".into(),
            micros(connect),
            micros(warm),
            ratio(warm),
            throughput(rounds * bodies.len(), elapsed),
        ]);
    }

    // pipeline: windows of requests in flight on one connection;
    // per-request time is the window round trip shared evenly.
    {
        let mut client = wire::Client::connect(&addr).expect("connect");
        let connect = client.connect_time();
        let mut requests = Vec::new();
        let t0 = Instant::now();
        for _ in 0..rounds {
            for window in bodies.chunks(PIPELINE_WINDOW) {
                let r0 = Instant::now();
                let responses = client
                    .post_pipelined("/v1/contains", window)
                    .expect("pipelined request");
                let per_request = r0.elapsed() / window.len() as u32;
                for (status, resp) in &responses {
                    assert_eq!(*status, 200, "{resp}");
                    requests.push(per_request);
                }
            }
        }
        let elapsed = t0.elapsed();
        let warm = median(requests);
        t.push(vec![
            format!("pipeline-{PIPELINE_WINDOW}"),
            micros(connect),
            micros(warm),
            ratio(warm),
            throughput(rounds * bodies.len(), elapsed),
        ]);
    }

    handle.shutdown();
    join.join().expect("server thread").expect("clean drain");

    t.push(vec![
        "decision (no transport)".into(),
        "-".into(),
        micros(decision),
        "1.0x".into(),
        "-".into(),
    ]);

    ExperimentOutput {
        tables: vec![t],
        notes: vec![format!(
            "{distinct} distinct pairs, {rounds} warm round(s) per mode, decisions warmed \
             before measuring. vs_decision compares each transport shape against deciding \
             the same pairs in-process; keep-alive is the shape the CI latency gate holds \
             under its budget."
        )],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E13 — Σ-admission classifier cost and derived bounds.
// ---------------------------------------------------------------------------

/// E13: cost of the Σ-admission classifier on generated TGD/EGD sets,
/// class frequencies per set size, and the derived chase level bound
/// compared against the Theorem 12 bound for a fixed query-pair size.
///
/// `sets_per_size` rule sets are generated at each size in the sweep and
/// classified; `reps` repetitions feed the per-set median timing. The
/// bound columns use body sizes `n1 = n2 = 4`, so the Theorem 12
/// reference is `2·4·4 = 32`: guarded/sticky (non-WA) sets must derive
/// exactly that, weakly acyclic sets derive a rank-based terminating
/// bound instead (usually larger — it covers the *full* chase — but a
/// guarantee of termination rather than a cutoff).
pub fn e13(sets_per_size: usize, reps: usize) -> ExperimentOutput {
    const SIZES: [usize; 5] = [2, 4, 8, 12, 16];
    const N1: usize = 4;
    const N2: usize = 4;
    let theorem = bound_from_sizes(N1, N2);

    let mut t = Table::new(
        "E13: Sigma-admission classifier cost and derived bounds (n1 = n2 = 4, Theorem 12 = 32)",
        &[
            "n_rules",
            "sets",
            "admitted",
            "weakly_acyclic",
            "guarded",
            "sticky",
            "rejected",
            "classify_p50_us",
            "classify_max_us",
            "wa_bound_min",
            "wa_bound_p50",
            "wa_bound_max",
            "theorem_12",
        ],
    );

    let median_u32 = |xs: &mut Vec<u32>| -> u32 {
        xs.sort_unstable();
        xs[xs.len() / 2]
    };

    for (si, &n_rules) in SIZES.iter().enumerate() {
        let cfg = SigmaGenConfig {
            n_rules,
            ..Default::default()
        };
        let mut admitted = 0usize;
        let mut per_class = [0usize; 3];
        let mut times = Vec::with_capacity(sets_per_size);
        let mut wa_bounds: Vec<u32> = Vec::new();
        for i in 0..sets_per_size as u64 {
            let set = Arc::new(random_rule_set(&cfg, &mut rng(si as u64 * 100_000 + i)));
            times.push(time_median(reps, || classify_rule_set(set.clone())));
            let admission = classify_rule_set(set);
            if admission.is_admitted() {
                admitted += 1;
            }
            for (slot, class) in per_class.iter_mut().zip(SigmaClass::ALL) {
                if admission.classes().contains(&class) {
                    *slot += 1;
                }
            }
            if admission.classes().contains(&SigmaClass::WeaklyAcyclic) {
                wa_bounds.push(admission.level_bound(N1, N2));
            } else if admission.is_admitted() {
                // Non-WA admitted sets must fall back to the Theorem 12
                // shape exactly — the harness asserts the contract the
                // docs promise.
                assert_eq!(admission.level_bound(N1, N2), theorem);
            }
        }
        times.sort();
        let (wa_min, wa_p50, wa_max) = if wa_bounds.is_empty() {
            ("-".into(), "-".into(), "-".into())
        } else {
            (
                wa_bounds.iter().min().unwrap().to_string(),
                median_u32(&mut wa_bounds.clone()).to_string(),
                wa_bounds.iter().max().unwrap().to_string(),
            )
        };
        t.push(vec![
            n_rules.to_string(),
            sets_per_size.to_string(),
            admitted.to_string(),
            per_class[0].to_string(),
            per_class[1].to_string(),
            per_class[2].to_string(),
            (sets_per_size - admitted).to_string(),
            micros(times[times.len() / 2]),
            micros(*times.last().unwrap()),
            wa_min,
            wa_p50,
            wa_max,
            theorem.to_string(),
        ]);
    }

    // Σ_FL itself as the reference row: guarded only, so its derived
    // bound is exactly the Theorem 12 bound.
    let sigma_fl = RuleSet::sigma_fl().clone();
    let fl_time = time_median(reps.max(3), || classify_rule_set(sigma_fl.clone()));
    let fl = classify_rule_set(sigma_fl);
    assert!(fl.is_admitted());
    assert_eq!(fl.classes(), [SigmaClass::Guarded]);
    assert_eq!(fl.level_bound(N1, N2), theorem);
    t.push(vec![
        "12 (Sigma_FL)".into(),
        "1".into(),
        "1".into(),
        "0".into(),
        "1".into(),
        "0".into(),
        "0".into(),
        micros(fl_time),
        micros(fl_time),
        "-".into(),
        "-".into(),
        "-".into(),
        theorem.to_string(),
    ]);

    ExperimentOutput {
        tables: vec![t],
        notes: vec![format!(
            "{sets_per_size} generated sets per size, SigmaGenConfig defaults otherwise \
             (EGD prob 0.15, existential prob 0.35). classify_* columns time the full \
             admission pipeline (dependency graph, three class tests, diagnostics). \
             wa_bound_* columns are the rank-derived terminating-chase bounds of the \
             weakly acyclic sets at n1 = n2 = 4; non-WA admitted sets derive the \
             Theorem 12 bound exactly (asserted, not just tabulated)."
        )],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E14 — semantic cache keys under variant-heavy traffic.
// ---------------------------------------------------------------------------

/// A fresh semantic question with the same body size as `q2`: one
/// variable (preferring one that does not appear in the head) is ground
/// to a constant never used anywhere else. The Theorem 12 bound is a
/// function of body sizes, so a snapshot warm for `q2`-sized questions
/// can usually serve the new one — while the decision itself has never
/// been asked, in either canon mode.
fn freshen(q2: &ConjunctiveQuery, k: usize) -> ConjunctiveQuery {
    let head_vars: std::collections::BTreeSet<Term> =
        q2.head().iter().copied().filter(|t| t.is_var()).collect();
    let vars = q2.vars();
    let pick = vars
        .iter()
        .find(|v| !head_vars.contains(v))
        .or_else(|| vars.iter().next());
    match pick {
        Some(&v) => q2.apply(&Subst::singleton(v, Term::constant(&format!("fz{k}")))),
        None => q2.clone(),
    }
}

/// E14: what semantic (canonicalized) cache keys buy on variant-heavy
/// traffic — the workload the raw structural keys get ~0% on.
///
/// `distinct` base pairs (the E4 workload shape) are warmed on two
/// in-process `flqd` servers, one default (canon on) and one
/// `--no-canon`. Two measured phases follow, `variants` rounds each:
///
/// 1. **variant decisions** — every base pair mutated on both sides
///    ([`mutate_variant`]: redundant atoms + renaming + permutation).
///    Canon keys fold the mutations back to the warmed core pair, so the
///    decision cache answers without re-chasing; raw keys miss every
///    time. Hit rate comes from the engine's global cache counters,
///    scoped to the phase; `variant_p50_us` is the request p50.
/// 2. **fresh questions** — a mutated `q1` against a freshened `q2`
///    (a question never asked before, in either mode). The decision
///    cache *must* miss; what is measured is the snapshot LRU: canon
///    substitutes the warm canonical `q1`, raw keys see a brand-new
///    spelling. Hit rate comes from scraping `GET /metrics`.
///
/// The acceptance contract from the canonicalization work is asserted,
/// not just tabulated: canon-on hits ≥ 80% on both caches while
/// canon-off hits ≤ 5%, and every request decides with HTTP 200.
pub fn e14(distinct: usize, variants: usize) -> ExperimentOutput {
    use crate::wire;
    use flogic_serve::{Server, ServerConfig};

    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    let base: Vec<(ConjunctiveQuery, ConjunctiveQuery)> = (0..distinct as u64)
        .map(|i| {
            let q1 = random_query(&qcfg, &mut rng(i));
            let q2 = generalize(&q1, &gcfg, &mut rng(i + 10_000));
            (q1, q2)
        })
        .collect();
    let text = flogic_syntax::query_to_flogic;
    let base_texts: Vec<(String, String)> = base.iter().map(|(a, b)| (text(a), text(b))).collect();
    // The *structural* key already folds renaming and permutation, so
    // two independently seeded mutants of the same q1 can coincide by
    // chance and hand the raw-key server an accidental snapshot hit.
    // That folding is fine — it is the seed behavior — but this
    // experiment isolates the *semantic* folding on top of it, so the
    // q1 mutants are drawn to be pairwise structurally distinct.
    let mut seen: std::collections::HashSet<flogic_core::QueryKey> = base
        .iter()
        .map(|(q1, _)| flogic_core::QueryKey::structural(q1))
        .collect();
    let mut distinct_mutant = |q: &ConjunctiveQuery, seed: u64| -> ConjunctiveQuery {
        let mut s = seed;
        loop {
            let m = mutate_variant(q, &mut rng(s));
            if seen.insert(flogic_core::QueryKey::structural(&m)) {
                return m;
            }
            s = s.wrapping_add(1_000_000_000);
        }
    };
    // Phase 1: both sides mutated. The canonical keys must fold these
    // back onto the warmed entries; the raw keys cannot.
    let mut variant_texts: Vec<(String, String)> = Vec::new();
    for v in 0..variants as u64 {
        for (i, (q1, q2)) in base.iter().enumerate() {
            let s = 700_000 + v * 10_000 + i as u64;
            variant_texts.push((
                text(&distinct_mutant(q1, s)),
                text(&mutate_variant(q2, &mut rng(s + 100_000))),
            ));
        }
    }
    // Phase 2: mutated q1, never-asked q2. Forces a decision miss in
    // both modes, so the snapshot cache is what answers (or doesn't).
    let mut fresh_texts: Vec<(String, String)> = Vec::new();
    for v in 0..variants {
        for (i, (q1, q2)) in base.iter().enumerate() {
            let s = 900_000 + v as u64 * 10_000 + i as u64;
            fresh_texts.push((
                text(&distinct_mutant(q1, s)),
                text(&freshen(q2, v * distinct + i)),
            ));
        }
    }

    let contains_body = |q1: &str, q2: &str| {
        format!(
            "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":50000}}",
            wire::json_quote(q1),
            wire::json_quote(q2)
        )
    };
    // One counter line of the GET /metrics body (keys carry a trailing
    // space so e.g. `flqd_snapshot_hits` never matches a longer name).
    let scrape = |addr: &str, key: &str| -> u64 {
        let (status, body) = wire::get(addr, "/metrics").expect("metrics");
        assert_eq!(status, 200, "{body}");
        body.lines()
            .find_map(|l| {
                l.strip_prefix(key)
                    .and_then(|rest| rest.trim().parse().ok())
            })
            .unwrap_or(0)
    };
    let pct = |hits: u64, misses: u64| -> f64 {
        if hits + misses == 0 {
            0.0
        } else {
            100.0 * hits as f64 / (hits + misses) as f64
        }
    };

    let mut t = Table::new(
        "E14: semantic vs raw cache keys on variant-heavy traffic (mutated spellings of warm pairs)",
        &[
            "mode",
            "warm_reqs",
            "variant_reqs",
            "decision_hit_pct",
            "variant_p50_us",
            "fresh_reqs",
            "snapshot_hit_pct",
            "canon_keys",
        ],
    );
    let mut contrast: Vec<(f64, f64, Duration)> = Vec::new();
    for canon in [true, false] {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            canon,
            ..ServerConfig::default()
        })
        .expect("bind in-process server");
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        let mut client = wire::Client::connect(&addr).expect("connect");
        let post = |client: &mut wire::Client, q1: &str, q2: &str| -> Duration {
            let t0 = Instant::now();
            let (status, body) = client
                .post("/v1/contains", &contains_body(q1, q2))
                .expect("request");
            let dt = t0.elapsed();
            assert_eq!(status, 200, "{body}");
            dt
        };

        for (q1, q2) in &base_texts {
            post(&mut client, q1, q2);
        }
        let m0 = Metrics::global().snapshot();
        let mut latencies: Vec<Duration> = variant_texts
            .iter()
            .map(|(q1, q2)| post(&mut client, q1, q2))
            .collect();
        let decisions = Metrics::global().snapshot().since(&m0);
        latencies.sort();
        let p50 = latencies[latencies.len() / 2];

        let h0 = scrape(&addr, "flqd_snapshot_hits ");
        let s0 = scrape(&addr, "flqd_snapshot_misses ");
        for (q1, q2) in &fresh_texts {
            post(&mut client, q1, q2);
        }
        let snap_hits = scrape(&addr, "flqd_snapshot_hits ") - h0;
        let snap_misses = scrape(&addr, "flqd_snapshot_misses ") - s0;
        handle.shutdown();
        join.join().expect("server thread").expect("clean drain");

        let decision_pct = pct(decisions.cache_hits, decisions.cache_misses);
        let snapshot_pct = pct(snap_hits, snap_misses);
        contrast.push((decision_pct, snapshot_pct, p50));
        t.push(vec![
            if canon {
                "canon (default)"
            } else {
                "--no-canon"
            }
            .into(),
            base_texts.len().to_string(),
            variant_texts.len().to_string(),
            format!("{decision_pct:.1}"),
            micros(p50),
            fresh_texts.len().to_string(),
            format!("{snapshot_pct:.1}"),
            decisions.canon_keys.to_string(),
        ]);
    }
    // The acceptance contract: semantic keys make variant traffic a hit
    // workload, raw keys leave it a miss workload.
    let (on, off) = (&contrast[0], &contrast[1]);
    assert!(
        on.0 >= 80.0 && on.1 >= 80.0,
        "canon-on hit rates below the 80% floor: decision {:.1}%, snapshot {:.1}%",
        on.0,
        on.1
    );
    assert!(
        off.0 <= 5.0 && off.1 <= 5.0,
        "canon-off hit rates above the 5% ceiling: decision {:.1}%, snapshot {:.1}%",
        off.0,
        off.1
    );

    ExperimentOutput {
        tables: vec![t],
        notes: vec![format!(
            "{distinct} warm base pairs, {variants} variant round(s) per phase, one kept-alive \
             client. Variant requests mutate both sides (redundant atoms + renaming + \
             permutation); fresh requests pair a mutated q1 with a never-asked q2 of the same \
             size, so only the snapshot cache can help. decision_hit_pct is scoped to the \
             variant phase via engine counter deltas; snapshot_hit_pct to the fresh phase via \
             GET /metrics. Asserted: canon >= 80% on both caches, --no-canon <= 5%."
        )],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// E15 — request-level observability: overhead and per-stage latency.
// ---------------------------------------------------------------------------

/// E15: what the always-on observability layer (stage-timed spans,
/// lock-free histograms) plus the optional access log cost, and where a
/// warm request's time actually goes.
///
/// Three measurements over `distinct` warm E4-shaped pairs:
///
/// 1. **overhead A/B** — warm keep-alive p50 on one persistent
///    connection, access log off vs on (full sampling, every request
///    logged). Spans and histograms cannot be disabled, so the log is
///    the toggleable increment; the A/B rows make the total cost of the
///    instrumented path visible next to the latency gate's budget.
///    Asserted: log-on p50 within 5% of log-off (plus a small absolute
///    jitter floor, since 5% of a ~100 µs p50 is single-digit µs).
/// 2. **per-stage percentiles by transport mode** — close / keep-alive
///    / pipelined clients against fresh servers; the server's own
///    `flqd_stage_duration_nanoseconds` histograms are scraped before
///    and after the measured phase and diffed ([`crate::promstats`]),
///    so the p50/p99 per stage cover exactly the measured window.
/// 3. **batch dedup** — one `POST /v1/contains_batch` carrying several
///    mutated respellings of every base `q1`: the server's canonical
///    dedup must fold them, observable as `flqd_batch_dedup_hits_total`.
pub fn e15(distinct: usize, requests: usize) -> ExperimentOutput {
    use crate::promstats::{diff_stages, scrape_server_stats};
    use crate::wire;
    use flogic_serve::{Server, ServerConfig};

    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    let base: Vec<(ConjunctiveQuery, ConjunctiveQuery)> = (0..distinct as u64)
        .map(|i| {
            let q1 = random_query(&qcfg, &mut rng(i));
            let q2 = generalize(&q1, &gcfg, &mut rng(i + 10_000));
            (q1, q2)
        })
        .collect();
    let text = flogic_syntax::query_to_flogic;
    let base_texts: Vec<(String, String)> = base.iter().map(|(a, b)| (text(a), text(b))).collect();
    let contains_body = |q1: &str, q2: &str| {
        format!(
            "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":50000}}",
            wire::json_quote(q1),
            wire::json_quote(q2)
        )
    };
    let log_path =
        std::env::temp_dir().join(format!("flq_e15_access_{}.jsonl", std::process::id()));
    let spawn = |access_log: Option<String>| {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            access_log,
            ..ServerConfig::default()
        })
        .expect("bind in-process server");
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (addr, handle, join)
    };
    let post_ok = |client: &mut wire::Client, body: &str| {
        let (status, resp) = client.post("/v1/contains", body).expect("request");
        assert_eq!(status, 200, "{resp}");
    };

    let mut t = Table::new(
        "E15: observability overhead and per-stage latency (warm requests, in-process flqd)",
        &["mode", "stage", "count", "p50_us", "p99_us"],
    );

    // 1. Overhead A/B: warm keep-alive total latency, access log off/on.
    let mut total_p50 = [Duration::ZERO; 2];
    for (slot, log) in [None, Some(log_path.display().to_string())]
        .into_iter()
        .enumerate()
    {
        let (addr, handle, join) = spawn(log);
        let mut client = wire::Client::connect(&addr).expect("connect");
        for (q1, q2) in &base_texts {
            post_ok(&mut client, &contains_body(q1, q2));
        }
        let mut latencies: Vec<Duration> = (0..requests)
            .map(|i| {
                let (q1, q2) = &base_texts[i % base_texts.len()];
                let body = contains_body(q1, q2);
                let t0 = Instant::now();
                post_ok(&mut client, &body);
                t0.elapsed()
            })
            .collect();
        latencies.sort();
        total_p50[slot] = latencies[latencies.len() / 2];
        let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
        drop(client);
        handle.shutdown();
        join.join().expect("server thread").expect("clean drain");
        t.push(vec![
            if slot == 0 {
                "keepalive_log_off"
            } else {
                "keepalive_log_on"
            }
            .into(),
            "total".into(),
            requests.to_string(),
            micros(total_p50[slot]),
            micros(p99),
        ]);
    }
    let [off, on] = total_p50;
    let overhead_pct = if off.is_zero() {
        0.0
    } else {
        100.0 * (on.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64()
    };
    // The 5% contract, with a 25 µs absolute floor so single-digit-µs
    // scheduler jitter on a ~100 µs p50 cannot fail the run spuriously.
    assert!(
        on <= off.mul_f64(1.05) + Duration::from_micros(25),
        "access log overhead breached the 5% contract: off {off:?}, on {on:?}"
    );

    // 2. Per-stage percentiles by transport mode, from the server's own
    // histograms, scoped to the measured window by scrape diffing.
    for mode in ["close", "keep-alive", "pipeline"] {
        let (addr, handle, join) = spawn(Some(log_path.display().to_string()));
        let mut client = wire::Client::connect(&addr).expect("connect");
        for (q1, q2) in &base_texts {
            post_ok(&mut client, &contains_body(q1, q2));
        }
        let before = scrape_server_stats(&addr).expect("scrape");
        match mode {
            "close" => {
                for i in 0..requests {
                    let (q1, q2) = &base_texts[i % base_texts.len()];
                    let (status, resp) =
                        wire::post(&addr, "/v1/contains", &contains_body(q1, q2)).expect("request");
                    assert_eq!(status, 200, "{resp}");
                }
            }
            "keep-alive" => {
                for i in 0..requests {
                    let (q1, q2) = &base_texts[i % base_texts.len()];
                    post_ok(&mut client, &contains_body(q1, q2));
                }
            }
            _ => {
                let bodies: Vec<String> = (0..requests)
                    .map(|i| {
                        let (q1, q2) = &base_texts[i % base_texts.len()];
                        contains_body(q1, q2)
                    })
                    .collect();
                for window in bodies.chunks(8) {
                    for (status, resp) in client
                        .post_pipelined("/v1/contains", window)
                        .expect("burst")
                    {
                        assert_eq!(status, 200, "{resp}");
                    }
                }
            }
        }
        let after = scrape_server_stats(&addr).expect("scrape");
        drop(client);
        handle.shutdown();
        join.join().expect("server thread").expect("clean drain");
        for (stage, diff) in diff_stages(&before, &after) {
            t.push(vec![
                mode.into(),
                stage.into(),
                diff.count.to_string(),
                format!("{:.1}", diff.p50() as f64 / 1e3),
                format!("{:.1}", diff.p99() as f64 / 1e3),
            ]);
        }
    }

    // 3. Batch dedup: 4 respellings of every base q1 in one batch; the
    // canonical dedup must fold each group to one chased representative.
    let (addr, handle, join) = spawn(None);
    let mut items: Vec<String> = Vec::new();
    for (i, (q1, q2)) in base.iter().enumerate() {
        for v in 0..4u64 {
            let m1 = if v == 0 {
                q1.clone()
            } else {
                mutate_variant(q1, &mut rng(5_000_000 + i as u64 * 100 + v))
            };
            items.push(format!(
                "[{},{}]",
                wire::json_quote(&text(&m1)),
                wire::json_quote(&text(q2))
            ));
        }
    }
    let batch_body = format!(
        "{{\"pairs\":[{}],\"max_conjuncts\":50000}}",
        items.join(",")
    );
    let (status, resp) = wire::post(&addr, "/v1/contains_batch", &batch_body).expect("batch");
    assert_eq!(status, 200, "{resp}");
    let (_, metrics) = wire::get(&addr, "/metrics").expect("metrics");
    let dedup_hits: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("flqd_batch_dedup_hits_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    handle.shutdown();
    join.join().expect("server thread").expect("clean drain");
    // 4 spellings per base, so 3 foldable respellings each. Mutation can
    // occasionally be an identity on tiny queries; require most to fold.
    assert!(
        dedup_hits >= 2 * distinct as u64,
        "batch dedup folded too little: {dedup_hits} hits over {distinct} bases x 4 spellings"
    );
    t.push(vec![
        "batch".into(),
        "dedup_hits".into(),
        dedup_hits.to_string(),
        "0".into(),
        "0".into(),
    ]);
    let _ = std::fs::remove_file(&log_path);

    ExperimentOutput {
        tables: vec![t],
        notes: vec![format!(
            "{distinct} warm base pairs, {requests} measured requests per mode. \
             keepalive_log_off/on rows are client-observed totals on one persistent connection \
             (overhead {overhead_pct:+.1}%, asserted <= 5% + 25us jitter floor); per-stage rows \
             are the server's own histograms diffed across the measured window; the batch row \
             counts canonical q1 dedup hits for one batch of {distinct} bases x 4 spellings."
        )],
        files: vec![],
    }
}

/// E16 — restart-warm serving: latency tiers of the durable decision
/// store. For each store size the same pairs are decided cold (first
/// sight, chase + persist), RAM-warm (repeat on the same process), and
/// disk-warm (first sight after a restart on the same `--data-dir` —
/// every answer must come from the LSM store, bit-identical to the
/// cold response), alongside the restart-open (recovery) time.
pub fn e16(distinct: usize, scales: usize) -> ExperimentOutput {
    use crate::wire;
    use flogic_serve::{Server, ServerConfig};

    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    let contains_body = |q1: &str, q2: &str| {
        format!(
            "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":50000}}",
            wire::json_quote(q1),
            wire::json_quote(q2)
        )
    };
    // Returns (addr, handle, join, bind time). Binding opens the store,
    // so the bind time on a reopened dir IS the restart-recovery cost.
    let spawn = |data_dir: Option<String>| {
        let t0 = Instant::now();
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            data_dir,
            ..ServerConfig::default()
        })
        .expect("bind in-process server");
        let open = t0.elapsed();
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (addr, handle, join, open)
    };
    let metric = |addr: &str, name: &str| -> u64 {
        let (status, body) = wire::get(addr, "/metrics").expect("scrape /metrics");
        assert_eq!(status, 200);
        body.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|r| r.trim().parse().ok()))
            .unwrap_or(0)
    };
    let percentiles = |mut lat: Vec<Duration>| {
        lat.sort();
        let p50 = lat[lat.len() / 2];
        let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
        (p50, p99)
    };

    let mut t = Table::new(
        "E16: restart-warm serving — cold vs RAM-warm vs disk-warm, restart-open time",
        &[
            "store_pairs",
            "tier",
            "p50_us",
            "p99_us",
            "restart_open_us",
            "disk_hits",
            "hit_rate_pct",
        ],
    );
    let mut summaries = Vec::new();
    for scale in 0..scales.max(1) {
        let n = distinct << scale;
        let texts: Vec<(String, String)> = (0..n as u64)
            .map(|i| {
                let q1 = random_query(&qcfg, &mut rng(i));
                let q2 = generalize(&q1, &gcfg, &mut rng(i + 10_000));
                (
                    flogic_syntax::query_to_flogic(&q1),
                    flogic_syntax::query_to_flogic(&q2),
                )
            })
            .collect();
        let dir = std::env::temp_dir().join(format!("flq_e16_{}_{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.display().to_string();

        // Pass 1 (cold) and pass 2 (RAM-warm) on the first process.
        let (addr, handle, join, _) = spawn(Some(dir_s.clone()));
        let mut client = wire::Client::connect(&addr).expect("connect");
        let pass = |client: &mut wire::Client| -> (Vec<Duration>, Vec<String>) {
            let mut lat = Vec::with_capacity(texts.len());
            let mut bodies = Vec::with_capacity(texts.len());
            for (q1, q2) in &texts {
                let body = contains_body(q1, q2);
                let t0 = Instant::now();
                let (status, resp) = client.post("/v1/contains", &body).expect("request");
                lat.push(t0.elapsed());
                assert_eq!(status, 200, "{resp}");
                bodies.push(resp);
            }
            (lat, bodies)
        };
        let (cold_lat, cold_bodies) = pass(&mut client);
        let (ram_lat, _) = pass(&mut client);
        drop(client);
        handle.shutdown();
        join.join().expect("server thread").expect("clean drain");

        // Restart on the same dir: bind time is recovery, and the first
        // pass must be served entirely by the durable tier.
        let (addr, handle, join, open) = spawn(Some(dir_s.clone()));
        let mut client = wire::Client::connect(&addr).expect("connect");
        let (disk_lat, disk_bodies) = pass(&mut client);
        for (i, (cold, disk)) in cold_bodies.iter().zip(&disk_bodies).enumerate() {
            assert_eq!(
                cold, disk,
                "pair {i}: disk-warm answer differs from the cold one"
            );
        }
        let disk_hits = metric(&addr, "flqd_store_disk_hits_total");
        drop(client);
        handle.shutdown();
        join.join().expect("server thread").expect("clean drain");
        let _ = std::fs::remove_dir_all(&dir);

        let hit_rate = 100.0 * disk_hits as f64 / n as f64;
        for (tier, lat) in [("cold", cold_lat), ("ram_warm", ram_lat)] {
            let (p50, p99) = percentiles(lat);
            t.push(vec![
                n.to_string(),
                tier.into(),
                micros(p50),
                micros(p99),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        let (p50, p99) = percentiles(disk_lat);
        t.push(vec![
            n.to_string(),
            "disk_warm".into(),
            micros(p50),
            micros(p99),
            micros(open),
            disk_hits.to_string(),
            format!("{hit_rate:.1}"),
        ]);
        summaries.push(format!(
            "{n} pairs: restart open {}, disk hit rate {hit_rate:.1}%",
            format_args!("{:.1}us", open.as_secs_f64() * 1e6)
        ));
    }

    ExperimentOutput {
        tables: vec![t],
        notes: vec![format!(
            "Each store size decides the same generated pairs cold (first sight, chase + \
             persist), RAM-warm (repeat, decision-cache hit), and disk-warm (first sight \
             after SIGTERM-style drain + restart on the same --data-dir; every response \
             asserted byte-identical to the cold one, hits counted by the server's \
             flqd_store_disk_hits_total). restart_open_us is the Server::bind time on the \
             reopened dir, i.e. manifest + segment-metadata recovery. {}",
            summaries.join("; ")
        )],
        files: vec![],
    }
}

// ---------------------------------------------------------------------------
// Bounded-vs-naive comparison used by the micro-benches.
// ---------------------------------------------------------------------------

/// Decide with an explicit level bound (for the micro-benches).
pub fn contains_at_bound(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, bound: u32) -> bool {
    contains_with(
        q1,
        q2,
        &ContainmentOptions {
            level_bound: Some(bound),
            max_conjuncts: 2_000_000,
            ..Default::default()
        },
    )
    .expect("arity ok")
    .holds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pairs_parse_and_hold() {
        for (name, q1, q2) in paper_pairs() {
            assert!(contains(&q1, &q2).unwrap().holds(), "{name}");
        }
    }

    #[test]
    fn sub_chain_ground_truth() {
        assert!(contains(&sub_chain(4), &sub_chain(2)).unwrap().holds());
        assert!(!contains(&sub_chain(2), &sub_chain(4)).unwrap().holds());
    }

    #[test]
    fn cyclic_query_and_probe_agree() {
        let q1 = cyclic_query(2);
        let q2 = pump_probe(2, 3);
        assert!(contains(&q1, &q2).unwrap().holds());
    }

    #[test]
    fn e1_e2_run() {
        let out = e1();
        assert_eq!(out.tables[0].rows.len(), 2);
        let out = e2();
        assert!(out.tables[0].rows.iter().any(|r| r[1] == "(V1, V1)"));
    }

    #[test]
    fn e3_census_is_pump_shaped() {
        let out = e3();
        assert!(out.tables[1].rows.len() >= 5, "several levels materialized");
        assert!(out.notes[0].contains("level 1"));
    }

    #[test]
    fn e4_small_run_has_no_violations() {
        let out = e4(5, 1);
        let rows = &out.tables[0].rows;
        let violations = rows
            .iter()
            .find(|r| r[0] == "database counterexamples")
            .unwrap();
        assert_eq!(violations[1], "0");
        let agree = rows
            .iter()
            .find(|r| r[0] == "naive baseline agreement")
            .unwrap();
        let parts: Vec<&str> = agree[1].split('/').collect();
        assert_eq!(parts[0], parts[1], "full agreement expected");
    }

    #[test]
    fn e7_witness_within_bound() {
        let out = e7();
        for row in &out.tables[0].rows {
            let bound: u32 = row[4].parse().unwrap();
            let level: u32 = row[5].parse().unwrap();
            assert!(level <= bound);
        }
    }
}
