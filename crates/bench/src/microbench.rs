//! Vendored micro-benchmark timer — the dependency-free replacement for
//! criterion that keeps the bench targets hermetic.
//!
//! Protocol per benchmark: a warm-up pass sizes a batch so one sample lasts
//! at least [`Runner::min_sample_ms`], then `samples` batches are timed and
//! the per-iteration minimum / median / mean are reported. The minimum is
//! the headline number: for a deterministic workload it is the best
//! available estimate of the true cost (everything above it is scheduler
//! and cache noise).
//!
//! ```
//! let mut r = flogic_bench::microbench::Runner::new("doc");
//! r.samples(5).bench("nop", || std::hint::black_box(1 + 1));
//! r.finish();
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's summary statistics (per-iteration times).
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark name (`group/name`).
    pub name: String,
    /// Fastest observed per-iteration time.
    pub min: Duration,
    /// Median per-iteration time across samples.
    pub median: Duration,
    /// Mean per-iteration time across samples.
    pub mean: Duration,
    /// Iterations per timed batch (sized by the warm-up pass).
    pub batch: u64,
    /// Number of timed batches.
    pub samples: usize,
}

/// Runs benchmarks for one group and prints a summary table on
/// [`Runner::finish`].
pub struct Runner {
    group: String,
    samples: usize,
    min_sample_ms: u64,
    results: Vec<Sample>,
}

impl Runner {
    /// Creates a runner whose benchmarks are reported as `group/name`.
    pub fn new(group: &str) -> Runner {
        Runner {
            group: group.to_owned(),
            samples: 30,
            min_sample_ms: 2,
            results: Vec::new(),
        }
    }

    /// Sets the number of timed batches per benchmark (default 30).
    pub fn samples(&mut self, n: usize) -> &mut Runner {
        self.samples = n.max(1);
        self
    }

    /// Sets the minimum duration of one timed batch in milliseconds
    /// (default 2). Larger values amortise timer overhead for very fast
    /// bodies.
    pub fn min_sample_ms(&mut self, ms: u64) -> &mut Runner {
        self.min_sample_ms = ms.max(1);
        self
    }

    /// Times `f` and records the result under `name`.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &mut Runner {
        // Warm-up: double the batch until one batch exceeds the floor.
        let floor = Duration::from_millis(self.min_sample_ms);
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            if t0.elapsed() >= floor || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed() / batch as u32
            })
            .collect();
        per_iter.sort();
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        self.results.push(Sample {
            name: format!("{}/{name}", self.group),
            min,
            median,
            mean,
            batch,
            samples: self.samples,
        });
        self
    }

    /// Prints the summary table for everything benched so far and clears
    /// the result list.
    pub fn finish(&mut self) {
        let width = self
            .results
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(4)
            .max("name".len());
        println!(
            "{:<width$}  {:>12}  {:>12}  {:>12}  {:>8}",
            "name", "min", "median", "mean", "batch"
        );
        for r in &self.results {
            println!(
                "{:<width$}  {:>12}  {:>12}  {:>12}  {:>8}",
                r.name,
                fmt_duration(r.min),
                fmt_duration(r.median),
                fmt_duration(r.mean),
                r.batch
            );
        }
        self.results.clear();
    }

    /// Returns the recorded samples (for programmatic consumers).
    pub fn results(&self) -> &[Sample] {
        &self.results
    }
}

/// Formats a duration with an adaptive unit (`ns`, `us`, `ms`, `s`).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_a_sample() {
        let mut r = Runner::new("t");
        r.samples(3)
            .min_sample_ms(1)
            .bench("add", || black_box(2u64) + 2);
        assert_eq!(r.results().len(), 1);
        let s = &r.results()[0];
        assert_eq!(s.name, "t/add");
        assert!(s.min <= s.median);
        assert!(s.min <= s.mean);
        assert!(s.batch >= 1);
        r.finish();
        assert!(r.results().is_empty());
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.0 us");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}
