//! Minimal table type: aligned text output and CSV export.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular table of strings with a title and column headers.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + claim).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Writes the table as CSV (RFC-4180-style quoting for cells containing
    /// commas or quotes).
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, out)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.push(vec!["xxxxx".into(), "y".into()]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("xxxxx  y"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("T", &["a"]);
        t.push(vec!["with, comma".into()]);
        let dir = std::env::temp_dir().join("flogic_table_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"with, comma\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push(vec!["only one".into()]);
    }
}
