//! Criterion bench: the database-side validation pipeline (E4) — closure
//! under Σ_FL and query evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use flogic_datalog::{answers, close_database, ClosureOptions};
use flogic_gen::{random_database, random_query, DbGenConfig, QueryGenConfig};

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure/sigma_fl");
    for &scale in &[1usize, 2, 4] {
        let cfg = DbGenConfig {
            n_classes: 6 * scale,
            n_objects: 8 * scale,
            n_attrs: 4 * scale,
            n_sub_edges: 5 * scale,
            n_members: 8 * scale,
            n_types: 5 * scale,
            n_data: 8 * scale,
            n_mandatory: 2 * scale,
            n_funct: 2 * scale,
        };
        let db = random_database(&cfg, &mut StdRng::seed_from_u64(1));
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, _| {
            b.iter(|| close_database(black_box(&db), &ClosureOptions::default()).ok())
        });
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let db = random_database(&DbGenConfig::default(), &mut StdRng::seed_from_u64(2));
    let (closed, _) = close_database(&db, &ClosureOptions::default())
        .expect("seed 2 closes finitely");
    let qcfg = QueryGenConfig { n_atoms: 3, n_vars: 4, n_consts: 2, ..Default::default() };
    let queries: Vec<_> = (0..5u64)
        .map(|s| random_query(&qcfg, &mut StdRng::seed_from_u64(s)))
        .collect();
    c.bench_function("evaluate/random_queries_on_closed_db", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += answers(black_box(q), black_box(&closed)).len();
            }
            total
        })
    });
}

criterion_group!(benches, bench_closure, bench_evaluation);
criterion_main!(benches);
