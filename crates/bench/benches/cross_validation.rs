//! Micro-bench: the database-side validation pipeline (E4) — closure
//! under Σ_FL and query evaluation.

use std::hint::black_box;

use flogic_bench::microbench::Runner;
use flogic_datalog::{answers, close_database, ClosureOptions};
use flogic_gen::rng::SplitMix64;
use flogic_gen::{random_database, random_query, DbGenConfig, QueryGenConfig};

fn main() {
    let mut r = Runner::new("cross_validation");
    for &scale in &[1usize, 2, 4] {
        let cfg = DbGenConfig {
            n_classes: 6 * scale,
            n_objects: 8 * scale,
            n_attrs: 4 * scale,
            n_sub_edges: 5 * scale,
            n_members: 8 * scale,
            n_types: 5 * scale,
            n_data: 8 * scale,
            n_mandatory: 2 * scale,
            n_funct: 2 * scale,
        };
        let db = random_database(&cfg, &mut SplitMix64::seed_from_u64(1));
        r.bench(&format!("closure/scale{scale}"), || {
            close_database(black_box(&db), &ClosureOptions::default()).ok()
        });
    }

    let db = random_database(&DbGenConfig::default(), &mut SplitMix64::seed_from_u64(2));
    let (closed, _) =
        close_database(&db, &ClosureOptions::default()).expect("seed 2 closes finitely");
    let qcfg = QueryGenConfig {
        n_atoms: 3,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let queries: Vec<_> = (0..5u64)
        .map(|s| random_query(&qcfg, &mut SplitMix64::seed_from_u64(s)))
        .collect();
    r.bench("evaluate/random_queries_on_closed_db", || {
        let mut total = 0usize;
        for q in &queries {
            total += answers(black_box(q), black_box(&closed)).len();
        }
        total
    });
    r.finish();
}
