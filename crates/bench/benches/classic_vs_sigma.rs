//! Micro-bench: Chandra–Merlin vs the Σ_FL bounded-chase procedure on
//! the same pairs (E6) — the price of constraint-aware containment.

use std::hint::black_box;

use flogic_bench::microbench::Runner;
use flogic_core::{classic_contains, contains};
use flogic_gen::rng::SplitMix64;
use flogic_gen::{generalize, random_query, GeneralizeConfig, QueryGenConfig};
use flogic_model::ConjunctiveQuery;

fn workload() -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let qcfg = QueryGenConfig {
        n_atoms: 5,
        n_vars: 5,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    (0..10u64)
        .map(|s| {
            let q1 = random_query(&qcfg, &mut SplitMix64::seed_from_u64(s));
            let q2 = generalize(&q1, &gcfg, &mut SplitMix64::seed_from_u64(s + 100));
            (q1, q2)
        })
        .collect()
}

fn main() {
    let pairs = workload();
    let mut r = Runner::new("classic_vs_sigma");
    r.bench("classic/10_pairs", || {
        pairs
            .iter()
            .filter(|(q1, q2)| classic_contains(black_box(q1), black_box(q2)).unwrap())
            .count()
    });
    r.bench("sigma/10_pairs", || {
        pairs
            .iter()
            .filter(|(q1, q2)| contains(black_box(q1), black_box(q2)).unwrap().holds())
            .count()
    });
    r.finish();
}
