//! Micro-bench: `chase⁻` (the terminating preliminary chase) across
//! query sizes (E8) — the polynomial step of Theorem 13.

use std::hint::black_box;

use flogic_bench::experiments::sub_chain;
use flogic_bench::microbench::Runner;
use flogic_chase::chase_minus;
use flogic_gen::rng::SplitMix64;
use flogic_gen::{random_query, QueryGenConfig};

fn main() {
    let mut r = Runner::new("chase_minus");
    for &n in &[4usize, 8, 16, 32] {
        let cfg = QueryGenConfig {
            n_atoms: n,
            n_vars: n,
            n_consts: 4,
            ..Default::default()
        };
        let queries: Vec<_> = (0..5u64)
            .map(|s| random_query(&cfg, &mut SplitMix64::seed_from_u64(s * 31 + n as u64)))
            .collect();
        r.bench(&format!("random/{n}"), || {
            queries
                .iter()
                .map(|q| chase_minus(black_box(q)).len())
                .sum::<usize>()
        });
    }

    // The sub-chain is the worst case for rho2: quadratically many
    // transitive edges.
    for &n in &[4usize, 8, 16, 32] {
        let q = sub_chain(n);
        r.bench(&format!("sub_chain/{n}"), || {
            chase_minus(black_box(&q)).len()
        });
    }
    r.finish();
}
