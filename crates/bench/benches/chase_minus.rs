//! Criterion bench: `chase⁻` (the terminating preliminary chase) across
//! query sizes (E8) — the polynomial step of Theorem 13.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use flogic_bench::experiments::sub_chain;
use flogic_chase::chase_minus;
use flogic_gen::{random_query, QueryGenConfig};

fn bench_chase_minus_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_minus/random");
    for &n in &[4usize, 8, 16, 32] {
        let cfg =
            QueryGenConfig { n_atoms: n, n_vars: n, n_consts: 4, ..Default::default() };
        let queries: Vec<_> = (0..5u64)
            .map(|s| random_query(&cfg, &mut StdRng::seed_from_u64(s * 31 + n as u64)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                queries.iter().map(|q| chase_minus(black_box(q)).len()).sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_chase_minus_chain(c: &mut Criterion) {
    // The sub-chain is the worst case for rho2: quadratically many
    // transitive edges.
    let mut group = c.benchmark_group("chase_minus/sub_chain");
    for &n in &[4usize, 8, 16, 32] {
        let q = sub_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| chase_minus(black_box(&q)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chase_minus_random, bench_chase_minus_chain);
criterion_main!(benches);
