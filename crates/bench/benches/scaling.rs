//! Criterion bench: decision-procedure scaling in |q1| and |q2| (E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use flogic_bench::experiments::{cyclic_query, pump_probe, sub_chain};
use flogic_core::contains;

fn bench_chain_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/sub_chain");
    for &n in &[2usize, 4, 8, 16, 32] {
        let q1 = sub_chain(n);
        let q2 = sub_chain(n); // positive instance of equal size
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| contains(black_box(&q1), black_box(&q2)).unwrap().holds())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling/sub_chain_negative");
    // Negative instances are exponentially hard refutations (see E5a);
    // n = 16 alone would run for ~20 minutes, so the bench stops at 8 and
    // uses a small sample count.
    group.sample_size(10);
    for &n in &[2usize, 4, 8] {
        let q1 = sub_chain(n);
        let q2 = sub_chain(n + 2); // negative: m > n
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| contains(black_box(&q1), black_box(&q2)).unwrap().holds())
        });
    }
    group.finish();
}

fn bench_cyclic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/cyclic_pump");
    group.sample_size(20);
    for &(k, d) in &[(1usize, 2usize), (2, 2), (2, 4), (3, 3)] {
        let q1 = cyclic_query(k);
        let q2 = pump_probe(k, d);
        group.bench_with_input(BenchmarkId::new("k_d", format!("{k}_{d}")), &k, |b, _| {
            b.iter(|| contains(black_box(&q1), black_box(&q2)).unwrap().holds())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain_scaling, bench_cyclic_scaling);
criterion_main!(benches);
