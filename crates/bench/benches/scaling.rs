//! Micro-bench: decision-procedure scaling in |q1| and |q2| (E5).

use std::hint::black_box;

use flogic_bench::experiments::{cyclic_query, pump_probe, sub_chain};
use flogic_bench::microbench::Runner;
use flogic_core::contains;

fn main() {
    let mut r = Runner::new("scaling");
    for &n in &[2usize, 4, 8, 16, 32] {
        let q1 = sub_chain(n);
        let q2 = sub_chain(n); // positive instance of equal size
        r.bench(&format!("sub_chain/{n}"), || {
            contains(black_box(&q1), black_box(&q2)).unwrap().holds()
        });
    }

    // Negative instances are exponentially hard refutations (see E5a);
    // n = 16 alone would run for ~20 minutes, so the bench stops at 8 and
    // uses a small sample count.
    r.samples(10);
    for &n in &[2usize, 4, 8] {
        let q1 = sub_chain(n);
        let q2 = sub_chain(n + 2); // negative: m > n
        r.bench(&format!("sub_chain_negative/{n}"), || {
            contains(black_box(&q1), black_box(&q2)).unwrap().holds()
        });
    }

    r.samples(20);
    for &(k, d) in &[(1usize, 2usize), (2, 2), (2, 4), (3, 3)] {
        let q1 = cyclic_query(k);
        let q2 = pump_probe(k, d);
        r.bench(&format!("cyclic_pump/k{k}_d{d}"), || {
            contains(black_box(&q1), black_box(&q2)).unwrap().holds()
        });
    }
    r.finish();
}
