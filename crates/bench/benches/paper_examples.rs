//! Micro-bench: the Section 2 worked containments and Example 1 (E1/E2).

use std::hint::black_box;

use flogic_bench::experiments::paper_pairs;
use flogic_bench::microbench::Runner;
use flogic_chase::chase_minus;
use flogic_core::{classic_contains, contains};
use flogic_syntax::parse_query;

fn main() {
    let mut r = Runner::new("paper_examples");
    for (name, q1, q2) in paper_pairs() {
        r.bench(&format!("sigma/{name}"), || {
            contains(black_box(&q1), black_box(&q2)).unwrap().holds()
        });
        r.bench(&format!("classic/{name}"), || {
            classic_contains(black_box(&q1), black_box(&q2)).unwrap()
        });
        r.bench(&format!("converse/{name}"), || {
            contains(black_box(&q2), black_box(&q1)).unwrap().holds()
        });
    }

    let example1 =
        parse_query("q(V1, V2) :- data(O, A, V1), data(O, A, V2), funct(A, C), member(O, C).")
            .unwrap();
    r.bench("example1_chase_minus", || {
        chase_minus(black_box(&example1)).head().to_vec()
    });
    r.finish();
}
