//! Criterion bench: the Section 2 worked containments and Example 1 (E1/E2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flogic_bench::experiments::paper_pairs;
use flogic_chase::chase_minus;
use flogic_core::{classic_contains, contains};
use flogic_syntax::parse_query;

fn bench_paper_examples(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_examples");
    for (name, q1, q2) in paper_pairs() {
        group.bench_function(format!("sigma/{name}"), |b| {
            b.iter(|| contains(black_box(&q1), black_box(&q2)).unwrap().holds())
        });
        group.bench_function(format!("classic/{name}"), |b| {
            b.iter(|| classic_contains(black_box(&q1), black_box(&q2)).unwrap())
        });
        group.bench_function(format!("converse/{name}"), |b| {
            b.iter(|| contains(black_box(&q2), black_box(&q1)).unwrap().holds())
        });
    }
    group.finish();

    let example1 = parse_query(
        "q(V1, V2) :- data(O, A, V1), data(O, A, V2), funct(A, C), member(O, C).",
    )
    .unwrap();
    c.bench_function("example1_chase_minus", |b| {
        b.iter(|| chase_minus(black_box(&example1)).head().to_vec())
    });
}

criterion_group!(benches, bench_paper_examples);
criterion_main!(benches);
