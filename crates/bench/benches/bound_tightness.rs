//! Criterion bench: cost of chasing to the full Theorem 12 bound vs
//! stopping at the level where the witness actually lives (E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use flogic_bench::experiments::{contains_at_bound, cyclic_query, pump_probe};
use flogic_core::{naive, theorem_bound};

fn bench_bound_tightness(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound_tightness");
    group.sample_size(20);
    for &(k, d) in &[(1usize, 2usize), (2, 3), (3, 3)] {
        let q1 = cyclic_query(k);
        let q2 = pump_probe(k, d);
        let bound = theorem_bound(&q1, &q2);
        let naive::NaiveOutcome::Holds { level } =
            naive::contains_naive(&q1, &q2, bound, 2_000_000).unwrap()
        else {
            panic!("probe must be contained")
        };
        group.bench_with_input(
            BenchmarkId::new("theorem_bound", format!("k{k}_d{d}_L{bound}")),
            &bound,
            |b, &bound| {
                b.iter(|| contains_at_bound(black_box(&q1), black_box(&q2), bound))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("witness_level", format!("k{k}_d{d}_L{level}")),
            &level,
            |b, &level| {
                b.iter(|| contains_at_bound(black_box(&q1), black_box(&q2), level))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bound_tightness);
criterion_main!(benches);
