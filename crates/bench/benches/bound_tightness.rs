//! Micro-bench: cost of chasing to the full Theorem 12 bound vs
//! stopping at the level where the witness actually lives (E7).

use std::hint::black_box;

use flogic_bench::experiments::{contains_at_bound, cyclic_query, pump_probe};
use flogic_bench::microbench::Runner;
use flogic_core::{naive, theorem_bound};

fn main() {
    let mut r = Runner::new("bound_tightness");
    r.samples(20);
    for &(k, d) in &[(1usize, 2usize), (2, 3), (3, 3)] {
        let q1 = cyclic_query(k);
        let q2 = pump_probe(k, d);
        let bound = theorem_bound(&q1, &q2);
        let naive::NaiveOutcome::Holds { level } =
            naive::contains_naive(&q1, &q2, bound, 2_000_000).unwrap()
        else {
            panic!("probe must be contained")
        };
        r.bench(&format!("theorem_bound/k{k}_d{d}_L{bound}"), || {
            contains_at_bound(black_box(&q1), black_box(&q2), bound)
        });
        r.bench(&format!("witness_level/k{k}_d{d}_L{level}"), || {
            contains_at_bound(black_box(&q1), black_box(&q2), level)
        });
    }
    r.finish();
}
