//! Seeded random workload generators for queries, query pairs and
//! databases.
//!
//! The paper proves its results rather than measuring them, so the
//! experiment harness needs synthetic workloads that exercise the
//! interesting regimes:
//!
//! * [`random_query`] — random conjunctive meta-queries over `P_FL` with a
//!   configurable predicate mix, variable/constant pools and an optional
//!   injected mandatory/type **cycle** (the Section 4 pattern that makes
//!   the chase infinite);
//! * [`generalize`] — given `q1`, produces a `q2` with a homomorphism
//!   `q2 → body(q1)` *by construction* (atom subset + anti-unification), so
//!   `q1 ⊆ q2` holds classically — positive containment instances;
//! * [`generalize_from_chase`] — like `generalize` but sampling atoms from
//!   `chase⁻(q1)`: the resulting pairs are contained **under `Σ_FL`** but
//!   frequently *not* classically — the paper's headline phenomenon;
//! * [`rename_vars`] / [`permute_body`] / [`add_redundant_atoms`] /
//!   [`mutate_variant`] — equivalence-preserving mutators producing
//!   syntactic variants of a query (same classic core up to isomorphism,
//!   different bytes) — the variant-heavy traffic shape that semantic
//!   cache keys exist for;
//! * [`random_database`] — random ground databases shaped like class
//!   hierarchies with attributes, members and cardinality constraints,
//!   suitable for closing under `Σ_FL` and evaluating queries;
//! * [`random_rule_set`] — random well-formed TGD/EGD constraint sets
//!   over `P_FL`, for exercising the Σ-admission classifier
//!   (`flogic-analysis`) and the E13 experiment: structural safety is
//!   guaranteed by construction, chase-termination is deliberately not.
//!
//! All generators take an explicit seeded RNG (the vendored
//! [`rng::SplitMix64`], re-exported here), so every workload is
//! reproducible from a seed without any registry dependency.

pub use flogic_term::rng;

use flogic_term::rng::{Rng, SliceRandom};

use flogic_chase::chase_minus;
use flogic_model::{Atom, ConjunctiveQuery, Database, Egd, Pred, RuleId, RuleSet, SigmaRule, Tgd};
use flogic_term::{Subst, Symbol, Term};

/// Configuration for [`random_query`].
#[derive(Clone, Debug)]
pub struct QueryGenConfig {
    /// Number of body atoms (before cycle injection).
    pub n_atoms: usize,
    /// Size of the variable pool.
    pub n_vars: usize,
    /// Size of the constant pool (0 ⇒ pure meta-queries, variables only).
    pub n_consts: usize,
    /// Probability that an argument position is a constant (when the
    /// constant pool is non-empty).
    pub const_prob: f64,
    /// Head arity (head terms are drawn from the body's variables).
    pub head_arity: usize,
    /// Relative weight per predicate, indexed by [`Pred::index`]. Zero
    /// disables a predicate.
    pub pred_weights: [u32; 6],
    /// If `Some(k)`, additionally inject a mandatory/type cycle of length
    /// `k` over fresh constants (making the chase infinite, per Section 4).
    pub cycle: Option<usize>,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            n_atoms: 5,
            n_vars: 6,
            n_consts: 3,
            const_prob: 0.3,
            head_arity: 1,
            pred_weights: [3, 3, 2, 3, 2, 1],
            cycle: None,
        }
    }
}

fn pool_var(i: usize) -> Term {
    Term::var(&format!("V{i}"))
}

fn pool_const(i: usize) -> Term {
    Term::constant(&format!("k{i}"))
}

fn pick_pred<R: Rng>(weights: &[u32; 6], rng: &mut R) -> Pred {
    let total: u32 = weights.iter().sum();
    assert!(total > 0, "at least one predicate weight must be positive");
    let mut roll = rng.random_range(0..total as usize) as u32;
    for p in Pred::ALL {
        let w = weights[p.index()];
        if roll < w {
            return p;
        }
        roll -= w;
    }
    unreachable!("weights sum covered")
}

fn pick_term<R: Rng>(cfg: &QueryGenConfig, rng: &mut R) -> Term {
    if cfg.n_consts > 0 && rng.random_bool(cfg.const_prob) {
        pool_const(rng.random_range(0..cfg.n_consts))
    } else {
        pool_var(rng.random_range(0..cfg.n_vars))
    }
}

/// Generates a random conjunctive meta-query.
///
/// The head is drawn from the variables that actually occur in the body,
/// so the result is always safe; the body is never empty.
pub fn random_query<R: Rng>(cfg: &QueryGenConfig, rng: &mut R) -> ConjunctiveQuery {
    assert!(cfg.n_atoms > 0, "queries need at least one atom");
    assert!(cfg.n_vars > 0, "the variable pool must be non-empty");
    let mut body = Vec::with_capacity(cfg.n_atoms);
    for _ in 0..cfg.n_atoms {
        let pred = pick_pred(&cfg.pred_weights, rng);
        let args: Vec<Term> = (0..pred.arity()).map(|_| pick_term(cfg, rng)).collect();
        body.push(Atom::new(pred, &args).expect("arity matches by construction"));
    }
    if let Some(k) = cfg.cycle {
        inject_cycle(&mut body, k);
    }
    // Make sure at least one variable occurs (head needs candidates).
    if body.iter().all(|a| a.vars().next().is_none()) {
        let var = pool_var(0);
        body.push(Atom::member(var, pick_term(cfg, rng)));
    }
    let body_vars: Vec<Term> = {
        let mut vs: Vec<Term> = body.iter().flat_map(|a| a.vars()).collect();
        vs.sort();
        vs.dedup();
        vs
    };
    let head: Vec<Term> = (0..cfg.head_arity)
        .map(|_| *body_vars.choose(rng).expect("non-empty"))
        .collect();
    ConjunctiveQuery::new(Symbol::intern("q"), head, body)
        .expect("generated queries are valid by construction")
}

/// Appends the Section 4 cycle pattern of length `k`:
/// `mandatory(ai, ti), type(ti, ai, t(i+1 mod k))`.
fn inject_cycle(body: &mut Vec<Atom>, k: usize) {
    assert!(k > 0, "cycle length must be positive");
    let class = |i: usize| Term::constant(&format!("cyc_t{}", i % k));
    let attr = |i: usize| Term::constant(&format!("cyc_a{i}"));
    for i in 0..k {
        body.push(Atom::mandatory(attr(i), class(i)));
        body.push(Atom::typ(class(i), attr(i), class(i + 1)));
    }
}

/// Configuration for [`generalize`] / [`generalize_from_chase`].
#[derive(Clone, Debug)]
pub struct GeneralizeConfig {
    /// Probability of keeping each source atom (at least one is always
    /// kept).
    pub keep_atom_prob: f64,
    /// Probability of replacing an argument occurrence by a fresh variable
    /// (anti-unification).
    pub blur_prob: f64,
}

impl Default for GeneralizeConfig {
    fn default() -> Self {
        GeneralizeConfig {
            keep_atom_prob: 0.7,
            blur_prob: 0.3,
        }
    }
}

fn generalize_atoms<R: Rng>(
    atoms: &[Atom],
    head: &[Term],
    cfg: &GeneralizeConfig,
    rng: &mut R,
) -> ConjunctiveQuery {
    assert!(!atoms.is_empty(), "cannot generalize an empty atom set");

    // Distinct head terms keep a *consistent* image: variables stay
    // themselves; nulls (possible when generalizing from a chase whose
    // head was merged into an invented value) get one dedicated variable.
    // This keeps the witnessing homomorphism h(image) = original-term
    // well defined on the head.
    let mut head_map: Vec<(Term, Term)> = Vec::new();
    for (i, &t) in head.iter().enumerate() {
        if head_map.iter().any(|&(k, _)| k == t) {
            continue;
        }
        let image = if t.is_null() {
            Term::var(&format!("H{i}"))
        } else {
            t
        };
        head_map.push((t, image));
    }
    let head_image = |t: Term| head_map.iter().find(|&&(k, _)| k == t).map(|&(_, v)| v);

    // Choose atoms to keep; every non-constant head term must be witnessed
    // by at least one kept atom (otherwise the result would be unsafe or
    // the head mapping broken), and at least one atom is always kept.
    let mut keep: Vec<bool> = atoms
        .iter()
        .map(|_| rng.random_bool(cfg.keep_atom_prob))
        .collect();
    if !keep.iter().any(|&k| k) {
        let i = rng.random_range(0..atoms.len());
        keep[i] = true;
    }
    for &(t, _) in &head_map {
        if t.is_const() {
            continue;
        }
        let witnessed = atoms
            .iter()
            .zip(&keep)
            .any(|(a, &k)| k && a.args().contains(&t));
        if !witnessed {
            if let Some(i) = atoms.iter().position(|a| a.args().contains(&t)) {
                keep[i] = true;
            }
        }
    }

    // Blur non-head occurrences into fresh variables (anti-unification);
    // nulls must always be blurred — queries cannot contain them. Each
    // fresh variable maps back to the term it replaced, so the witnessing
    // homomorphism exists by construction. Fresh names must avoid the
    // variables already present in the source (a previous generalization
    // round may have introduced `G*` names of its own).
    let used: std::collections::HashSet<Term> = atoms.iter().flat_map(|a| a.vars()).collect();
    let mut fresh = 0usize;
    let mut next_fresh = move || loop {
        fresh += 1;
        let v = Term::var(&format!("G{fresh}"));
        if !used.contains(&v) {
            return v;
        }
    };
    let mut body = Vec::new();
    for (atom, &k) in atoms.iter().zip(&keep) {
        if !k {
            continue;
        }
        let args: Vec<Term> = atom
            .args()
            .iter()
            .map(|&t| {
                if let Some(image) = head_image(t) {
                    image
                } else if t.is_null() || rng.random_bool(cfg.blur_prob) {
                    next_fresh()
                } else {
                    t
                }
            })
            .collect();
        body.push(Atom::new(atom.pred(), &args).expect("same predicate, same arity"));
    }

    let head: Vec<Term> = head
        .iter()
        .map(|&t| head_image(t).expect("every head term entered the map"))
        .collect();
    ConjunctiveQuery::new(Symbol::intern("qq"), head, body)
        .expect("generalized queries are valid by construction")
}

/// Produces `q2` with a homomorphism `body(q2) → body(q1)` (and
/// `head(q2) → head(q1)`) by construction, so **`q1 ⊆ q2` holds
/// classically** (and a fortiori under `Σ_FL`).
pub fn generalize<R: Rng>(
    q1: &ConjunctiveQuery,
    cfg: &GeneralizeConfig,
    rng: &mut R,
) -> ConjunctiveQuery {
    generalize_atoms(q1.body(), q1.head(), cfg, rng)
}

/// Produces `q2` by generalizing atoms sampled from `chase⁻(q1)` instead of
/// `body(q1)`: by Theorem 4, `q1 ⊆_ΣFL q2` holds by construction, but the
/// sampled atoms may be *derived* conjuncts absent from `body(q1)`, so the
/// classical containment frequently fails — these are the pairs where the
/// meta-level constraints genuinely matter.
///
/// Returns `None` when `chase⁻(q1)` fails (then `q1` is unsatisfiable and
/// every containment holds trivially — not an interesting test pair).
pub fn generalize_from_chase<R: Rng>(
    q1: &ConjunctiveQuery,
    cfg: &GeneralizeConfig,
    rng: &mut R,
) -> Option<ConjunctiveQuery> {
    let chase = chase_minus(q1);
    if chase.is_failed() {
        return None;
    }
    let atoms: Vec<Atom> = chase.conjuncts().map(|(_, a, _)| *a).collect();
    Some(generalize_atoms(&atoms, chase.head(), cfg, rng))
}

/// Fisher–Yates shuffle on a slice (the vendored RNG exposes `choose`
/// but not `shuffle`).
fn shuffle<T, R: Rng>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.random_range(0..i + 1));
    }
}

/// Consistently renames every variable of `q` to a fresh shuffled name
/// (`M0`, `M1`, … assigned in random order). The result is isomorphic to
/// `q` — same answers on every database — but shares no variable names
/// with it, so byte-level and name-sensitive cache keys miss while
/// canonical keys hit.
pub fn rename_vars<R: Rng>(q: &ConjunctiveQuery, rng: &mut R) -> ConjunctiveQuery {
    let vars: Vec<Term> = q.vars().into_iter().collect();
    let mut slots: Vec<usize> = (0..vars.len()).collect();
    shuffle(&mut slots, rng);
    let mut s = Subst::new();
    for (v, slot) in vars.iter().zip(slots) {
        s.bind(*v, Term::var(&format!("M{slot}")));
    }
    q.apply(&s)
}

/// Randomly permutes the body conjuncts of `q` (the head is untouched —
/// its order is semantically fixed). Conjunction is commutative, so the
/// result is equivalent to `q`.
pub fn permute_body<R: Rng>(q: &ConjunctiveQuery, rng: &mut R) -> ConjunctiveQuery {
    let mut body = q.body().to_vec();
    shuffle(&mut body, rng);
    ConjunctiveQuery::new(q.name(), q.head().to_vec(), body)
        .expect("permuting conjuncts preserves well-formedness")
}

/// Appends `n` redundant atoms to `q`: each is a copy of a random
/// existing body atom with each argument independently blurred to a
/// fresh variable (probability ½, and at least one argument is always
/// blurred so the copy is never a literal duplicate). Every copy folds
/// back onto its source atom by mapping the fresh variables to the terms
/// they replaced, so `q`'s classic core — and hence every containment
/// verdict — is unchanged, while the literal body grows.
pub fn add_redundant_atoms<R: Rng>(
    q: &ConjunctiveQuery,
    n: usize,
    rng: &mut R,
) -> ConjunctiveQuery {
    let used: std::collections::HashSet<Term> = q.body().iter().flat_map(|a| a.vars()).collect();
    let mut fresh = 0usize;
    let mut next_fresh = move || loop {
        fresh += 1;
        let v = Term::var(&format!("F{fresh}"));
        if !used.contains(&v) {
            return v;
        }
    };
    let mut body = q.body().to_vec();
    for _ in 0..n {
        let source = *q.body().choose(rng).expect("bodies are never empty");
        let mut args: Vec<Term> = source.args().to_vec();
        let forced = rng.random_range(0..args.len());
        for (i, arg) in args.iter_mut().enumerate() {
            if i == forced || rng.random_bool(0.5) {
                *arg = next_fresh();
            }
        }
        body.push(Atom::new(source.pred(), &args).expect("same predicate, same arity"));
    }
    ConjunctiveQuery::new(q.name(), q.head().to_vec(), body)
        .expect("redundant atoms never touch the head")
}

/// A composite syntactic variant of `q`: one or two redundant atoms,
/// then a consistent random renaming, then a body permutation. The
/// result is classically equivalent to `q` (identical classic core up to
/// isomorphism) but differs from it in every byte-level and structural
/// respect — the adversarial traffic shape semantic cache keys exist
/// for.
pub fn mutate_variant<R: Rng>(q: &ConjunctiveQuery, rng: &mut R) -> ConjunctiveQuery {
    let n = 1 + rng.random_range(0..2);
    let q = add_redundant_atoms(q, n, rng);
    let q = rename_vars(&q, rng);
    permute_body(&q, rng)
}

/// Configuration for [`random_database`].
#[derive(Clone, Debug)]
pub struct DbGenConfig {
    /// Number of classes in the hierarchy.
    pub n_classes: usize,
    /// Number of objects.
    pub n_objects: usize,
    /// Number of attributes.
    pub n_attrs: usize,
    /// Number of `sub` edges (drawn upward, acyclic).
    pub n_sub_edges: usize,
    /// Number of `member` facts.
    pub n_members: usize,
    /// Number of `type` facts.
    pub n_types: usize,
    /// Number of `data` facts.
    pub n_data: usize,
    /// Number of `mandatory` facts.
    pub n_mandatory: usize,
    /// Number of `funct` facts.
    pub n_funct: usize,
}

impl Default for DbGenConfig {
    fn default() -> Self {
        DbGenConfig {
            n_classes: 6,
            n_objects: 8,
            n_attrs: 4,
            n_sub_edges: 5,
            n_members: 8,
            n_types: 5,
            n_data: 8,
            n_mandatory: 2,
            n_funct: 2,
        }
    }
}

/// Generates a random ground database shaped like an object-oriented
/// schema: an *acyclic* `sub` hierarchy (edges point from lower-numbered to
/// higher-numbered classes), members, attribute types, data values and a
/// few cardinality constraints.
///
/// The result is generally *not* closed under `Σ_FL`; close it with
/// `flogic_datalog::close_database`. Acyclicity of `sub` plus class-level
/// `type` targets keeps most instances finitely closable (mandatory cycles
/// can still arise and are reported by the closure as budget exhaustion).
pub fn random_database<R: Rng>(cfg: &DbGenConfig, rng: &mut R) -> Database {
    let class = |i: usize| Term::constant(&format!("c{i}"));
    let obj = |i: usize| Term::constant(&format!("o{i}"));
    let attr = |i: usize| Term::constant(&format!("a{i}"));
    let mut db = Database::new();
    let add = |db: &mut Database, a: Atom| {
        db.insert(a).expect("generated facts are ground");
    };
    assert!(cfg.n_classes >= 2 && cfg.n_objects >= 1 && cfg.n_attrs >= 1);
    for _ in 0..cfg.n_sub_edges {
        let lo = rng.random_range(0..cfg.n_classes - 1);
        let hi = rng.random_range(lo + 1..cfg.n_classes);
        add(&mut db, Atom::sub(class(lo), class(hi)));
    }
    for _ in 0..cfg.n_members {
        add(
            &mut db,
            Atom::member(
                obj(rng.random_range(0..cfg.n_objects)),
                class(rng.random_range(0..cfg.n_classes)),
            ),
        );
    }
    for _ in 0..cfg.n_types {
        add(
            &mut db,
            Atom::typ(
                class(rng.random_range(0..cfg.n_classes)),
                attr(rng.random_range(0..cfg.n_attrs)),
                class(rng.random_range(0..cfg.n_classes)),
            ),
        );
    }
    for _ in 0..cfg.n_data {
        add(
            &mut db,
            Atom::data(
                obj(rng.random_range(0..cfg.n_objects)),
                attr(rng.random_range(0..cfg.n_attrs)),
                obj(rng.random_range(0..cfg.n_objects)),
            ),
        );
    }
    for _ in 0..cfg.n_mandatory {
        add(
            &mut db,
            Atom::mandatory(
                attr(rng.random_range(0..cfg.n_attrs)),
                class(rng.random_range(0..cfg.n_classes)),
            ),
        );
    }
    for _ in 0..cfg.n_funct {
        add(
            &mut db,
            Atom::funct(
                attr(rng.random_range(0..cfg.n_attrs)),
                class(rng.random_range(0..cfg.n_classes)),
            ),
        );
    }
    db
}

/// Configuration for [`random_rule_set`].
#[derive(Clone, Debug)]
pub struct SigmaGenConfig {
    /// Number of rules in the set.
    pub n_rules: usize,
    /// Size of the per-rule variable pool.
    pub n_vars: usize,
    /// Body atoms per rule are drawn uniformly from `1..=max_body_atoms`.
    pub max_body_atoms: usize,
    /// Probability that a rule is an EGD (both equated sides are body
    /// variables, so generated EGDs are always safe).
    pub egd_prob: f64,
    /// Probability that a TGD head gets one fresh, existentially
    /// quantified variable in a random argument position.
    pub existential_prob: f64,
    /// Relative weight per predicate, indexed by [`Pred::index`]. Zero
    /// disables a predicate.
    pub pred_weights: [u32; 6],
}

impl Default for SigmaGenConfig {
    fn default() -> Self {
        SigmaGenConfig {
            n_rules: 6,
            n_vars: 4,
            max_body_atoms: 3,
            egd_prob: 0.15,
            existential_prob: 0.35,
            pred_weights: [3, 3, 2, 3, 2, 1],
        }
    }
}

/// A variable in the reserved `#`-prefixed rule namespace, mirroring how
/// the built-in `Σ_FL` names its variables so generated rules can never
/// capture query variables.
fn rule_var(i: usize) -> Term {
    Term::var(&format!("#G{i}"))
}

/// Generates a random, *well-formed* TGD/EGD rule set over the `P_FL`
/// schema.
///
/// Well-formed means structurally safe by construction — every head and
/// EGD variable occurs in the body, except at most one existential head
/// variable per TGD — so the only thing deciding admissibility is the
/// chase-termination classification (`flogic-analysis`'s `FL012`–`FL014`):
/// generated sets exercise the *classifier*, not the translator. Whether a
/// given seed yields an admitted or a rejected set is therefore a property
/// of its dependency structure, which is exactly what property tests and
/// the E13 experiment want to sample.
pub fn random_rule_set<R: Rng>(cfg: &SigmaGenConfig, rng: &mut R) -> RuleSet {
    assert!(cfg.n_rules > 0, "rule sets need at least one rule");
    assert!(cfg.n_vars > 0, "the variable pool must be non-empty");
    assert!(cfg.max_body_atoms > 0, "bodies are never empty");
    let mut rules = Vec::with_capacity(cfg.n_rules);
    for i in 0..cfg.n_rules {
        let id = RuleId::Custom(u16::try_from(i).expect("rule count fits u16"));
        let n_atoms = rng.random_range(0..cfg.max_body_atoms) + 1;
        let mut body = Vec::with_capacity(n_atoms);
        for _ in 0..n_atoms {
            let pred = pick_pred(&cfg.pred_weights, rng);
            let args: Vec<Term> = (0..pred.arity())
                .map(|_| rule_var(rng.random_range(0..cfg.n_vars)))
                .collect();
            body.push(Atom::new(pred, &args).expect("arity matches by construction"));
        }
        let body_vars: Vec<Term> = {
            let mut vs: Vec<Term> = body.iter().flat_map(|a| a.vars()).collect();
            vs.sort();
            vs.dedup();
            vs
        };
        if rng.random_bool(cfg.egd_prob) {
            rules.push(SigmaRule::Egd(Egd {
                id,
                left: *body_vars.choose(rng).expect("non-empty body"),
                right: *body_vars.choose(rng).expect("non-empty body"),
                body,
            }));
            continue;
        }
        let head_pred = pick_pred(&cfg.pred_weights, rng);
        let mut head_args: Vec<Term> = (0..head_pred.arity())
            .map(|_| *body_vars.choose(rng).expect("non-empty body"))
            .collect();
        let mut existential = None;
        if rng.random_bool(cfg.existential_prob) {
            let fresh = Term::var(&format!("#E{i}"));
            let slot = rng.random_range(0..head_args.len());
            head_args[slot] = fresh;
            existential = Some(fresh);
        }
        rules.push(SigmaRule::Tgd(Tgd {
            id,
            body,
            head: Atom::new(head_pred, &head_args).expect("arity matches by construction"),
            existential,
        }));
    }
    RuleSet::new("generated", rules)
}

/// Checks that `hom` witnesses `q2 → q1`: useful for asserting generator
/// guarantees in tests.
pub fn is_witnessing_hom(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, hom: &Subst) -> bool {
    q2.body().iter().all(|a| q1.body().contains(&a.apply(hom)))
        && q2
            .head()
            .iter()
            .zip(q1.head())
            .all(|(&h2, &h1)| hom.apply(h2) == h1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_term::rng::SplitMix64;

    fn rng(seed: u64) -> SplitMix64 {
        SplitMix64::seed_from_u64(seed)
    }

    #[test]
    fn random_queries_are_valid_and_sized() {
        let cfg = QueryGenConfig {
            n_atoms: 7,
            head_arity: 2,
            ..Default::default()
        };
        for seed in 0..50 {
            let q = random_query(&cfg, &mut rng(seed));
            assert!(q.size() >= 7);
            assert_eq!(q.arity(), 2);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = QueryGenConfig::default();
        let a = random_query(&cfg, &mut rng(42));
        let b = random_query(&cfg, &mut rng(42));
        assert_eq!(a, b);
        let c = random_query(&cfg, &mut rng(43));
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn cycle_injection_creates_infinite_chase_potential() {
        use flogic_chase::has_infinite_chase_potential;
        let cfg = QueryGenConfig {
            cycle: Some(3),
            ..Default::default()
        };
        let q = random_query(&cfg, &mut rng(7));
        assert!(has_infinite_chase_potential(q.body()));
    }

    #[test]
    fn generalize_yields_classically_contained_pair() {
        use flogic_hom::{find_hom, Target};
        let cfg = QueryGenConfig {
            n_atoms: 6,
            head_arity: 1,
            ..Default::default()
        };
        let gcfg = GeneralizeConfig::default();
        for seed in 0..30 {
            let q1 = random_query(&cfg, &mut rng(seed));
            let q2 = generalize(&q1, &gcfg, &mut rng(seed + 1000));
            // Chandra–Merlin witness must exist.
            let target = Target::from_query(&q1);
            let hom = find_hom(q2.body(), q2.head(), &target, q1.head());
            assert!(hom.is_some(), "seed {seed}: no hom from {q2} into {q1}");
        }
    }

    #[test]
    fn generalize_from_chase_produces_valid_queries() {
        let cfg = QueryGenConfig {
            n_atoms: 5,
            head_arity: 1,
            ..Default::default()
        };
        let gcfg = GeneralizeConfig::default();
        let mut produced = 0;
        for seed in 0..30 {
            let q1 = random_query(&cfg, &mut rng(seed));
            if let Some(q2) = generalize_from_chase(&q1, &gcfg, &mut rng(seed + 2000)) {
                produced += 1;
                assert!(q2.size() >= 1);
            }
        }
        assert!(produced > 20, "most seeds should produce a pair");
    }

    #[test]
    fn mutators_preserve_the_classic_core() {
        use flogic_hom::classic_core;
        let cfg = QueryGenConfig {
            n_atoms: 5,
            head_arity: 1,
            ..Default::default()
        };
        for seed in 0..30 {
            let q = random_query(&cfg, &mut rng(seed));
            let core_size = classic_core(&q).size();
            let renamed = rename_vars(&q, &mut rng(seed + 100));
            assert_eq!(classic_core(&renamed).size(), core_size, "seed {seed}");
            assert_eq!(renamed.size(), q.size());
            let permuted = permute_body(&q, &mut rng(seed + 200));
            assert_eq!(classic_core(&permuted).size(), core_size, "seed {seed}");
            let padded = add_redundant_atoms(&q, 2, &mut rng(seed + 300));
            assert_eq!(padded.size(), q.size() + 2);
            assert_eq!(
                classic_core(&padded).size(),
                core_size,
                "seed {seed}: redundant atoms must fold back into the core"
            );
            let variant = mutate_variant(&q, &mut rng(seed + 400));
            assert!(variant.size() > q.size());
            assert_eq!(classic_core(&variant).size(), core_size, "seed {seed}");
        }
    }

    #[test]
    fn mutators_are_deterministic_per_seed_and_change_spelling() {
        let cfg = QueryGenConfig::default();
        let q = random_query(&cfg, &mut rng(5));
        let a = mutate_variant(&q, &mut rng(77));
        let b = mutate_variant(&q, &mut rng(77));
        assert_eq!(a, b);
        let c = mutate_variant(&q, &mut rng(78));
        assert_ne!(a, c, "different seeds should (almost surely) differ");
        // A renaming never reuses the original spelling wholesale.
        let renamed = rename_vars(&q, &mut rng(9));
        assert_ne!(q, renamed);
        assert!(q.vars().iter().all(|v| !renamed.vars().contains(v)));
    }

    #[test]
    fn random_databases_are_ground_and_sized() {
        let cfg = DbGenConfig::default();
        for seed in 0..20 {
            let db = random_database(&cfg, &mut rng(seed));
            assert!(!db.is_empty());
            assert!(db.iter().all(|a| a.is_ground()));
        }
    }

    #[test]
    fn random_rule_sets_are_well_formed() {
        let cfg = SigmaGenConfig::default();
        for seed in 0..100 {
            let set = random_rule_set(&cfg, &mut rng(seed));
            assert_eq!(set.len(), cfg.n_rules);
            for rule in set.rules() {
                let body_vars: Vec<Term> = rule.body().iter().flat_map(|a| a.vars()).collect();
                match rule {
                    SigmaRule::Egd(e) => {
                        assert!(body_vars.contains(&e.left));
                        assert!(body_vars.contains(&e.right));
                    }
                    SigmaRule::Tgd(t) => {
                        for v in t.head.vars() {
                            assert!(
                                body_vars.contains(&v) || t.existential == Some(v),
                                "head variable {v} neither in body nor existential"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rule_set_generation_is_deterministic_per_seed() {
        let cfg = SigmaGenConfig::default();
        let a = random_rule_set(&cfg, &mut rng(11));
        let b = random_rule_set(&cfg, &mut rng(11));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = random_rule_set(&cfg, &mut rng(12));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn generated_sets_are_never_sigma_fl() {
        // Σ_FL has a very specific 12-rule structure; random sets should
        // never collide with it (and must say so via `is_sigma_fl`).
        let cfg = SigmaGenConfig {
            n_rules: 12,
            ..Default::default()
        };
        for seed in 0..50 {
            assert!(!random_rule_set(&cfg, &mut rng(seed)).is_sigma_fl());
        }
    }

    #[test]
    fn random_database_sub_hierarchy_is_acyclic() {
        use flogic_model::Pred;
        let cfg = DbGenConfig {
            n_sub_edges: 12,
            ..Default::default()
        };
        let db = random_database(&cfg, &mut rng(9));
        // Edges go from c_i to c_j with i < j: topological by construction.
        for a in db.pred_facts(Pred::Sub) {
            let lo: usize = a.arg(0).to_string()[1..].parse().unwrap();
            let hi: usize = a.arg(1).to_string()[1..].parse().unwrap();
            assert!(lo < hi);
        }
    }
}
