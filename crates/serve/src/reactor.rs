//! The event-driven reactor: one epoll loop owning every socket, a
//! bounded worker pool owning every chase.
//!
//! The pre-reactor server spent ~1 ms of every warm request on
//! transport — a blocking accept, a thread handoff, a connection
//! teardown — while the decision itself cost ~71 µs (E11). This module
//! inverts the shape: a single thread multiplexes all connections with
//! level-triggered `epoll`, connections stay open across requests
//! (keep-alive and pipelining are the normal case, not an option), and
//! the worker pool is reserved for the only work that deserves a
//! thread: deciding containment.
//!
//! One reactor turn:
//!
//! 1. `epoll_wait` (bounded timeout, so SIGTERM and idle sweeps are
//!    never starved).
//! 2. Drain worker **completions** (handed back via an `eventfd`
//!    wakeup), fill each response into its connection's pipeline slot,
//!    serialize the in-order prefix.
//! 3. Handle socket events: accept new connections; read + parse
//!    ready connections (each complete request is **dispatched** to the
//!    worker queue, or answered `503 Retry-After` on the spot when the
//!    queue is at `--queue-cap`); flush writable connections, resuming
//!    partial writes where they stopped.
//! 4. Re-register interest where it changed, sweep idle keep-alive
//!    connections, and — when draining — close what has finished.
//!
//! Graceful drain mirrors the blocking server's contract: on
//! SIGTERM/SIGINT (or [`ServerHandle::shutdown`]) the listener is
//! deregistered, idle connections close immediately, connections with
//! parsed-but-unanswered requests are served to completion (pipelined
//! tails included), workers finish the queued decisions, and `run`
//! returns `Ok`.
//!
//! [`ServerHandle::shutdown`]: crate::ServerHandle

use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::api::ApiError;
use crate::conn::{Conn, Incoming, Turn, Wants};
use crate::http::{Request, Response};
use crate::obs::ReqMeta;
use crate::poll::{Event, Interest, Poller};
use crate::server::{route, Shared};

/// Token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Token of the completion-wakeup eventfd.
const TOKEN_WAKER: u64 = 1;
/// First token handed to a connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Upper bound on one `epoll_wait`, so shutdown flags and idle sweeps
/// are observed promptly even on a silent server.
const MAX_WAIT_MS: i32 = 100;

/// A decision dispatched to the worker pool.
pub(crate) struct Job {
    token: u64,
    seq: u64,
    request: Request,
    /// The request's observability record; the worker marks the queue
    /// and handler stages on it.
    meta: ReqMeta,
}

/// A finished decision on its way back to the reactor.
pub(crate) struct Completion {
    token: u64,
    seq: u64,
    response: Response,
    meta: ReqMeta,
}

/// A connection plus the interest it is currently registered under.
struct Registered {
    conn: Conn,
    interest: Wants,
}

/// Runs the reactor until drain completes. This is `Server::run`.
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.register(shared.waker.fd(), TOKEN_WAKER, Interest::READ)?;

    let workers: Vec<_> = (0..shared.config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("flqd-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let mut conns: HashMap<u64, Registered> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events: Vec<Event> = Vec::new();
    let mut incoming: Vec<Incoming> = Vec::new();
    let mut finished: Vec<ReqMeta> = Vec::new();
    let mut accepting = true;
    let mut last_sweep = Instant::now();
    let idle_timeout = Duration::from_millis(shared.config.read_timeout_ms);

    loop {
        let draining = shared.draining();
        if draining && accepting {
            // Stop accepting; serve out what is already here.
            let _ = poller.deregister(listener.as_raw_fd());
            accepting = false;
            close_or_mark_draining(&poller, &mut conns, &shared);
        }
        if draining && conns.is_empty() {
            break;
        }

        poller.wait(&mut events, MAX_WAIT_MS)?;
        let now = Instant::now();

        // Completions first: they free pipeline slots and queue bytes
        // that this turn's socket events may immediately extend.
        let done: Vec<Completion> = {
            let mut guard = shared.completions.lock().expect("completions poisoned");
            std::mem::take(&mut *guard)
        };
        let mut touched: Vec<u64> = Vec::new();
        for c in done {
            if let Some(reg) = conns.get_mut(&c.token) {
                reg.conn.complete_traced(c.seq, c.response, Some(c.meta));
                touched.push(c.token);
            }
        }

        // Move the events out so `conns` can be borrowed mutably while
        // iterating; the buffer is handed back (capacity intact) below.
        let drained_events = std::mem::take(&mut events);
        for ev in &drained_events {
            match ev.token {
                TOKEN_WAKER => shared.waker.drain(),
                TOKEN_LISTENER => {
                    if accepting {
                        accept_ready(
                            &listener,
                            &poller,
                            &mut conns,
                            &mut next_token,
                            &shared,
                            now,
                        );
                    }
                }
                token => {
                    let Some(reg) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut close = ev.hangup && !reg.conn.has_pending_work();
                    if !close && ev.readable {
                        incoming.clear();
                        if reg
                            .conn
                            .fill(&mut incoming, shared.config.max_body_bytes, now)
                            == Turn::Close
                        {
                            close = true;
                        } else {
                            for inc in incoming.drain(..) {
                                dispatch(&shared, &mut reg.conn, inc, draining);
                            }
                        }
                    }
                    if close {
                        remove_conn(&poller, &mut conns, token, &shared);
                    } else {
                        touched.push(token);
                    }
                }
            }
        }
        events = drained_events;
        events.clear();

        // Flush and re-register every connection something happened to.
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            let Some(reg) = conns.get_mut(&token) else {
                continue;
            };
            if reg.conn.flush(now) == Turn::Close {
                reg.conn.take_finished(now, &mut finished);
                remove_conn(&poller, &mut conns, token, &shared);
                continue;
            }
            reg.conn.take_finished(now, &mut finished);
            let wants = reg.conn.wants();
            if wants != reg.interest {
                let interest = Interest {
                    readable: wants.read,
                    writable: wants.write,
                };
                let _ = poller.reregister(reg.conn.stream().as_raw_fd(), token, interest);
                reg.interest = wants;
            }
        }

        // Fold fully-written requests into the histograms / access log.
        for meta in finished.drain(..) {
            shared.obs.record(&meta);
        }

        // Idle keep-alive sweep (and, during drain, a stuck-peer sweep:
        // a client that stops reading its responses cannot hold the
        // process open past the idle timeout).
        if now.duration_since(last_sweep) >= Duration::from_millis(250) {
            last_sweep = now;
            let cutoff = now.checked_sub(idle_timeout).unwrap_or(now);
            let stale: Vec<u64> = conns
                .iter()
                .filter(|(_, reg)| {
                    reg.conn.idle_since(cutoff) || (draining && reg.conn.last_activity < cutoff)
                })
                .map(|(&t, _)| t)
                .collect();
            for token in stale {
                remove_conn(&poller, &mut conns, token, &shared);
            }
        }
    }

    // Workers: queued jobs are already fully enqueued (drain stops new
    // parses before it stops the loop), so they exit once the queue is
    // empty.
    shared.jobs_cv.notify_all();
    for worker in workers {
        let _ = worker.join();
    }
    Ok(())
}

/// Accepts every pending connection on the listener.
fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Registered>,
    next_token: &mut u64,
    shared: &Arc<Shared>,
    now: Instant,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Nagle would add ~40 ms to small pipelined responses.
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller
                    .register(stream.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                shared.connections_total.fetch_add(1, Ordering::Relaxed);
                shared.obs.open_connections.fetch_add(1, Ordering::Relaxed);
                conns.insert(
                    token,
                    Registered {
                        conn: Conn::new(stream, token, now),
                        interest: Wants {
                            read: true,
                            write: false,
                        },
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Routes one parsed request: to the worker queue, or straight to a
/// `503` when the queue is at capacity (the reactor's backpressure —
/// applied per request, so one answer's worth of work is the most an
/// overloaded server promises).
fn dispatch(shared: &Arc<Shared>, conn: &mut Conn, inc: Incoming, draining: bool) {
    shared.requests_total.fetch_add(1, Ordering::Relaxed);
    let Incoming { seq, request, meta } = inc;
    if draining {
        // Between the drain flag rising and this connection's
        // begin_close, a parsed request may slip through; refuse it
        // rather than racing the worker shutdown.
        shared.rejected_total.fetch_add(1, Ordering::Relaxed);
        conn.complete_traced(seq, ApiError::overloaded().to_response(), Some(meta));
        return;
    }
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    if jobs.len() >= shared.config.queue_depth {
        drop(jobs);
        shared.rejected_total.fetch_add(1, Ordering::Relaxed);
        conn.complete_traced(seq, ApiError::overloaded().to_response(), Some(meta));
        return;
    }
    jobs.push_back(Job {
        token: conn.token(),
        seq,
        request,
        meta,
    });
    let depth = jobs.len() as u64;
    drop(jobs);
    shared.obs.note_queue_depth(depth);
    shared.jobs_cv.notify_one();
}

/// Deregisters and drops one connection.
fn remove_conn(
    poller: &Poller,
    conns: &mut HashMap<u64, Registered>,
    token: u64,
    shared: &Arc<Shared>,
) {
    if let Some(reg) = conns.remove(&token) {
        let _ = poller.deregister(reg.conn.stream().as_raw_fd());
        shared.obs.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// At drain start: close idle connections now, mark the busy ones to
/// close once their pipeline finishes.
fn close_or_mark_draining(
    poller: &Poller,
    conns: &mut HashMap<u64, Registered>,
    shared: &Arc<Shared>,
) {
    let idle: Vec<u64> = conns
        .iter()
        .filter(|(_, reg)| !reg.conn.has_pending_work())
        .map(|(&t, _)| t)
        .collect();
    for token in idle {
        remove_conn(poller, conns, token, shared);
    }
    for reg in conns.values_mut() {
        reg.conn.begin_close();
    }
}

/// One worker: pop decisions until the reactor drains the queue dry and
/// raises the shutdown flag. Panics below a request become a 500 for
/// that request, never a dead worker.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().expect("jobs poisoned");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _timeout) = shared
                    .jobs_cv
                    .wait_timeout(jobs, Duration::from_millis(50))
                    .expect("jobs poisoned");
                jobs = guard;
            }
        };
        let Some(job) = job else { return };
        let Job {
            token,
            seq,
            request,
            mut meta,
        } = job;
        meta.span.mark("queue");
        shared.obs.in_flight_workers.fetch_add(1, Ordering::Relaxed);
        let response = catch_unwind(AssertUnwindSafe(|| route(shared, &request, &mut meta)))
            .unwrap_or_else(|_| ApiError::internal("request handler panicked").to_response());
        shared.obs.in_flight_workers.fetch_sub(1, Ordering::Relaxed);
        // The handler's JSON body is built; what remains is the header
        // encode and the socket write, timed by the reactor.
        meta.span.mark("serialize");
        let mut done = shared.completions.lock().expect("completions poisoned");
        done.push(Completion {
            token,
            seq,
            response,
            meta,
        });
        drop(done);
        shared.waker.wake();
    }
}
