//! Request-level observability: per-stage histograms, live gauges, and
//! the structured access log.
//!
//! Every request carries a [`ReqMeta`] from the moment its bytes parse
//! to the moment its response bytes reach the socket. The embedded
//! [`RequestSpan`] times seven named stages — `parse`, `queue`,
//! `canon`, `cache`, `decide`, `serialize`, `write` — and the metadata
//! around it records what the request *was*: endpoint, status, verdict,
//! cache outcome, failure cause, bytes in and out. When the write stage
//! closes, the reactor hands the finished meta to [`ServerObs::record`],
//! which feeds the per-stage and per-endpoint [`Histogram`]s behind
//! `GET /metrics` and `GET /v1/status`, and — when `--access-log` is
//! set — emits one JSONL line.
//!
//! The hot path stays cheap by construction: histograms are relaxed
//! atomics, the span is a fixed inline array, and the access-log line
//! is only *built* (the one allocation) for requests that pass the
//! `--log-sample` / `--slow-us` filters. The line then crosses a
//! bounded channel to a dedicated logger thread; when the channel is
//! full the line is dropped and counted (`flqd_access_log_dropped`),
//! never blocking the reactor on disk.

use std::fs::OpenOptions;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;
use std::time::Instant;

use flogic_obs::{Histogram, HistogramSnapshot, RequestSpan};

use crate::server::ServerConfig;

/// The named pipeline stages, in request order. Each gets its own
/// histogram series under `flqd_stage_duration_nanoseconds`.
pub const STAGES: [&str; 7] = [
    "parse",
    "queue",
    "canon",
    "cache",
    "decide",
    "serialize",
    "write",
];

/// Bounded capacity of the access-log channel; beyond it lines are
/// dropped and counted instead of blocking the reactor.
const LOG_CHANNEL_CAP: usize = 1024;

fn stage_index(stage: &str) -> Option<usize> {
    STAGES.iter().position(|s| *s == stage)
}

/// The endpoint a request resolved to, for per-endpoint latency series
/// and the access log's `endpoint` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/contains`.
    Contains,
    /// `POST /v1/contains_batch`.
    Batch,
    /// `GET /metrics`.
    Metrics,
    /// `GET /v1/status`.
    Status,
    /// `GET /profile`.
    Profile,
    /// Anything else: unknown paths, refused parses, early rejections.
    Other,
}

/// Every endpoint, in the order their histograms are indexed.
pub const ENDPOINTS: [Endpoint; 6] = [
    Endpoint::Contains,
    Endpoint::Batch,
    Endpoint::Metrics,
    Endpoint::Status,
    Endpoint::Profile,
    Endpoint::Other,
];

impl Endpoint {
    /// The stable wire name (`endpoint` label / access-log field).
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Contains => "contains",
            Endpoint::Batch => "batch",
            Endpoint::Metrics => "metrics",
            Endpoint::Status => "status",
            Endpoint::Profile => "profile",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Contains => 0,
            Endpoint::Batch => 1,
            Endpoint::Metrics => 2,
            Endpoint::Status => 3,
            Endpoint::Profile => 4,
            Endpoint::Other => 5,
        }
    }
}

/// One request's observability record: the stage-timing span plus what
/// the request turned out to be. Created when the request parses,
/// carried through the dispatch queue and worker, finished by the
/// reactor when the response's last byte is flushed.
#[derive(Debug)]
pub struct ReqMeta {
    /// Stage timings and the request id.
    pub span: RequestSpan,
    /// The endpoint the router resolved (Other until routed).
    pub endpoint: Endpoint,
    /// Response status (filled when the response serializes).
    pub status: u16,
    /// Decision verdict (`holds` / `not_holds` / `exhausted`), when the
    /// request was a single decision.
    pub verdict: Option<&'static str>,
    /// Decision-cache outcome (`hit` / `miss`) for single decisions.
    pub cache: Option<&'static str>,
    /// Machine-readable cause for non-2xx answers (`overloaded`,
    /// `parse_error`, …).
    pub cause: Option<&'static str>,
    /// Request bytes consumed off the wire (head + body).
    pub bytes_in: u64,
    /// Response bytes queued to the socket (head + body).
    pub bytes_out: u64,
}

impl ReqMeta {
    /// A fresh record whose span starts at `start` (the instant the
    /// parse attempt began).
    pub fn begin_at(start: Instant) -> ReqMeta {
        ReqMeta {
            span: RequestSpan::begin_at(start),
            endpoint: Endpoint::Other,
            status: 0,
            verdict: None,
            cache: None,
            cause: None,
            bytes_in: 0,
            bytes_out: 0,
        }
    }
}

/// The access-log writer: a bounded channel into a dedicated thread
/// that owns the file handle. Dropping it closes the channel and joins
/// the thread, so every accepted line reaches the file before process
/// exit.
struct AccessLog {
    tx: Option<SyncSender<String>>,
    thread: Option<JoinHandle<()>>,
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn logger_loop(rx: Receiver<String>, out: Box<dyn Write + Send>) {
    let mut buf = BufWriter::new(out);
    while let Ok(line) = rx.recv() {
        let _ = buf.write_all(line.as_bytes());
        // Drain whatever queued behind this line, then flush once: the
        // file stays current whenever the channel goes quiet, without a
        // flush per line under load.
        while let Ok(more) = rx.try_recv() {
            let _ = buf.write_all(more.as_bytes());
        }
        let _ = buf.flush();
    }
    let _ = buf.flush();
}

/// The server's request-level observability state: stage and endpoint
/// histograms, live gauges, decision-cache outcome counters, and the
/// optional access log.
pub struct ServerObs {
    started: Instant,
    stage_hist: [Histogram; STAGES.len()],
    endpoint_hist: [Histogram; ENDPOINTS.len()],
    /// Currently open client connections.
    pub open_connections: AtomicU64,
    /// High-watermark of the dispatch-queue depth.
    pub queue_highwater: AtomicU64,
    /// Workers currently inside a request handler.
    pub in_flight_workers: AtomicU64,
    /// Batch pairs that reused another pair's canonical `q1`
    /// representative (server-side batch dedup wins).
    pub batch_dedup_hits: AtomicU64,
    /// Decisions answered from the decision cache.
    pub decision_hits: AtomicU64,
    /// Decisions that ran the chase/hom compute path.
    pub decision_misses: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses.
    pub responses_4xx: AtomicU64,
    /// 5xx responses.
    pub responses_5xx: AtomicU64,
    /// Access-log lines accepted onto the channel.
    pub log_lines: AtomicU64,
    /// Access-log lines dropped because the channel was full.
    pub log_dropped: AtomicU64,
    log: Option<AccessLog>,
    slow_us: Option<u64>,
    sample: u64,
}

impl ServerObs {
    /// Builds the observability state for `config`, opening the access
    /// log (append mode; `-` means stdout) and starting its logger
    /// thread when `--access-log` was given.
    pub fn new(config: &ServerConfig) -> io::Result<ServerObs> {
        let log = match config.access_log.as_deref() {
            None => None,
            Some(target) => {
                let out: Box<dyn Write + Send> = if target == "-" {
                    Box::new(io::stdout())
                } else {
                    Box::new(OpenOptions::new().create(true).append(true).open(target)?)
                };
                let (tx, rx) = sync_channel(LOG_CHANNEL_CAP);
                let thread = std::thread::Builder::new()
                    .name("flqd-access-log".into())
                    .spawn(move || logger_loop(rx, out))?;
                Some(AccessLog {
                    tx: Some(tx),
                    thread: Some(thread),
                })
            }
        };
        Ok(ServerObs {
            started: Instant::now(),
            stage_hist: std::array::from_fn(|_| Histogram::new()),
            endpoint_hist: std::array::from_fn(|_| Histogram::new()),
            open_connections: AtomicU64::new(0),
            queue_highwater: AtomicU64::new(0),
            in_flight_workers: AtomicU64::new(0),
            batch_dedup_hits: AtomicU64::new(0),
            decision_hits: AtomicU64::new(0),
            decision_misses: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            log_lines: AtomicU64::new(0),
            log_dropped: AtomicU64::new(0),
            log,
            slow_us: config.slow_us,
            sample: config.log_sample.max(1),
        })
    }

    /// Records the dispatch-queue depth after an enqueue (gauge
    /// high-watermark).
    pub fn note_queue_depth(&self, depth: u64) {
        self.queue_highwater.fetch_max(depth, Ordering::Relaxed);
    }

    /// Folds a finished request into the histograms, counters, and —
    /// when it passes the sampling/slow filters — the access log.
    pub fn record(&self, meta: &ReqMeta) {
        for &(stage, nanos) in meta.span.stages() {
            if let Some(i) = stage_index(stage) {
                self.stage_hist[i].record_nanos(nanos);
            }
        }
        let total = meta.span.total_nanos();
        self.endpoint_hist[meta.endpoint.index()].record_nanos(total);
        let class = match meta.status {
            s if s < 400 => &self.responses_2xx,
            s if s < 500 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        if let Some(log) = &self.log {
            let total_us = total / 1_000;
            let sampled = meta.span.id() % self.sample == 0;
            let slow = self.slow_us.is_some_and(|t| total_us >= t);
            if !(sampled || slow) {
                return;
            }
            let line = access_line(meta, total_us);
            let tx = log.tx.as_ref().expect("log sender alive while serving");
            match tx.try_send(line) {
                Ok(()) => {
                    self.log_lines.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    self.log_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// A point-in-time copy of everything the metrics and status
    /// endpoints render.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            uptime_s: self.started.elapsed().as_secs(),
            stages: STAGES
                .iter()
                .zip(self.stage_hist.iter())
                .map(|(name, h)| (*name, h.snapshot()))
                .collect(),
            endpoints: ENDPOINTS
                .iter()
                .zip(self.endpoint_hist.iter())
                .map(|(e, h)| (e.name(), h.snapshot()))
                .collect(),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            queue_highwater: self.queue_highwater.load(Ordering::Relaxed),
            in_flight_workers: self.in_flight_workers.load(Ordering::Relaxed),
            batch_dedup_hits: self.batch_dedup_hits.load(Ordering::Relaxed),
            decision_hits: self.decision_hits.load(Ordering::Relaxed),
            decision_misses: self.decision_misses.load(Ordering::Relaxed),
            responses_2xx: self.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
            log_lines: self.log_lines.load(Ordering::Relaxed),
            log_dropped: self.log_dropped.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of [`ServerObs`] for rendering `/metrics` and
/// `/v1/status`.
pub struct ObsSnapshot {
    /// Whole seconds since the server started.
    pub uptime_s: u64,
    /// Per-stage latency distributions, in [`STAGES`] order.
    pub stages: Vec<(&'static str, HistogramSnapshot)>,
    /// Per-endpoint end-to-end latency distributions.
    pub endpoints: Vec<(&'static str, HistogramSnapshot)>,
    /// Currently open client connections.
    pub open_connections: u64,
    /// Dispatch-queue depth high-watermark.
    pub queue_highwater: u64,
    /// Workers currently inside a request handler.
    pub in_flight_workers: u64,
    /// Batch pairs that reused a shared canonical representative.
    pub batch_dedup_hits: u64,
    /// Decision-cache hits.
    pub decision_hits: u64,
    /// Decision-cache misses (compute ran).
    pub decision_misses: u64,
    /// Responses with status < 400.
    pub responses_2xx: u64,
    /// Responses with 4xx status.
    pub responses_4xx: u64,
    /// Responses with 5xx status.
    pub responses_5xx: u64,
    /// Access-log lines accepted.
    pub log_lines: u64,
    /// Access-log lines dropped (channel full).
    pub log_dropped: u64,
}

/// One JSONL access-log line (newline-terminated). Integer-only JSON so
/// the strict [`json`](crate::json) parser round-trips it; string
/// values are fixed `'static` vocabularies, so no escaping is needed.
fn access_line(meta: &ReqMeta, total_us: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"id\":{},\"endpoint\":\"{}\",\"status\":{}",
        meta.span.id(),
        meta.endpoint.name(),
        meta.status
    );
    if let Some(v) = meta.verdict {
        let _ = write!(s, ",\"verdict\":\"{v}\"");
    }
    if let Some(c) = meta.cache {
        let _ = write!(s, ",\"cache\":\"{c}\"");
    }
    if let Some(c) = meta.cause {
        let _ = write!(s, ",\"cause\":\"{c}\"");
    }
    let _ = write!(
        s,
        ",\"bytes_in\":{},\"bytes_out\":{},\"total_us\":{total_us},\"stages\":{{",
        meta.bytes_in, meta.bytes_out
    );
    for (i, (stage, nanos)) in meta.span.stages().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{stage}_us\":{}", nanos / 1_000);
    }
    s.push_str("}}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_meta() -> ReqMeta {
        let t0 = Instant::now();
        let mut meta = ReqMeta::begin_at(t0);
        meta.span.mark_at("parse", t0 + Duration::from_micros(3));
        meta.span.mark_at("queue", t0 + Duration::from_micros(8));
        meta.span.mark_at("decide", t0 + Duration::from_micros(110));
        meta.span.mark_at("write", t0 + Duration::from_micros(118));
        meta.endpoint = Endpoint::Contains;
        meta.status = 200;
        meta.verdict = Some("holds");
        meta.cache = Some("hit");
        meta.bytes_in = 140;
        meta.bytes_out = 180;
        meta
    }

    #[test]
    fn access_line_is_strict_json_and_integer_only() {
        let meta = sample_meta();
        let line = access_line(&meta, meta.span.total_nanos() / 1_000);
        assert!(line.ends_with('\n'));
        let value = crate::json::parse(line.trim_end()).expect("line parses back");
        let obj = value.as_obj().unwrap();
        assert_eq!(obj.get("endpoint").unwrap().as_str(), Some("contains"));
        assert_eq!(obj.get("status").unwrap().as_u64(), Some(200));
        assert_eq!(obj.get("verdict").unwrap().as_str(), Some("holds"));
        assert_eq!(obj.get("bytes_in").unwrap().as_u64(), Some(140));
        let stages = obj.get("stages").unwrap().as_obj().unwrap();
        assert_eq!(stages.get("parse_us").unwrap().as_u64(), Some(3));
        assert_eq!(stages.get("decide_us").unwrap().as_u64(), Some(102));
        assert!(!obj.contains_key("cause"), "cause omitted when None");
    }

    #[test]
    fn record_feeds_stage_and_endpoint_histograms() {
        let obs = ServerObs::new(&ServerConfig::default()).unwrap();
        let meta = sample_meta();
        obs.record(&meta);
        let snap = obs.snapshot();
        let stage = |name: &str| {
            snap.stages
                .iter()
                .find(|(s, _)| *s == name)
                .map(|(_, h)| h.count)
                .unwrap()
        };
        assert_eq!(stage("parse"), 1);
        assert_eq!(stage("queue"), 1);
        assert_eq!(stage("decide"), 1);
        assert_eq!(stage("write"), 1);
        assert_eq!(stage("canon"), 0, "unmarked stages stay empty");
        let contains = snap
            .endpoints
            .iter()
            .find(|(e, _)| *e == "contains")
            .unwrap();
        assert_eq!(contains.1.count, 1);
        assert_eq!(snap.responses_2xx, 1);
        assert_eq!(snap.log_lines, 0, "no access log configured");
    }

    #[test]
    fn sampling_and_slow_threshold_filter_lines() {
        let dir = std::env::temp_dir().join(format!("flqd-obs-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("access.jsonl");
        let config = ServerConfig {
            access_log: Some(path.to_string_lossy().into_owned()),
            log_sample: 1_000_000_000,
            slow_us: Some(50),
            ..ServerConfig::default()
        };
        let obs = ServerObs::new(&config).unwrap();
        // total ≈ 118 µs ≥ slow-us 50: logged despite the huge sample
        // divisor (request ids are global, so id % N == 0 is unlikely).
        obs.record(&sample_meta());
        // A fast request under the threshold: sampled out.
        let t0 = Instant::now();
        let mut fast = ReqMeta::begin_at(t0);
        fast.span.mark_at("write", t0 + Duration::from_micros(4));
        fast.status = 200;
        obs.record(&fast);
        let lines = obs.log_lines.load(Ordering::Relaxed);
        assert!((1..=2).contains(&lines), "slow line always logged: {lines}");
        drop(obs); // joins the logger thread, flushing the file
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count() as u64, lines);
        assert!(text.contains("\"endpoint\":\"contains\""), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
