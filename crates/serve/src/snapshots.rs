//! A byte-capped, process-resident LRU cache of chase snapshots.
//!
//! The server's warm path: every decision about a `q1` the service has
//! seen before reuses that query's [`ChaseSnapshot`] and pays only the
//! homomorphism search. Entries are keyed by [`QueryKey::structural`]
//! (renaming- and body-order-invariant, no core reduction) because a
//! snapshot's depth is derived from the keyed query's literal size.
//! Semantic unification — renamed, permuted *and* redundant-atom
//! variants sharing one chase — comes from the server substituting
//! [`flogic_core::canonical_query`] representatives before it reaches
//! this cache (see `decide_pair`), so with canonicalization on, the
//! structural key of the representative *is* the semantic key.
//!
//! Residency is capped in **bytes**, not entries, using the same
//! `approx_bytes` accounting the chase governor's
//! [`Budget::bytes`](flogic_core::Budget::bytes) cap charges against.
//! Two snapshots of wildly different sizes are charged what they
//! actually hold, and the server's RSS contribution from warm chases
//! stays bounded by configuration.
//!
//! Two kinds of snapshot are never cached:
//!
//! * **Exhausted builds** — undecidedness is a property of the build
//!   budget, not of `q1`; caching one would pin "exhausted" answers
//!   (the same rule the `DecisionCache` applies to verdicts).
//! * **Snapshots larger than the whole cap** — they are still *served*
//!   (the decision completes) but not retained.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use flogic_core::{ChaseSnapshot, ContainmentOptions, CoreError, QueryKey};
use flogic_model::ConjunctiveQuery;

/// Running statistics of a [`SnapshotCache`], all monotonic except
/// `resident_bytes`/`resident_entries`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotCacheStats {
    /// Lookups answered by a resident snapshot of sufficient depth.
    pub hits: u64,
    /// Lookups that had to build (no entry, or an entry too shallow).
    pub misses: u64,
    /// Entries evicted to stay under the byte cap.
    pub evictions: u64,
    /// Builds discarded instead of cached (exhausted, or over-cap).
    pub uncacheable: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub resident_entries: u64,
}

struct Entry {
    snapshot: Arc<ChaseSnapshot>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<QueryKey, Entry>,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    uncacheable: u64,
}

/// The cache itself. Shared across workers behind one mutex: the held
/// section only moves `Arc`s and counters around — chase building and
/// hom search happen outside the lock.
pub struct SnapshotCache {
    cap_bytes: usize,
    tick: AtomicU64,
    inner: Mutex<Inner>,
}

impl SnapshotCache {
    /// Creates a cache holding at most `cap_bytes` of snapshots.
    pub fn new(cap_bytes: usize) -> SnapshotCache {
        SnapshotCache {
            cap_bytes,
            tick: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                uncacheable: 0,
            }),
        }
    }

    /// The configured byte cap.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Returns a snapshot of `q1` chased to at least `bound` levels,
    /// building (and usually retaining) one on miss.
    ///
    /// A resident snapshot with a *deeper* bound than requested is a hit
    /// — Theorem 12 only needs a prefix, and a deeper chase contains it.
    /// A shallower resident snapshot is treated as a miss and replaced
    /// by a rebuild at the larger bound, so the cache converges to one
    /// snapshot per `q1` at the deepest bound ever requested.
    pub fn get_or_build(
        &self,
        q1: &ConjunctiveQuery,
        bound: u32,
        opts: &ContainmentOptions,
    ) -> Result<Arc<ChaseSnapshot>, CoreError> {
        let key = QueryKey::structural(q1);
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner = self.inner.lock().expect("snapshot cache poisoned");
            if let Some(entry) = inner.map.get_mut(&key) {
                if entry.snapshot.level_bound() >= bound {
                    entry.last_used = now;
                    let snapshot = Arc::clone(&entry.snapshot);
                    inner.hits += 1;
                    return Ok(snapshot);
                }
            }
            inner.misses += 1;
        }
        // Build outside the lock: other workers keep serving hits (and
        // may race to build the same q1 — both builds are correct, and
        // the second insert simply replaces the first).
        let snapshot = Arc::new(ChaseSnapshot::build(q1, bound, opts)?);
        let bytes = snapshot.approx_bytes();
        let mut inner = self.inner.lock().expect("snapshot cache poisoned");
        if snapshot.is_exhausted() || bytes > self.cap_bytes {
            inner.uncacheable += 1;
            // The rebuild was triggered because any resident entry is too
            // shallow for the depths now being requested: it burns cap
            // bytes but can never serve them, so drop it rather than
            // letting it sit until LRU pressure gets around to it.
            if let Some(stale) = inner.map.remove(&key) {
                inner.bytes -= stale.bytes;
                inner.evictions += 1;
            }
            return Ok(snapshot);
        }
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                snapshot: Arc::clone(&snapshot),
                bytes,
                last_used: now,
            },
        );
        while inner.bytes > self.cap_bytes {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = inner.map.remove(&oldest).expect("key just observed");
            inner.bytes -= evicted.bytes;
            inner.evictions += 1;
        }
        Ok(snapshot)
    }

    /// Current statistics.
    pub fn stats(&self) -> SnapshotCacheStats {
        let inner = self.inner.lock().expect("snapshot cache poisoned");
        SnapshotCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            uncacheable: inner.uncacheable,
            resident_bytes: inner.bytes as u64,
            resident_entries: inner.map.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_core::{theorem_bound, Budget};
    use flogic_syntax::parse_query;

    fn q(text: &str) -> ConjunctiveQuery {
        parse_query(text).unwrap()
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_snapshot() {
        let cache = SnapshotCache::new(1 << 20);
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let opts = ContainmentOptions::default();
        let a = cache.get_or_build(&q1, 8, &opts).unwrap();
        let b = cache.get_or_build(&q1, 8, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A renamed, reordered spelling of the same query also hits.
        let q1b = q("r(A, C) :- sub(B, C), sub(A, B).");
        let c = cache.get_or_build(&q1b, 8, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &c), "canonical key unifies spellings");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.resident_entries, 1);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn deeper_resident_bound_hits_shallower_misses_and_upgrades() {
        let cache = SnapshotCache::new(1 << 20);
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let opts = ContainmentOptions::default();
        let shallow = cache.get_or_build(&q1, 2, &opts).unwrap();
        assert_eq!(shallow.level_bound(), 2);
        // Asking deeper rebuilds...
        let deep = cache.get_or_build(&q1, 6, &opts).unwrap();
        assert_eq!(deep.level_bound(), 6);
        assert!(!Arc::ptr_eq(&shallow, &deep));
        // ...and asking shallower afterwards reuses the deep snapshot.
        let again = cache.get_or_build(&q1, 2, &opts).unwrap();
        assert!(Arc::ptr_eq(&deep, &again));
        assert_eq!(
            cache.stats().resident_entries,
            1,
            "upgrade replaced in place"
        );
    }

    #[test]
    fn byte_cap_evicts_least_recently_used_first() {
        let opts = ContainmentOptions::default();
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("r(X, Y) :- member(X, Y).");
        let q3 = q("s(X, Y) :- data(X, Y, Z).");
        // Measure the three snapshots, then cap the cache one byte short
        // of all of them together: the third insert must evict.
        let sizer = SnapshotCache::new(1 << 20);
        let total: usize = [&q1, &q2, &q3]
            .iter()
            .map(|q| sizer.get_or_build(q, 8, &opts).unwrap().approx_bytes())
            .sum();
        let cache = SnapshotCache::new(total - 1);
        cache.get_or_build(&q1, 8, &opts).unwrap();
        cache.get_or_build(&q2, 8, &opts).unwrap();
        cache.get_or_build(&q1, 8, &opts).unwrap(); // refresh q1
        cache.get_or_build(&q3, 8, &opts).unwrap(); // evicts q2, the LRU
        let stats = cache.stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert!(stats.resident_bytes <= (total - 1) as u64, "{stats:?}");
        // q1 survived (it was refreshed); q2 was the victim.
        cache.get_or_build(&q1, 8, &opts).unwrap();
        assert_eq!(cache.stats().hits, 2, "q1 still resident");
    }

    #[test]
    fn exhausted_builds_are_served_but_never_cached() {
        let cache = SnapshotCache::new(1 << 20);
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let opts = ContainmentOptions {
            budget: Budget::unlimited().steps(1),
            ..Default::default()
        };
        let snap = cache.get_or_build(&q1, 8, &opts).unwrap();
        assert!(snap.is_exhausted());
        let stats = cache.stats();
        assert_eq!(stats.resident_entries, 0);
        assert_eq!(stats.uncacheable, 1);
        // With the budget lifted the next lookup builds a decided
        // snapshot and caches it.
        let opts = ContainmentOptions::default();
        let snap = cache.get_or_build(&q1, 8, &opts).unwrap();
        assert!(!snap.is_exhausted());
        assert_eq!(cache.stats().resident_entries, 1);
    }

    #[test]
    fn uncacheable_rebuild_evicts_the_stale_shallow_entry() {
        let cache = SnapshotCache::new(1 << 20);
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let opts = ContainmentOptions::default();
        let shallow = cache.get_or_build(&q1, 2, &opts).unwrap();
        assert_eq!(cache.stats().resident_entries, 1);
        // A deeper request under a starvation budget exhausts: the build
        // is served but not cached — and the shallow entry, which can
        // never serve the depths now being asked for, must go with it.
        let tight = ContainmentOptions {
            budget: Budget::unlimited().steps(1),
            ..Default::default()
        };
        let deep = cache.get_or_build(&q1, 6, &tight).unwrap();
        assert!(deep.is_exhausted());
        assert!(!Arc::ptr_eq(&shallow, &deep));
        let stats = cache.stats();
        assert_eq!(stats.uncacheable, 1);
        assert_eq!(stats.evictions, 1, "stale shallow entry evicted");
        assert_eq!(stats.resident_entries, 0, "{stats:?}");
        assert_eq!(stats.resident_bytes, 0, "{stats:?}");
        // The next exact request rebuilds cleanly and re-caches.
        let fixed = cache.get_or_build(&q1, 6, &opts).unwrap();
        assert!(!fixed.is_exhausted());
        assert_eq!(cache.stats().resident_entries, 1);
    }

    #[test]
    fn snapshot_larger_than_the_whole_cap_is_served_not_retained() {
        let cache = SnapshotCache::new(1);
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- sub(X, Z).");
        let opts = ContainmentOptions::default();
        let bound = theorem_bound(&q1, &q2);
        let snap = cache.get_or_build(&q1, bound, &opts).unwrap();
        // The decision still works off the returned snapshot...
        assert!(snap.contains(&q2, &opts).unwrap().holds());
        // ...but nothing stuck.
        let stats = cache.stats();
        assert_eq!(stats.resident_entries, 0);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.uncacheable, 1);
    }
}
