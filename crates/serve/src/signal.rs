//! SIGTERM/SIGINT notification for graceful shutdown.
//!
//! The workspace has no signal-handling dependency and `std` exposes no
//! portable signal API, so this module makes the one `libc` call the
//! server needs — `signal(2)` — through a direct `extern "C"`
//! declaration. The handler does the only thing that is async-signal-safe
//! here: store a relaxed atomic flag. The accept loop polls the flag
//! (it already wakes every few milliseconds to poll its non-blocking
//! listener), so no self-pipe is needed.
//!
//! This is the sole `unsafe` in the workspace; the crate-level lint is
//! `deny(unsafe_code)` (not the workspace's `forbid`) precisely so this
//! module can scope one allowance with a justification.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler once a termination signal arrives.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT has been received (always false until
/// [`install`] has been called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::Relaxed)
}

/// Test/seam hook: raise the flag as if a signal had arrived.
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::Relaxed);
}

#[allow(unsafe_code)]
mod ffi {
    //! The single FFI site: registering the flag-setting handler.
    //!
    //! Safety rests on three facts: `signal(2)` is in every libc this
    //! workspace targets (Linux/macOS, per `rust-version`'s platform
    //! support); the handler only performs a relaxed atomic store, which
    //! is async-signal-safe; and the function-pointer types match the C
    //! prototype `void (*)(int)`.

    use super::{AtomicBool, Ordering, SHUTDOWN_REQUESTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work: one relaxed store.
        let flag: &AtomicBool = &SHUTDOWN_REQUESTED;
        flag.store(true, Ordering::Relaxed);
    }

    pub(super) fn install_handlers() {
        // SAFETY: `signal` matches the libc prototype; `on_signal` is
        // `extern "C" fn(i32)` and async-signal-safe (see module docs).
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Installs the SIGTERM/SIGINT handlers (process-wide; the `flqd` binary
/// calls this once, in-process test servers do not).
pub fn install() {
    ffi::install_handlers();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shutdown_raises_the_flag() {
        // Note: the flag is process-global, so this test is written to
        // be order-independent — it only ever raises the flag.
        install();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
