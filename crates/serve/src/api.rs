//! The wire API: request decoding and verdict/error encoding.
//!
//! Everything the server says is JSON with a fixed, documented shape.
//! Two invariants matter more than the shapes themselves:
//!
//! * **Exhaustion is an outcome, not an error.** A request whose chase
//!   ran out of budget answers HTTP 200 with `"verdict": "exhausted"`
//!   and the partial statistics — exactly the contract of
//!   [`Verdict::Exhausted`] and the `flq` CLI's exit code 3. Only
//!   malformed requests and true engine faults get non-2xx statuses.
//! * **Typed errors.** Every non-2xx body is
//!   `{"error": {"code": …, "message": …}}` with a stable machine
//!   code, so load generators and clients can branch without string
//!   matching.

use std::fmt::Write as _;
use std::time::Duration;

use flogic_core::{
    Budget, ContainmentOptions, ContainmentResult, CoreError, ExhaustReason, Verdict,
};

use crate::http::Response;
use crate::json::{self, escape_into, Json};

/// A typed API error: HTTP status plus a stable machine-readable code.
#[derive(Clone, Debug)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable code (`bad_request`, `parse_error`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// A 400 with code `bad_request` — structurally valid JSON that does
    /// not match the documented request shape.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code: "bad_request",
            message: message.into(),
        }
    }

    /// A 400 with code `parse_error` — the body was not valid JSON, or a
    /// query string was not valid surface syntax.
    pub fn parse_error(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code: "parse_error",
            message: message.into(),
        }
    }

    /// A 404 with code `not_found`.
    pub fn not_found(path: &str) -> ApiError {
        ApiError {
            status: 404,
            code: "not_found",
            message: format!("no such endpoint: {path}"),
        }
    }

    /// A 405 with code `method_not_allowed`.
    pub fn method_not_allowed(method: &str, path: &str) -> ApiError {
        ApiError {
            status: 405,
            code: "method_not_allowed",
            message: format!("{method} is not supported on {path}"),
        }
    }

    /// A 413 with code `payload_too_large`.
    pub fn payload_too_large(declared: usize, cap: usize) -> ApiError {
        ApiError {
            status: 413,
            code: "payload_too_large",
            message: format!("declared body of {declared} bytes exceeds the {cap}-byte cap"),
        }
    }

    /// A 503 with code `overloaded` — the accept queue is full. The
    /// response carries `Retry-After`.
    pub fn overloaded() -> ApiError {
        ApiError {
            status: 503,
            code: "overloaded",
            message: "request queue is full; retry shortly".into(),
        }
    }

    /// A 500 with code `internal`.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 500,
            code: "internal",
            message: message.into(),
        }
    }

    /// Renders the error as its HTTP response (adding `Retry-After: 1`
    /// to 503s).
    pub fn to_response(&self) -> Response {
        let mut body = String::from("{\"error\":{\"code\":");
        escape_into(&mut body, self.code);
        body.push_str(",\"message\":");
        escape_into(&mut body, &self.message);
        body.push_str("}}");
        let mut resp = Response::json(self.status, body);
        resp.cause = Some(self.code);
        if self.status == 503 {
            resp.extra_headers.push(("retry-after", "1".into()));
        }
        resp
    }
}

/// Maps a decision-engine error onto the API error space.
///
/// `Exhausted` is unreachable here — `contains_with` reports exhaustion
/// as a verdict — but mapping it defensively to `internal` beats a
/// panic if a future refactor changes that.
pub fn core_error(e: &CoreError) -> ApiError {
    match e {
        CoreError::Syntax(msg) => ApiError::parse_error(msg.clone()),
        CoreError::ArityMismatch { q1, q2 } => ApiError {
            status: 400,
            code: "arity_mismatch",
            message: format!("head arities differ: q1 has {q1}, q2 has {q2}"),
        },
        CoreError::WorkerFailed { detail } => ApiError::internal(detail.clone()),
        CoreError::Exhausted { .. } => ApiError::internal(format!("unexpected error: {e}")),
    }
}

/// Per-request decision knobs, all optional; absent fields fall back to
/// the server's configured defaults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestOpts {
    /// Wall-clock budget for the decision, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Cap on materialized chase conjuncts.
    pub max_conjuncts: Option<usize>,
    /// Whether to consult the static analyzer (verdict-neutral).
    pub analysis: Option<bool>,
}

impl RequestOpts {
    /// Applies the request's overrides on top of the server's base
    /// options.
    pub fn apply(&self, base: &ContainmentOptions) -> ContainmentOptions {
        let mut opts = base.clone();
        if let Some(ms) = self.timeout_ms {
            opts.budget = Budget::with_timeout(Duration::from_millis(ms));
        }
        if let Some(n) = self.max_conjuncts {
            opts.max_conjuncts = n;
        }
        if let Some(a) = self.analysis {
            opts.analysis = a;
        }
        opts
    }

    fn from_obj(obj: &std::collections::BTreeMap<String, Json>) -> Result<RequestOpts, ApiError> {
        let mut opts = RequestOpts::default();
        if let Some(v) = obj.get("timeout_ms") {
            opts.timeout_ms = Some(
                v.as_u64()
                    .ok_or_else(|| ApiError::bad_request("timeout_ms must be an integer"))?,
            );
        }
        if let Some(v) = obj.get("max_conjuncts") {
            let n = v
                .as_u64()
                .ok_or_else(|| ApiError::bad_request("max_conjuncts must be an integer"))?;
            opts.max_conjuncts = Some(usize::try_from(n).map_err(|_| {
                ApiError::bad_request("max_conjuncts does not fit this platform's usize")
            })?);
        }
        if let Some(v) = obj.get("analysis") {
            opts.analysis = Some(
                v.as_bool()
                    .ok_or_else(|| ApiError::bad_request("analysis must be a boolean"))?,
            );
        }
        Ok(opts)
    }
}

/// A decoded `POST /v1/contains` body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainsRequest {
    /// Surface syntax of the candidate containee.
    pub q1: String,
    /// Surface syntax of the candidate container.
    pub q2: String,
    /// Per-request knobs.
    pub opts: RequestOpts,
}

/// A decoded `POST /v1/contains_batch` body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchRequest {
    /// The `(q1, q2)` pairs, in request order.
    pub pairs: Vec<(String, String)>,
    /// Per-request knobs, shared by every pair in the batch.
    pub opts: RequestOpts,
}

fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::parse_error("request body is not UTF-8"))?;
    json::parse(text).map_err(ApiError::parse_error)
}

fn known_keys(
    obj: &std::collections::BTreeMap<String, Json>,
    allowed: &[&str],
) -> Result<(), ApiError> {
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::bad_request(format!("unknown field {key:?}")));
        }
    }
    Ok(())
}

/// Decodes a `POST /v1/contains` body:
/// `{"q1": …, "q2": …, "timeout_ms"?, "max_conjuncts"?, "analysis"?}`.
pub fn parse_contains(body: &[u8]) -> Result<ContainsRequest, ApiError> {
    let value = parse_body(body)?;
    let obj = value
        .as_obj()
        .ok_or_else(|| ApiError::bad_request("body must be a JSON object"))?;
    known_keys(
        obj,
        &["q1", "q2", "timeout_ms", "max_conjuncts", "analysis"],
    )?;
    let field = |name: &str| -> Result<String, ApiError> {
        obj.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ApiError::bad_request(format!("{name} must be a string")))
    };
    Ok(ContainsRequest {
        q1: field("q1")?,
        q2: field("q2")?,
        opts: RequestOpts::from_obj(obj)?,
    })
}

/// Decodes a `POST /v1/contains_batch` body:
/// `{"pairs": [[q1, q2], …], "timeout_ms"?, "max_conjuncts"?, "analysis"?}`.
pub fn parse_batch(body: &[u8]) -> Result<BatchRequest, ApiError> {
    let value = parse_body(body)?;
    let obj = value
        .as_obj()
        .ok_or_else(|| ApiError::bad_request("body must be a JSON object"))?;
    known_keys(obj, &["pairs", "timeout_ms", "max_conjuncts", "analysis"])?;
    let raw_pairs = obj
        .get("pairs")
        .and_then(Json::as_arr)
        .ok_or_else(|| ApiError::bad_request("pairs must be an array"))?;
    let mut pairs = Vec::with_capacity(raw_pairs.len());
    for (i, item) in raw_pairs.iter().enumerate() {
        let pair = item.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
            ApiError::bad_request(format!("pairs[{i}] must be a two-element array"))
        })?;
        let q1 = pair[0]
            .as_str()
            .ok_or_else(|| ApiError::bad_request(format!("pairs[{i}][0] must be a string")))?;
        let q2 = pair[1]
            .as_str()
            .ok_or_else(|| ApiError::bad_request(format!("pairs[{i}][1] must be a string")))?;
        pairs.push((q1.to_string(), q2.to_string()));
    }
    Ok(BatchRequest {
        pairs,
        opts: RequestOpts::from_obj(obj)?,
    })
}

/// The stable wire name of an exhaustion reason.
pub fn reason_code(reason: ExhaustReason) -> &'static str {
    match reason {
        ExhaustReason::Conjuncts => "conjuncts",
        ExhaustReason::Deadline => "deadline",
        ExhaustReason::Steps => "steps",
        ExhaustReason::Bytes => "bytes",
        ExhaustReason::Cancelled => "cancelled",
    }
}

/// Encodes one decision as its wire object.
///
/// The object always carries `verdict` (`"holds"`, `"not_holds"` or
/// `"exhausted"`) and the decision statistics; `reason` appears only on
/// exhausted verdicts.
pub fn verdict_json(result: &ContainmentResult) -> String {
    let mut s = String::with_capacity(160);
    s.push_str("{\"verdict\":");
    match result.verdict() {
        Verdict::Holds => s.push_str("\"holds\""),
        Verdict::NotHolds => s.push_str("\"not_holds\""),
        Verdict::Exhausted(reason) => {
            s.push_str("\"exhausted\",\"reason\":");
            escape_into(&mut s, reason_code(reason));
        }
    }
    let _ = write!(s, ",\"vacuous\":{}", result.is_vacuous());
    let _ = write!(
        s,
        ",\"decided_by_analysis\":{}",
        result.decided_by_analysis()
    );
    let _ = write!(s, ",\"chase_conjuncts\":{}", result.chase_conjuncts());
    let _ = write!(s, ",\"level_bound\":{}", result.level_bound());
    let _ = write!(s, ",\"max_chase_level\":{}", result.max_chase_level());
    s.push('}');
    s
}

/// Encodes a batch of decisions, in request order:
/// `{"results": [<verdict object>, …]}`.
pub fn batch_json(results: &[ContainmentResult]) -> String {
    let mut s = String::with_capacity(32 + results.len() * 160);
    s.push_str("{\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&verdict_json(r));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_core::contains_with;
    use flogic_syntax::parse_query;

    #[test]
    fn contains_request_decodes_with_and_without_knobs() {
        let req = parse_contains(
            br#"{"q1":"a","q2":"b","timeout_ms":50,"max_conjuncts":10,"analysis":false}"#,
        )
        .unwrap();
        assert_eq!(req.q1, "a");
        assert_eq!(req.opts.timeout_ms, Some(50));
        assert_eq!(req.opts.max_conjuncts, Some(10));
        assert_eq!(req.opts.analysis, Some(false));

        let req = parse_contains(br#"{"q1":"a","q2":"b"}"#).unwrap();
        assert_eq!(req.opts, RequestOpts::default());

        let base = ContainmentOptions::default();
        let opts = req.opts.apply(&base);
        assert_eq!(opts.max_conjuncts, base.max_conjuncts);
        assert!(opts.analysis);
    }

    #[test]
    fn malformed_contains_requests_get_typed_errors() {
        for (body, code) in [
            (br#"not json"#.as_slice(), "parse_error"),
            (br#"[1,2]"#.as_slice(), "bad_request"),
            (br#"{"q1":"a"}"#.as_slice(), "bad_request"),
            (br#"{"q1":"a","q2":7}"#.as_slice(), "bad_request"),
            (
                br#"{"q1":"a","q2":"b","bogus":1}"#.as_slice(),
                "bad_request",
            ),
            (
                br#"{"q1":"a","q2":"b","timeout_ms":"soon"}"#.as_slice(),
                "bad_request",
            ),
        ] {
            let err = parse_contains(body).unwrap_err();
            assert_eq!(err.code, code, "{:?}", String::from_utf8_lossy(body));
            assert_eq!(err.status, 400);
        }
    }

    #[test]
    fn batch_request_decodes_pairs_in_order() {
        let req = parse_batch(br#"{"pairs":[["a","b"],["c","d"]],"timeout_ms":9}"#).unwrap();
        assert_eq!(
            req.pairs,
            vec![
                ("a".to_string(), "b".to_string()),
                ("c".to_string(), "d".to_string())
            ]
        );
        assert_eq!(req.opts.timeout_ms, Some(9));

        for body in [
            br#"{"pairs":[["a"]]}"#.as_slice(),
            br#"{"pairs":[["a","b","c"]]}"#.as_slice(),
            br#"{"pairs":"ab"}"#.as_slice(),
            br#"{"pairs":[["a",2]]}"#.as_slice(),
        ] {
            assert_eq!(parse_batch(body).unwrap_err().code, "bad_request");
        }
    }

    #[test]
    fn verdicts_encode_all_three_values() {
        let q1 = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z).").unwrap();
        let q2 = parse_query("p(X, Z) :- sub(X, Z).").unwrap();
        let opts = ContainmentOptions::default();

        let holds = contains_with(&q1, &q2, &opts).unwrap();
        let body = verdict_json(&holds);
        assert!(body.contains("\"verdict\":\"holds\""), "{body}");
        assert!(!body.contains("\"reason\""), "{body}");
        assert!(body.contains("\"vacuous\":false"), "{body}");
        assert!(body.contains("\"level_bound\":"), "{body}");

        let not = contains_with(&q2, &q1, &opts).unwrap();
        assert!(verdict_json(&not).contains("\"verdict\":\"not_holds\""));

        let tight = ContainmentOptions {
            max_conjuncts: 1,
            analysis: false,
            ..Default::default()
        };
        let exhausted = contains_with(&q1, &q2, &tight).unwrap();
        let body = verdict_json(&exhausted);
        assert!(body.contains("\"verdict\":\"exhausted\""), "{body}");
        assert!(body.contains("\"reason\":\"conjuncts\""), "{body}");

        let batch = batch_json(&[holds, not]);
        assert!(batch.starts_with("{\"results\":[{"), "{batch}");
        assert_eq!(batch.matches("\"verdict\"").count(), 2);
    }

    #[test]
    fn error_bodies_are_typed_and_503_carries_retry_after() {
        let resp = ApiError::overloaded().to_response();
        assert_eq!(resp.status, 503);
        assert!(resp
            .extra_headers
            .iter()
            .any(|(name, _)| *name == "retry-after"));
        assert!(
            resp.body.contains("\"code\":\"overloaded\""),
            "{}",
            resp.body
        );

        let resp = ApiError::not_found("/nope").to_response();
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("\"code\":\"not_found\""));
    }
}
