//! `flqd` — a resident, batched containment service over the Theorem 12
//! decision engine.
//!
//! The CLI decides one containment per process: every `flq contains`
//! pays the chase of `q1` from scratch. This crate keeps that work
//! *warm*: a long-lived process holds a [`DecisionCache`] of whole
//! verdicts and a byte-capped [`SnapshotCache`] of per-`q1` chases, so a
//! workload that keeps asking about the same queries converges to
//! homomorphism searches (and then to cache hits) instead of repeated
//! chases.
//!
//! The transport is a hand-rolled nonblocking reactor — `epoll` via the
//! same one-scoped-FFI pattern as [`signal`], a single event loop owning
//! every socket, and a bounded worker pool owning every chase (see
//! [`reactor`](crate::conn)) — still dependency-free in the same spirit
//! as `flogic-obs`'s JSONL layer. Connections are kept alive and may
//! pipeline; responses always come back in request order. The
//! interesting contracts stay semantic, not protocol-level:
//!
//! * **Verdict parity.** Warm or cold, every answer is bit-identical to
//!   `flq contains` on the same pair: the snapshot path mirrors
//!   `contains_with`'s decision order exactly, and both caches refuse to
//!   memoize anything budget-dependent.
//! * **Exhaustion is an outcome.** A decision stopped by its budget is
//!   HTTP 200 with `"verdict": "exhausted"` — the server analogue of the
//!   CLI's exit code 3 — never a 5xx.
//! * **Explicit backpressure.** A bounded dispatch queue (`--queue-cap`);
//!   a request arriving while it is full is answered `503` +
//!   `Retry-After` on the spot — the connection stays open, and nothing
//!   queues without bound.
//!
//! * **Observability built in.** Every request carries a stage-timed
//!   span from parse to socket write; per-stage and per-endpoint
//!   latency histograms back `GET /metrics` (Prometheus text
//!   exposition) and `GET /v1/status` (a JSON rollup), and
//!   `--access-log` emits one structured JSONL line per request through
//!   a dedicated logger thread that drops-and-counts rather than block
//!   the reactor (see [`obs`]).
//!
//! Endpoints: `POST /v1/contains`, `POST /v1/contains_batch`,
//! `GET /metrics` (Prometheus; `?format=text` for the legacy
//! `name value` lines), `GET /v1/status`, `GET /profile`. See
//! `docs/ARCHITECTURE.md` for the request lifecycle and `docs/CLI.md`
//! for the `flqd` / `flq serve` flags.
//!
//! [`DecisionCache`]: flogic_core::DecisionCache
//! [`SnapshotCache`]: snapshots::SnapshotCache

pub mod api;
pub mod conn;
pub mod http;
pub mod json;
pub mod obs;
pub mod poll;
pub mod signal;
pub mod snapshots;

mod reactor;
mod server;

pub use server::{Server, ServerConfig, ServerHandle, PROMETHEUS_CONTENT_TYPE, SERVE_FLAGS};

/// Runs the server as a foreground process: parse `args`, bind, print
/// the listen address on stdout, install signal handlers, serve until
/// SIGTERM/SIGINT, drain, exit.
///
/// This is the shared implementation of the `flqd` binary and the
/// `flq serve` subcommand. Returns the process exit code: `0` after a
/// clean drain, `1` on bind/serve errors, `2` on flag errors.
pub fn run_cli<I: IntoIterator<Item = String>>(args: I) -> u8 {
    let config = match ServerConfig::from_args(args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: flqd {SERVE_FLAGS}");
            return 2;
        }
    };
    let ready_fd = config.ready_fd;
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return 1;
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("error: cannot read local address: {e}");
            return 1;
        }
    };
    // The fixed prefix lets scripts (and the CI smoke test) discover an
    // ephemeral port: `flqd --addr 127.0.0.1:0` prints the real one.
    println!("flqd listening on {addr}");
    if let Some(fd) = ready_fd {
        // Readiness protocol: the supervisor passed us a pipe; one
        // `HOST:PORT\n` line on it means "bound and about to serve".
        // Closing the fd afterwards lets a blocked `head -n1` return
        // even if the write path is a FIFO.
        if let Err(e) = poll::write_to_raw_fd(fd, format!("{addr}\n").as_bytes()) {
            eprintln!("error: cannot write readiness line to fd {fd}: {e}");
            return 1;
        }
        poll::close_raw_fd(fd);
    }
    signal::install();
    match server.run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: serve failed: {e}");
            1
        }
    }
}
