//! A small, strict JSON reader and writer for the wire format.
//!
//! The server's request bodies are tiny (two query strings and a handful
//! of integer knobs), so this is a plain recursive-descent parser over the
//! full byte slice — no streaming, no incremental state. It accepts
//! exactly the JSON the API documents: objects, arrays, strings, booleans,
//! `null`, and **unsigned integers**. Floats, exponents and negative
//! numbers are rejected — no field of the API is fractional, and refusing
//! them early gives a clearer `parse_error` than a silent truncation
//! would.
//!
//! The writer side is [`escape_into`], shared by the response builders in
//! [`crate::api`]; responses are assembled with `write!` into a `String`
//! in the same style as `flogic-obs`'s exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth the parser will follow. The documented request
/// bodies nest three levels (`{"pairs": [[q1, q2], …]}`); 32 leaves
/// headroom while keeping hostile inputs from recursing unboundedly.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
///
/// Object keys are kept in a `BTreeMap`: request objects are small, and
/// deterministic iteration order keeps error messages stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number shape the API uses).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses `text` as a single JSON value; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes after value at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(format!(
            "unexpected byte {:?} at offset {}",
            char::from(c),
            *pos
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at offset {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if let Some(b'.' | b'e' | b'E') = bytes.get(*pos) {
        return Err(format!(
            "only unsigned integers are accepted (offset {start})"
        ));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("integer out of range at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {}", *pos))?;
                        // Surrogate pairs are not needed by any query
                        // syntax; reject rather than mis-decode.
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("non-scalar \\u escape at offset {}", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control byte in string at offset {}", *pos));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at offset {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        if members.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

/// Appends `s` to `out` as a JSON string literal, quotes included.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_request_shapes() {
        let single = parse(r#"{"q1":"q(X) :- sub(X, Y).","q2":"p(X) :- sub(X, Y).","timeout_ms":250,"analysis":false}"#).unwrap();
        let obj = single.as_obj().unwrap();
        assert!(obj["q1"].as_str().unwrap().starts_with("q(X)"));
        assert_eq!(obj["timeout_ms"].as_u64(), Some(250));
        assert_eq!(obj["analysis"].as_bool(), Some(false));

        let batch = parse(r#"{"pairs":[["a","b"],["a","c"]]}"#).unwrap();
        let pairs = batch.as_obj().unwrap()["pairs"].as_arr().unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1].as_arr().unwrap()[1].as_str(), Some("c"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut lit = String::new();
        escape_into(&mut lit, "a\"b\\c\nd\te\u{1}f");
        let back = parse(&lit).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}f"));
        // Unicode escapes decode too.
        // \u escapes and raw multi-byte UTF-8 both decode.
        assert_eq!(parse(r#""\u00e9A""#).unwrap().as_str(), Some("\u{e9}A"));
        assert_eq!(parse(r#""éA""#).unwrap().as_str(), Some("\u{e9}A"));
    }

    #[test]
    fn rejects_what_the_api_does_not_use() {
        for bad in [
            "1.5",
            "-3",
            "1e9",
            "{\"a\":1,\"a\":2}",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "[1] []",
            "18446744073709551616", // u64::MAX + 1
        ] {
            assert!(parse(bad).is_err(), "{bad} should be rejected");
        }
        // Depth bomb stops at MAX_DEPTH instead of recursing away.
        let bomb = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&bomb).unwrap_err().contains("nesting"));
    }

    #[test]
    fn empty_containers_and_literals_parse() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse(" null ").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
    }
}
