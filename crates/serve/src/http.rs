//! A strict, minimal HTTP/1.1 parser and serializer for the reactor.
//!
//! `flqd` speaks just enough HTTP for its four endpoints: `GET`/`POST`
//! requests with `Content-Length` bodies over keep-alive connections,
//! pipelining included. There is no TLS, no chunked transfer coding, no
//! `Expect: continue`, and no multipart — a request that needs any of
//! those gets a clean 4xx instead of undefined behaviour.
//!
//! Unlike the pre-reactor parser, nothing here blocks: [`parse_request`]
//! inspects whatever bytes a connection has buffered so far and either
//! yields a complete request (plus how many bytes it consumed), asks for
//! more, or rejects the prefix with the status to answer before closing.
//! The per-connection state machine in [`conn`](crate::conn) drives it
//! in a loop, which is what makes pipelined requests fall out for free:
//! a buffer holding three back-to-back requests parses three times.
//!
//! Caps are enforced structurally: the head (request line + headers) may
//! not exceed 16 KiB — exceeding it is `431 Request Header Fields Too
//! Large`, distinguishable from a malformed request's `400` — and a
//! declared `Content-Length` beyond the server's body cap is `413`
//! before any body byte is read.

/// Cap on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request head plus its body.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target path, e.g. `/v1/contains` (query strings are
    /// kept verbatim; no endpoint uses them).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// True when the client asked for `Connection: close` (or spoke
    /// HTTP/1.0), so the server must not reuse the connection.
    pub close: bool,
}

/// A request prefix the server refuses: the status and typed code to
/// answer with before closing the connection (resynchronizing an
/// ill-framed stream is not worth the ambiguity).
#[derive(Clone, Debug)]
pub struct HttpError {
    /// HTTP status to answer (`400`, `413`, `431`).
    pub status: u16,
    /// Stable machine-readable code (mirrors `api::ApiError`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl HttpError {
    fn malformed(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            code: "bad_request",
            message: message.into(),
        }
    }
}

/// The outcome of one [`parse_request`] attempt over buffered bytes.
#[derive(Debug)]
pub enum Parse {
    /// The buffer holds no complete request yet; read more and retry.
    NeedMore,
    /// One complete request, and the count of buffer bytes it consumed
    /// (head + body) — the caller drains those and may parse again for
    /// pipelined successors.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// The buffer prefix is not a servable request; answer and close.
    Refused(HttpError),
}

/// Attempts to parse one request from the front of `buf`.
///
/// `max_body_bytes` caps the declared `Content-Length` (`413` beyond
/// it); the head is capped at [`MAX_HEAD_BYTES`] unconditionally
/// (`431` beyond it).
pub fn parse_request(buf: &[u8], max_body_bytes: usize) -> Parse {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Parse::Refused(HttpError {
                status: 431,
                code: "headers_too_large",
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            });
        }
        return Parse::NeedMore;
    };
    if head_len > MAX_HEAD_BYTES {
        return Parse::Refused(HttpError {
            status: 431,
            code: "headers_too_large",
            message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
        });
    }
    let head = match std::str::from_utf8(&buf[..head_len]) {
        Ok(head) => head,
        Err(_) => return Parse::Refused(HttpError::malformed("non-UTF-8 request head")),
    };
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Parse::Refused(HttpError::malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Parse::Refused(HttpError::malformed(format!("bad version {version:?}")));
    }
    let mut close = version == "HTTP/1.0";
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator line
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Refused(HttpError::malformed(format!("bad header {line:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = match value.parse() {
                Ok(n) => n,
                Err(_) => {
                    return Parse::Refused(HttpError::malformed(format!(
                        "bad content-length {value:?}"
                    )))
                }
            };
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Parse::Refused(HttpError::malformed(
                "transfer-encoding is not supported; send content-length",
            ));
        }
    }
    if content_length > max_body_bytes {
        return Parse::Refused(HttpError {
            status: 413,
            code: "payload_too_large",
            message: format!(
                "declared body of {content_length} bytes exceeds the {max_body_bytes}-byte cap"
            ),
        });
    }
    let total = head_len + content_length;
    if buf.len() < total {
        return Parse::NeedMore;
    }
    Parse::Complete {
        request: Request {
            method: method.to_string(),
            path: path.to_string(),
            body: buf[head_len..total].to_vec(),
            close,
        },
        consumed: total,
    }
}

/// Finds the end of the head (the byte *after* the blank line), honoring
/// both `\r\n\r\n` and bare-LF `\n\n` terminators.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] != b'\n' {
            i += 1;
            continue;
        }
        // A line ended at i. The head ends if the next line is empty.
        let rest = &buf[i + 1..];
        if rest.first() == Some(&b'\n') {
            return Some(i + 2);
        }
        if rest.len() >= 2 && rest[0] == b'\r' && rest[1] == b'\n' {
            return Some(i + 3);
        }
        i += 1;
    }
    None
}

/// A response ready to be serialized: status, extra headers, body.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers as `(name, value)` pairs (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: String,
    /// Machine-readable cause for non-2xx responses, carried for the
    /// access log (never serialized onto the wire; the body's typed
    /// `error.code` is the wire form).
    pub cause: Option<&'static str>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response::with_content_type(status, "application/json", body)
    }

    /// A plain-text response with the given status
    /// (`text/plain; charset=utf-8`).
    pub fn text(status: u16, body: String) -> Response {
        Response::with_content_type(status, "text/plain; charset=utf-8", body)
    }

    /// A response with an explicit `Content-Type` (e.g. the Prometheus
    /// exposition's mandated `text/plain; version=0.0.4`).
    pub fn with_content_type(status: u16, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            extra_headers: Vec::new(),
            body,
            cause: None,
        }
    }
}

/// The standard reason phrase for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `resp` onto the end of `out` (the connection's write
/// buffer). `close` controls the `Connection` header; partial socket
/// writes are the caller's business — this only formats bytes.
pub fn encode_response(out: &mut Vec<u8>, resp: &Response, close: bool) {
    use std::io::Write as _;
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra_headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    if close {
        out.extend_from_slice(b"connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(resp.body.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8], max_body: usize) -> (Request, usize) {
        match parse_request(buf, max_body) {
            Parse::Complete { request, consumed } => (request, consumed),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/contains HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let (req, consumed) = complete(raw, 1024);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/contains");
        assert_eq!(req.body, b"body");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn incremental_prefixes_ask_for_more() {
        let raw = b"POST /v1/contains HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        for cut in [0, 1, 10, raw.len() - 5, raw.len() - 1] {
            match parse_request(&raw[..cut], 1024) {
                Parse::NeedMore => {}
                other => panic!("prefix of {cut} bytes: expected NeedMore, got {other:?}"),
            }
        }
        let (req, _) = complete(raw, 1024);
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw: Vec<u8> = [
            &b"GET /metrics HTTP/1.1\r\n\r\n"[..],
            &b"POST /v1/contains HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi"[..],
            &b"GET /profile HTTP/1.1\r\nconnection: close\r\n\r\n"[..],
        ]
        .concat();
        let (first, used) = complete(&raw, 1024);
        assert_eq!(first.path, "/metrics");
        let (second, used2) = complete(&raw[used..], 1024);
        assert_eq!(second.path, "/v1/contains");
        assert_eq!(second.body, b"hi");
        let (third, used3) = complete(&raw[used + used2..], 1024);
        assert_eq!(third.path, "/profile");
        assert!(third.close);
        assert_eq!(used + used2 + used3, raw.len());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let (req, _) = complete(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n", 1024);
        assert!(req.close);
        let (req, _) = complete(b"GET /metrics HTTP/1.0\r\n\r\n", 1024);
        assert!(req.close);
    }

    #[test]
    fn bare_lf_heads_parse_too() {
        let (req, consumed) = complete(b"GET /metrics HTTP/1.1\nHost: x\n\n", 1024);
        assert_eq!(req.path, "/metrics");
        assert_eq!(consumed, 31);
    }

    #[test]
    fn oversized_body_is_413_before_reading_it() {
        match parse_request(
            b"POST /v1/contains HTTP/1.1\r\nContent-Length: 999\r\n\r\n",
            10,
        ) {
            Parse::Refused(e) => {
                assert_eq!(e.status, 413);
                assert_eq!(e.code, "payload_too_large");
            }
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_431_not_400() {
        // Headers streaming past the cap without a terminator.
        let mut raw = b"GET /metrics HTTP/1.1\r\n".to_vec();
        while raw.len() <= MAX_HEAD_BYTES {
            raw.extend_from_slice(b"x-filler: yyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy\r\n");
        }
        match parse_request(&raw, 1024) {
            Parse::Refused(e) => {
                assert_eq!(e.status, 431);
                assert_eq!(e.code, "headers_too_large");
            }
            other => panic!("expected 431, got {other:?}"),
        }
        // A terminated head over the cap is also 431.
        raw.extend_from_slice(b"\r\n");
        match parse_request(&raw, 1024) {
            Parse::Refused(e) => assert_eq!(e.status, 431),
            other => panic!("expected 431, got {other:?}"),
        }
    }

    #[test]
    fn malformed_heads_are_400() {
        for raw in [
            b"NOT-HTTP\r\n\r\n".as_slice(),
            b"GET /x HTTP/9.9\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".as_slice(),
            b"GET x-no-slash HTTP/1.1\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".as_slice(),
        ] {
            match parse_request(raw, 1024) {
                Parse::Refused(e) => {
                    assert_eq!(e.status, 400, "{:?}", String::from_utf8_lossy(raw));
                }
                other => panic!("expected 400 for {raw:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn responses_carry_status_headers_and_length() {
        let mut resp = Response::json(503, "{\"error\":{}}".into());
        resp.extra_headers.push(("retry-after", "1".into()));
        let mut out = Vec::new();
        encode_response(&mut out, &resp, true);
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.contains("content-length: 12\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":{}}"), "{text}");

        let mut out = Vec::new();
        encode_response(&mut out, &Response::text(200, "ok".into()), false);
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("connection: close"), "{text}");
    }
}
