//! A strict, minimal HTTP/1.1 request reader and response writer.
//!
//! `flqd` speaks just enough HTTP for its four endpoints: `GET`/`POST`
//! requests with `Content-Length` bodies over keep-alive connections.
//! There is no TLS, no chunked transfer coding, no `Expect: continue`,
//! and no multipart — a request that needs any of those gets a clean
//! 4xx/5xx instead of undefined behaviour. The reader enforces hard caps
//! on header and body size so a hostile peer cannot balloon resident
//! memory, mirroring how the chase governor caps the decision work
//! itself.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request line plus all headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request head plus its body.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target path, e.g. `/v1/contains` (query strings are
    /// kept verbatim; no endpoint uses them).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// True when the client asked for `Connection: close` (or spoke
    /// HTTP/1.0), so the server should drop the connection after
    /// responding.
    pub close: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not an error to report.
    Closed,
    /// The socket failed or timed out mid-request.
    Io(io::Error),
    /// The bytes were not a well-formed HTTP/1.1 request. The string is
    /// a short human-readable reason; the caller answers 400.
    Malformed(String),
    /// The declared `Content-Length` exceeded the server's cap. The
    /// caller answers 413.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured cap it exceeded.
        cap: usize,
    },
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Reads one request from a buffered stream.
///
/// `max_body_bytes` caps the declared `Content-Length`; the head is
/// capped at 16 KiB unconditionally.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body_bytes: usize,
) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let request_line = read_line(reader, &mut head_bytes)?;
    if request_line.is_empty() {
        return Err(ReadError::Closed);
    }
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!("bad version {version:?}")));
    }
    let mut close = version == "HTTP/1.0";
    let mut content_length = 0usize;
    loop {
        let line = read_line(reader, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header {line:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Malformed(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ReadError::Malformed(
                "transfer-encoding is not supported; send content-length".into(),
            ));
        }
    }
    if content_length > max_body_bytes {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
            cap: max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        close,
    })
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the terminator,
/// charging its bytes against the head cap.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    head_bytes: &mut usize,
) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF. An empty partial line is a clean close; a truncated
            // one is a malformed request.
            if line.is_empty() {
                return Ok(String::new());
            }
            return Err(ReadError::Malformed("EOF inside request head".into()));
        }
        let (consume, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                line.extend_from_slice(&buf[..i]);
                (i + 1, true)
            }
            None => {
                line.extend_from_slice(buf);
                (buf.len(), false)
            }
        };
        reader.consume(consume);
        *head_bytes += consume;
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("request head too large".into()));
        }
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| ReadError::Malformed("non-UTF-8 request head".into()));
        }
    }
}

/// A response ready to be written: status, extra headers, body.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers as `(name, value)` pairs (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body,
        }
    }
}

/// The standard reason phrase for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `resp` to `stream`. `close` controls the `Connection` header.
pub fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    /// Runs `read_request` against raw bytes sent over a real loopback
    /// socket (the reader is typed to `BufReader<TcpStream>`).
    fn read_raw(raw: &'static [u8], max_body: usize) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let out = read_request(&mut BufReader::new(stream), max_body);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = read_raw(
            b"POST /v1/contains HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/contains");
        assert_eq!(req.body, b"body");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = read_raw(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n", 1024).unwrap();
        assert!(req.close);
        let req = read_raw(b"GET /metrics HTTP/1.0\r\n\r\n", 1024).unwrap();
        assert!(req.close);
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        match read_raw(
            b"POST /v1/contains HTTP/1.1\r\nContent-Length: 999\r\n\r\n",
            10,
        ) {
            Err(ReadError::BodyTooLarge {
                declared: 999,
                cap: 10,
            }) => {}
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_heads_are_malformed_not_io_errors() {
        for raw in [
            b"NOT-HTTP\r\n\r\n".as_slice(),
            b"GET /x HTTP/9.9\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".as_slice(),
        ] {
            match read_raw(raw, 1024) {
                Err(ReadError::Malformed(_)) => {}
                other => panic!("expected Malformed for {raw:?}, got {other:?}"),
            }
        }
        // A clean EOF before any bytes is Closed, not an error.
        match read_raw(b"", 1024) {
            Err(ReadError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn responses_carry_status_headers_and_length() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut resp = Response::json(503, "{\"error\":{}}".into());
        resp.extra_headers.push(("retry-after", "1".into()));
        write_response(&mut stream, &resp, true).unwrap();
        drop(stream);
        let text = client.join().unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.contains("content-length: 12\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":{}}"), "{text}");
    }
}
