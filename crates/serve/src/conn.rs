//! Per-connection state machines for the reactor.
//!
//! Each accepted socket becomes a [`Conn`]: a nonblocking stream plus a
//! read buffer the incremental parser consumes, an ordered pipeline of
//! response slots, and a write buffer that survives partial writes.
//! The reactor drives every transition; nothing here blocks or spawns.
//!
//! The pipeline is the part worth reading twice. HTTP/1.1 requires
//! responses in request order, but the worker pool completes decisions
//! in *any* order — so each parsed request claims the next sequence
//! number and a `Slot` in a queue. Completions fill their slot by
//! sequence number; only the contiguous ready prefix is serialized into
//! the write buffer. A fast second answer sits in its slot until the
//! slow first one lands, and ordering holds under any interleaving.
//!
//! Flow control is structural: a connection stops being read (the
//! reactor drops its read interest) while it has [`MAX_PIPELINE`]
//! requests in flight or [`MAX_WRITE_BUF`] unsent bytes — a client
//! pipelining faster than it drains responses is throttled by TCP
//! backpressure instead of ballooning server memory.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Instant;

use crate::http::{self, Parse, Request, Response};
use crate::obs::ReqMeta;

/// Cap on in-flight (parsed, not yet fully written) requests per
/// connection; beyond it the reactor pauses reading, it never rejects.
pub const MAX_PIPELINE: usize = 128;

/// Cap on buffered unsent response bytes before reading pauses.
pub const MAX_WRITE_BUF: usize = 1 << 20;

/// Read chunk size per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;

/// One pipelined response slot, keyed by arrival order.
enum Slot {
    /// Dispatched to the worker pool; response pending.
    InFlight,
    /// Response ready, not yet serialized (it is not at the head yet,
    /// or the head was not flushed in this reactor turn), plus the
    /// request's observability record when one is being kept. Boxed:
    /// the pair is ~400 bytes and most live slots are `InFlight`.
    Ready(Box<(Response, Option<ReqMeta>)>),
}

/// What a connection wants from the poller right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wants {
    /// Keep reading request bytes.
    pub read: bool,
    /// Flush buffered response bytes.
    pub write: bool,
}

/// The outcome of a reactor turn over one connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Turn {
    /// Keep the connection registered.
    Keep,
    /// Close and drop the connection now.
    Close,
}

/// One client connection owned by the reactor.
pub struct Conn {
    stream: TcpStream,
    /// The poller token this connection is registered under.
    token: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Pipeline slots; `slots[i]` answers sequence `base_seq + i`.
    slots: VecDeque<Slot>,
    /// Sequence number of `slots[0]`.
    base_seq: u64,
    /// Next sequence number to hand out.
    next_seq: u64,
    /// Peer shut down its write side (EOF seen); serve what is
    /// buffered, accept no more.
    peer_eof: bool,
    /// Stop parsing further requests and close once the pipeline
    /// drains (a `Connection: close` request, a refused request, or a
    /// server-initiated drain).
    closing: bool,
    /// A refusal was answered mid-stream: keep reading and *discarding*
    /// the peer's in-flight bytes instead of dropping the socket.
    /// Closing with unread data in the receive buffer makes the kernel
    /// send RST instead of FIN, which destroys the refusal response
    /// before the client can read it.
    discarding: bool,
    /// The write half was shut down after the refusal flushed (the
    /// lingering-close FIN); the full close waits for peer EOF.
    write_shut: bool,
    /// Instant of the last byte in or out, for idle keep-alive sweeps.
    pub last_activity: Instant,
    /// Cumulative response bytes ever queued into `write_buf`.
    queued_total: u64,
    /// Cumulative response bytes ever written to the socket.
    flushed_total: u64,
    /// Observability records of serialized responses, keyed by the
    /// `queued_total` offset at which their last byte sits; a record is
    /// finished once `flushed_total` reaches that offset.
    pending_finish: VecDeque<(u64, ReqMeta)>,
}

/// A request parsed off a connection, tagged with the sequence number
/// its response slot answers.
pub struct Incoming {
    /// Sequence to complete with [`Conn::complete`].
    pub seq: u64,
    /// The parsed request.
    pub request: Request,
    /// The request's observability record (span begun, parse stage
    /// marked, `bytes_in` filled).
    pub meta: ReqMeta,
}

impl Conn {
    /// Wraps an accepted stream (the caller has set it nonblocking).
    pub fn new(stream: TcpStream, token: u64, now: Instant) -> Conn {
        Conn {
            stream,
            token,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            slots: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            peer_eof: false,
            closing: false,
            discarding: false,
            write_shut: false,
            last_activity: now,
            queued_total: 0,
            flushed_total: 0,
            pending_finish: VecDeque::new(),
        }
    }

    /// The underlying stream (for fd registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// The poller token this connection answers to.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// True while any request is parsed-but-unanswered or any response
    /// byte is unsent — the work that graceful drain must finish.
    pub fn has_pending_work(&self) -> bool {
        !self.slots.is_empty() || !self.write_buf.is_empty()
    }

    /// Marks the connection for close-after-drain: already-parsed
    /// requests will be answered, nothing further is read.
    pub fn begin_close(&mut self) {
        self.closing = true;
    }

    /// The poller interest implied by the current state.
    pub fn wants(&self) -> Wants {
        let throttled = self.slots.len() >= MAX_PIPELINE || self.write_buf.len() >= MAX_WRITE_BUF;
        Wants {
            read: !self.peer_eof && !throttled && (!self.closing || self.discarding),
            write: !self.write_buf.is_empty(),
        }
    }

    /// Reads whatever the socket has, parses as many complete requests
    /// as the bytes hold, and appends them to `out`. Refused prefixes
    /// (malformed, oversized) are answered inline and mark the
    /// connection closing. Returns [`Turn::Close`] on a dead socket.
    pub fn fill(&mut self, out: &mut Vec<Incoming>, max_body_bytes: usize, now: Instant) -> Turn {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if (self.closing && !self.discarding) || self.slots.len() >= MAX_PIPELINE {
                break;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(_) if self.discarding => {
                    // Lingering after a refusal: drain the peer's bytes
                    // into the void until it sees our response and
                    // closes. Nothing here is parseable — the stream
                    // lost sync at the refusal.
                    self.last_activity = now;
                }
                Ok(n) => {
                    self.last_activity = now;
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    if self.parse_available(out, max_body_bytes) == Turn::Close {
                        return Turn::Close;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Turn::Close,
            }
        }
        if self.peer_eof && !self.has_pending_work() {
            return Turn::Close;
        }
        Turn::Keep
    }

    /// Parses every complete request currently buffered. Each complete
    /// request begins its observability span here: the `parse` stage is
    /// the duration of its (final, successful) parse attempt.
    fn parse_available(&mut self, out: &mut Vec<Incoming>, max_body_bytes: usize) -> Turn {
        let mut consumed_total = 0usize;
        while !self.closing && self.slots.len() < MAX_PIPELINE {
            let parse_start = Instant::now();
            match http::parse_request(&self.read_buf[consumed_total..], max_body_bytes) {
                Parse::NeedMore => break,
                Parse::Complete { request, consumed } => {
                    consumed_total += consumed;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    if request.close {
                        // Answer this one, then close: later pipelined
                        // bytes (if any) are ignored per the client's
                        // own `Connection: close`.
                        self.closing = true;
                    }
                    self.slots.push_back(Slot::InFlight);
                    let mut meta = ReqMeta::begin_at(parse_start);
                    meta.span.mark("parse");
                    meta.bytes_in = consumed as u64;
                    out.push(Incoming { seq, request, meta });
                }
                Parse::Refused(e) => {
                    // Answer the refusal in-order through a slot, then
                    // close — the stream cannot be resynchronized.
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.slots.push_back(Slot::InFlight);
                    self.closing = true;
                    self.discarding = true;
                    let mut meta = ReqMeta::begin_at(parse_start);
                    meta.span.mark("parse");
                    let resp = crate::api::ApiError {
                        status: e.status,
                        code: e.code,
                        message: e.message,
                    }
                    .to_response();
                    self.complete_traced(seq, resp, Some(meta));
                    break;
                }
            }
        }
        if self.discarding {
            // Whatever followed the refused prefix is junk.
            self.read_buf.clear();
        } else if consumed_total > 0 {
            self.read_buf.drain(..consumed_total);
        }
        Turn::Keep
    }

    /// Delivers the response for sequence `seq` into its slot, then
    /// serializes the contiguous ready prefix into the write buffer.
    /// Out-of-range sequences (a slot dropped by a racing close) are
    /// ignored.
    pub fn complete(&mut self, seq: u64, response: Response) {
        self.complete_traced(seq, response, None);
    }

    /// [`complete`](Conn::complete), carrying the request's
    /// observability record; the record is finished (write stage
    /// marked, handed to [`take_finished`](Conn::take_finished)) once
    /// the response's last byte is flushed to the socket.
    pub fn complete_traced(&mut self, seq: u64, response: Response, meta: Option<ReqMeta>) {
        let Some(idx) = seq.checked_sub(self.base_seq) else {
            return;
        };
        let Ok(idx) = usize::try_from(idx) else {
            return;
        };
        if idx >= self.slots.len() {
            return;
        }
        self.slots[idx] = Slot::Ready(Box::new((response, meta)));
        self.serialize_ready();
    }

    /// Moves the contiguous ready prefix of the pipeline into the write
    /// buffer, in order.
    fn serialize_ready(&mut self) {
        while let Some(Slot::Ready(..)) = self.slots.front() {
            let Some(Slot::Ready(slot)) = self.slots.pop_front() else {
                unreachable!("front() said Ready");
            };
            let (resp, meta) = *slot;
            self.base_seq += 1;
            // `connection: close` on the last response of a closing
            // pipeline tells the client not to wait for more.
            let close = self.closing && self.slots.is_empty();
            let before = self.write_buf.len();
            http::encode_response(&mut self.write_buf, &resp, close);
            let added = (self.write_buf.len() - before) as u64;
            self.queued_total += added;
            if let Some(mut meta) = meta {
                meta.status = resp.status;
                if meta.cause.is_none() {
                    meta.cause = resp.cause;
                }
                meta.bytes_out = added;
                self.pending_finish.push_back((self.queued_total, meta));
            }
        }
    }

    /// Drains the observability records of responses whose last byte
    /// has reached the socket, closing their `write` stage at `now`.
    /// Called by the reactor after [`flush`](Conn::flush).
    pub fn take_finished(&mut self, now: Instant, out: &mut Vec<ReqMeta>) {
        while let Some((end, _)) = self.pending_finish.front() {
            if *end > self.flushed_total {
                break;
            }
            let (_, mut meta) = self
                .pending_finish
                .pop_front()
                .expect("front() said present");
            meta.span.mark_at("write", now);
            out.push(meta);
        }
    }

    /// Writes buffered response bytes until the socket blocks or the
    /// buffer empties. Returns [`Turn::Close`] when the connection is
    /// done (close requested and everything flushed) or dead.
    pub fn flush(&mut self, now: Instant) -> Turn {
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => return Turn::Close,
                Ok(n) => {
                    self.last_activity = now;
                    self.flushed_total += n as u64;
                    self.write_buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Turn::Close,
            }
        }
        let finished = self.closing && self.slots.is_empty() && self.write_buf.is_empty();
        let dead_idle = self.peer_eof && !self.has_pending_work();
        if dead_idle || (finished && !self.discarding) {
            return Turn::Close;
        }
        if finished && !self.write_shut {
            // Lingering close after a refusal: announce our end with a
            // clean FIN but keep the socket alive, draining input,
            // until the peer reads the refusal and closes (or the idle
            // sweep gives up on it). A full close here would RST over
            // the peer's unread in-flight bytes.
            let _ = self.stream.shutdown(Shutdown::Write);
            self.write_shut = true;
        }
        Turn::Keep
    }

    /// True when the connection is idle (no pending work) and its last
    /// activity predates `cutoff` — the keep-alive sweep predicate.
    pub fn idle_since(&self, cutoff: Instant) -> bool {
        !self.has_pending_work() && self.last_activity < cutoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// A loopback pair with the server side wrapped in a `Conn`.
    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, Conn::new(server, 2, Instant::now()))
    }

    fn ok_response(tag: &str) -> Response {
        Response::text(200, format!("resp-{tag}"))
    }

    #[test]
    fn pipelined_requests_come_back_in_order_regardless_of_completion_order() {
        let (mut client, mut conn) = pair();
        client
            .write_all(
                b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\nconnection: close\r\n\r\n",
            )
            .unwrap();
        let mut incoming = Vec::new();
        assert_eq!(conn.fill(&mut incoming, 1024, Instant::now()), Turn::Keep);
        assert_eq!(incoming.len(), 3);
        assert_eq!(incoming[0].request.path, "/a");
        assert_eq!(incoming[2].request.path, "/c");
        assert!(conn.has_pending_work());

        // Complete out of order: c, a, b. Nothing serializes until the
        // head (a) lands; then a alone; then b and c together.
        conn.complete(incoming[2].seq, ok_response("c"));
        assert!(conn.write_buf.is_empty());
        conn.complete(incoming[0].seq, ok_response("a"));
        let after_a = String::from_utf8(conn.write_buf.clone()).unwrap();
        assert!(after_a.contains("resp-a") && !after_a.contains("resp-c"));
        conn.complete(incoming[1].seq, ok_response("b"));
        let all = String::from_utf8(conn.write_buf.clone()).unwrap();
        let (pa, pb, pc) = (
            all.find("resp-a").unwrap(),
            all.find("resp-b").unwrap(),
            all.find("resp-c").unwrap(),
        );
        assert!(pa < pb && pb < pc, "{all}");
        // The close-marked last response carries connection: close.
        assert_eq!(all.matches("connection: close").count(), 1, "{all}");
        // Flushing everything finishes the closing connection.
        assert_eq!(conn.flush(Instant::now()), Turn::Close);
    }

    #[test]
    fn malformed_prefix_is_answered_then_lingers_until_peer_eof() {
        let (mut client, mut conn) = pair();
        client.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut incoming = Vec::new();
        conn.fill(&mut incoming, 1024, Instant::now());
        assert!(incoming.is_empty(), "refusals never reach the workers");
        let body = String::from_utf8(conn.write_buf.clone()).unwrap();
        assert!(body.starts_with("HTTP/1.1 400 "), "{body}");
        // The refusal flushes, but the connection lingers (FIN sent,
        // input drained) instead of closing over unread peer bytes.
        assert_eq!(conn.flush(Instant::now()), Turn::Keep);
        assert!(conn.wants().read, "linger keeps draining input");
        // The peer reads the refusal, sees EOF, and closes; only then
        // does the connection finish.
        let mut refusal = String::new();
        client.read_to_string(&mut refusal).unwrap();
        assert!(refusal.starts_with("HTTP/1.1 400 "), "{refusal}");
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(conn.fill(&mut incoming, 1024, Instant::now()), Turn::Close);
    }

    #[test]
    fn pipeline_throttle_pauses_reading() {
        let (mut client, mut conn) = pair();
        let mut burst = Vec::new();
        for _ in 0..MAX_PIPELINE + 8 {
            burst.extend_from_slice(b"GET /m HTTP/1.1\r\n\r\n");
        }
        client.write_all(&burst).unwrap();
        let mut incoming = Vec::new();
        // Give the loopback a moment to make all bytes readable.
        std::thread::sleep(std::time::Duration::from_millis(50));
        conn.fill(&mut incoming, 1024, Instant::now());
        assert!(incoming.len() <= MAX_PIPELINE, "{}", incoming.len());
        assert!(!conn.wants().read, "reading pauses at the pipeline cap");
        // Draining the pipeline resumes reading.
        for inc in incoming.drain(..) {
            conn.complete(inc.seq, ok_response("x"));
        }
        conn.flush(Instant::now());
        assert!(conn.wants().read);
    }

    #[test]
    fn eof_with_no_pending_work_closes() {
        let (client, mut conn) = pair();
        drop(client);
        let mut incoming = Vec::new();
        assert_eq!(conn.fill(&mut incoming, 1024, Instant::now()), Turn::Close);
    }
}
