//! Readiness polling for the reactor: `epoll(7)` plus an `eventfd(2)`
//! waker, through one scoped FFI module.
//!
//! `std` exposes no readiness API, and the workspace deliberately takes
//! no dependencies, so this module declares the five Linux syscall
//! wrappers the reactor needs — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, and `close` (plus `read`/`write` on the
//! eventfd and readiness fd) — exactly the way `signal.rs` declares
//! `signal(2)`: a single `#[allow(unsafe_code)]` module with the safety
//! argument written down, while the crate keeps `deny(unsafe_code)`
//! everywhere else.
//!
//! The surface exported to the rest of the crate is entirely safe:
//! [`Poller`] owns the epoll instance, [`Waker`] owns the eventfd, and
//! both close their fd on drop. Registration is level-triggered — the
//! reactor re-reads and re-writes until `WouldBlock`, so no readiness
//! edge can be lost.

use std::io;
use std::os::fd::RawFd;

/// Readiness interest: what the reactor currently wants to hear about
/// for one fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest (listeners, idle keep-alive connections).
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read-and-write interest (a connection with buffered output).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Write-only interest (draining output, input side paused).
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can take more bytes.
    pub writable: bool,
    /// The peer hung up or the fd errored; the connection is dead.
    pub hangup: bool,
}

#[allow(unsafe_code)]
mod ffi {
    //! The scoped FFI site: Linux epoll/eventfd syscall wrappers.
    //!
    //! Safety rests on: the declarations match the glibc/musl
    //! prototypes on every Linux target this workspace builds for; all
    //! pointers passed are derived from live Rust references with the
    //! correct lengths; and every returned fd is owned by exactly one
    //! RAII wrapper ([`super::Poller`] / [`super::Waker`]) that closes
    //! it once.

    use std::io;
    use std::os::fd::RawFd;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel
    /// ABI predates the arch's 8-byte alignment of u64), naturally
    /// aligned everywhere else — matching libc's definition.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    pub fn sys_epoll_create() -> io::Result<RawFd> {
        // SAFETY: no pointers; the returned fd is owned by the caller.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn sys_epoll_ctl(
        epfd: RawFd,
        op: i32,
        fd: RawFd,
        events: u32,
        data: u64,
    ) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` is a live, correctly-sized struct for the whole
        // call; DEL ignores the pointer but passing it is still valid.
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn sys_epoll_wait(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        // SAFETY: the pointer/len pair comes from a live mutable slice;
        // the kernel writes at most `len` entries.
        let rc = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }

    pub fn sys_eventfd() -> io::Result<RawFd> {
        // SAFETY: no pointers; the returned fd is owned by the caller.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn sys_close(fd: RawFd) {
        // SAFETY: callers pass an fd they own exactly once (RAII drop).
        unsafe { close(fd) };
    }

    pub fn sys_read(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
        // SAFETY: pointer/len from a live mutable slice.
        let rc = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }

    pub fn sys_write(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
        // SAFETY: pointer/len from a live shared slice.
        let rc = unsafe { write(fd, buf.as_ptr(), buf.len()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }
}

fn interest_bits(interest: Interest) -> u32 {
    let mut bits = ffi::EPOLLRDHUP;
    if interest.readable {
        bits |= ffi::EPOLLIN;
    }
    if interest.writable {
        bits |= ffi::EPOLLOUT;
    }
    bits
}

/// A level-triggered epoll instance. Closed on drop.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: ffi::sys_epoll_create()?,
        })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        ffi::sys_epoll_ctl(
            self.epfd,
            ffi::EPOLL_CTL_ADD,
            fd,
            interest_bits(interest),
            token,
        )
    }

    /// Changes the interest of an already-registered `fd`.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        ffi::sys_epoll_ctl(
            self.epfd,
            ffi::EPOLL_CTL_MOD,
            fd,
            interest_bits(interest),
            token,
        )
    }

    /// Removes `fd` from the set (closing the fd also removes it; this
    /// exists for fds that outlive their registration, like a paused
    /// listener during drain).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        ffi::sys_epoll_ctl(self.epfd, ffi::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` for events, appending them to `out`
    /// (cleared first). Returns the number of events. `EINTR` is
    /// reported as zero events, not an error — the caller's loop
    /// re-checks its shutdown flag either way.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        out.clear();
        let mut raw = [ffi::EpollEvent { events: 0, data: 0 }; 64];
        let n = match ffi::sys_epoll_wait(self.epfd, &mut raw, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &raw[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & ffi::EPOLLIN != 0,
                writable: bits & ffi::EPOLLOUT != 0,
                hangup: bits & (ffi::EPOLLERR | ffi::EPOLLHUP | ffi::EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        ffi::sys_close(self.epfd);
    }
}

/// A cross-thread wakeup for the reactor: workers [`wake`](Waker::wake)
/// it after pushing a completion, and the reactor drains it under its
/// registered token. Built on a nonblocking `eventfd`, closed on drop.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd (`EFD_CLOEXEC | EFD_NONBLOCK`).
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: ffi::sys_eventfd()?,
        })
    }

    /// The fd to register with a [`Poller`].
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the poller (adds 1 to the eventfd counter). Infallible by
    /// design: the only failure mode of a nonblocking eventfd write is
    /// a full counter, which already guarantees a pending wakeup.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = ffi::sys_write(self.fd, &one);
    }

    /// Drains the counter so the next [`wake`](Waker::wake) triggers a
    /// fresh readiness event.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = ffi::sys_read(self.fd, &mut buf);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        ffi::sys_close(self.fd);
    }
}

/// Writes `bytes` fully to a raw fd the caller does *not* own through a
/// Rust handle — the `--ready-fd` channel a supervisor passed down.
/// Short writes retry; errors are returned (the caller treats a broken
/// readiness pipe as fatal misconfiguration).
pub fn write_to_raw_fd(fd: RawFd, bytes: &[u8]) -> io::Result<()> {
    let mut rest = bytes;
    while !rest.is_empty() {
        let n = match ffi::sys_write(fd, rest) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "ready-fd write returned 0",
            ));
        }
        rest = &rest[n..];
    }
    Ok(())
}

/// Closes a raw fd handed down by a supervisor (after the readiness
/// line is written, so readers see EOF).
pub fn close_raw_fd(fd: RawFd) {
    ffi::sys_close(fd);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_a_polling_thread() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a zero-timeout wait sees nothing.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        waker.wake();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        // Drained, the readiness goes away (level-triggered).
        waker.drain();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn listener_and_stream_readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 1, Interest::READ)
            .unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller
            .register(accepted.as_raw_fd(), 2, Interest::READ)
            .unwrap();
        client.write_all(b"x").unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));

        // Reregistration to write interest reports writability.
        poller
            .reregister(accepted.as_raw_fd(), 2, Interest::WRITE)
            .unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));

        // Peer hangup surfaces as a hangup event.
        drop(client);
        poller
            .reregister(accepted.as_raw_fd(), 2, Interest::READ)
            .unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.hangup));
        poller.deregister(accepted.as_raw_fd()).unwrap();
    }
}
