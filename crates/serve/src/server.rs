//! Server configuration, shared warm state, and request routing.
//!
//! The runtime itself lives in [`reactor`](crate::reactor): a single
//! epoll event loop owns every socket, and a bounded worker pool owns
//! the chase/decide work. This module owns what the reactor shares:
//!
//! * a [`DecisionCache`] memoizing whole `(q1, q2)` verdicts,
//! * a [`SnapshotCache`] holding each `q1`'s chase so repeated
//!   questions about the same query pay only the homomorphism search,
//! * the dispatch queue feeding the workers — bounded at
//!   `--queue-cap`, beyond which requests are answered `503` with
//!   `Retry-After` (explicit backpressure, mirroring how the chase
//!   governor refuses work instead of letting it balloon), and
//! * the process counters behind `GET /metrics`.
//!
//! A decision miss flows through both caches: the decision cache's
//! `contains_with_compute` fills from the snapshot cache, whose
//! [`ChaseSnapshot::contains`](flogic_core::ChaseSnapshot::contains)
//! mirrors `contains_with` exactly — so verdicts are bit-identical to
//! the `flq` CLI's, warm or cold.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use flogic_core::{
    canonical_pair, theorem_bound, ContainmentOptions, ContainmentResult, CoreError, DecisionCache,
};
use flogic_model::ConjunctiveQuery;
use flogic_obs::export::profile_json;
use flogic_obs::{ChaseProfile, TraceHandle, Tracer};
use flogic_syntax::parse_query;
use flogic_term::Metrics;

use crate::api::{self, ApiError};
use crate::http::{Request, Response};
use crate::poll::Waker;
use crate::reactor::{self, Completion, Job};
use crate::signal;
use crate::snapshots::SnapshotCache;

/// Configuration of a [`Server`], settable from the command line via
/// [`ServerConfig::from_args`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Listen address (`--addr`); `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads deciding containments (`--workers`). The reactor
    /// itself runs on the calling thread and never chases.
    pub workers: usize,
    /// Bounded dispatch-queue depth (`--queue-cap`); requests arriving
    /// while the queue is full are answered `503` with `Retry-After`.
    pub queue_depth: usize,
    /// Byte cap of the resident chase-snapshot cache (`--cache-bytes`).
    pub cache_bytes: usize,
    /// Cap on request bodies (`--max-body-bytes`).
    pub max_body_bytes: usize,
    /// Chase discovery threads per decision (`--threads`), as in
    /// `flq contains --threads`.
    pub threads: usize,
    /// Server-side default wall-clock budget per decision (`--timeout`,
    /// milliseconds); requests may override. `None` means unlimited.
    pub default_timeout_ms: Option<u64>,
    /// Server-side default cap on materialized chase conjuncts
    /// (`--max-conjuncts`); requests may override.
    pub max_conjuncts: usize,
    /// Keep-alive idle timeout (`--read-timeout`, milliseconds): a
    /// connection with no pending work and no bytes moving for this
    /// long is closed.
    pub read_timeout_ms: u64,
    /// File descriptor to write a `HOST:PORT\n` readiness line to once
    /// bound (`--ready-fd`), then close. Lets supervisors and CI block
    /// on actual readiness instead of polling logs.
    pub ready_fd: Option<i32>,
    /// Canonicalize incoming queries to their semantic representatives
    /// (classic core + total ordering) before the warm caches
    /// (`--no-canon` turns it off). On by default: syntactic variants —
    /// renamed variables, permuted conjuncts, redundant atoms — share
    /// decision-cache entries and chase snapshots. Verdicts are
    /// identical with the toggle on or off.
    pub canon: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7171".into(),
            workers: 2,
            queue_depth: 64,
            cache_bytes: 64 << 20,
            max_body_bytes: 1 << 20,
            threads: 1,
            default_timeout_ms: None,
            max_conjuncts: ContainmentOptions::default().max_conjuncts,
            read_timeout_ms: 5_000,
            ready_fd: None,
            canon: true,
        }
    }
}

/// The `flq serve` / `flqd` flag reference, shared by both binaries'
/// usage text.
pub const SERVE_FLAGS: &str = "[--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-bytes N] \
[--max-body-bytes N] [--threads N] [--timeout MS] [--max-conjuncts N] [--read-timeout MS] \
[--ready-fd FD] [--no-canon]";

impl ServerConfig {
    /// Parses command-line flags into a config, starting from defaults.
    /// Unknown flags and malformed values are errors (the caller prints
    /// the message and exits with the usage status).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<ServerConfig, String> {
        let mut config = ServerConfig::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value = |what: &str| it.next().ok_or_else(|| format!("{arg} needs {what}"));
            match arg.as_str() {
                "--addr" => config.addr = value("an address")?,
                "--workers" => config.workers = parse_flag(&arg, value("a number")?)?,
                "--queue-cap" => config.queue_depth = parse_flag(&arg, value("a number")?)?,
                "--cache-bytes" => config.cache_bytes = parse_flag(&arg, value("a number")?)?,
                "--max-body-bytes" => config.max_body_bytes = parse_flag(&arg, value("a number")?)?,
                "--threads" => config.threads = parse_flag(&arg, value("a number")?)?,
                "--timeout" => {
                    config.default_timeout_ms =
                        Some(parse_flag(&arg, value("a duration in milliseconds")?)?)
                }
                "--max-conjuncts" => config.max_conjuncts = parse_flag(&arg, value("a number")?)?,
                "--read-timeout" => {
                    config.read_timeout_ms = parse_flag(&arg, value("a duration in milliseconds")?)?
                }
                "--ready-fd" => {
                    config.ready_fd = Some(parse_flag(&arg, value("a file descriptor")?)?)
                }
                "--no-canon" => config.canon = false,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if config.workers == 0 {
            return Err("--workers must be at least 1".into());
        }
        if config.queue_depth == 0 {
            return Err("--queue-cap must be at least 1".into());
        }
        Ok(config)
    }

    /// The base decision options this config implies; per-request knobs
    /// are applied on top (see [`api::RequestOpts::apply`]).
    pub fn base_options(&self) -> ContainmentOptions {
        let mut opts = ContainmentOptions {
            threads: self.threads,
            max_conjuncts: self.max_conjuncts,
            canon: self.canon,
            ..ContainmentOptions::default()
        };
        if let Some(ms) = self.default_timeout_ms {
            opts.budget = flogic_core::Budget::with_timeout(Duration::from_millis(ms));
        }
        opts
    }
}

fn parse_flag<T: std::str::FromStr>(flag: &str, raw: String) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

/// State shared between the reactor and the workers.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    base_opts: ContainmentOptions,
    decisions: DecisionCache,
    snapshots: SnapshotCache,
    profile: Mutex<ChaseProfile>,
    /// The bounded dispatch queue feeding the worker pool.
    pub(crate) jobs: Mutex<VecDeque<Job>>,
    pub(crate) jobs_cv: Condvar,
    /// Finished decisions on their way back to the reactor.
    pub(crate) completions: Mutex<Vec<Completion>>,
    /// Wakes the reactor's epoll loop when completions land.
    pub(crate) waker: Waker,
    shutdown: AtomicBool,
    pub(crate) requests_total: AtomicU64,
    pub(crate) rejected_total: AtomicU64,
    pub(crate) connections_total: AtomicU64,
}

impl Shared {
    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal::shutdown_requested()
    }
}

/// A handle for stopping a running [`Server`] from another thread (the
/// in-process equivalent of SIGTERM).
#[derive(Clone)]
pub struct ServerHandle(Arc<Shared>);

impl ServerHandle {
    /// Asks the server to stop accepting, drain in-flight requests and
    /// return from [`Server::run`].
    pub fn shutdown(&self) {
        self.0.shutdown.store(true, Ordering::Relaxed);
        self.0.jobs_cv.notify_all();
        self.0.waker.wake();
    }
}

/// A bound, not-yet-running containment server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and allocates the shared caches and reactor
    /// waker. The server does not accept until [`run`](Server::run).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let base_opts = config.base_options();
        let snapshots = SnapshotCache::new(config.cache_bytes);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                base_opts,
                snapshots,
                decisions: DecisionCache::new(),
                profile: Mutex::new(ChaseProfile::default()),
                jobs: Mutex::new(VecDeque::new()),
                jobs_cv: Condvar::new(),
                completions: Mutex::new(Vec::new()),
                waker: Waker::new()?,
                shutdown: AtomicBool::new(false),
                requests_total: AtomicU64::new(0),
                rejected_total: AtomicU64::new(0),
                connections_total: AtomicU64::new(0),
                config,
            }),
        })
    }

    /// The bound address (the actual port when `--addr` asked for 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle(Arc::clone(&self.shared))
    }

    /// Runs the reactor until shutdown is requested (via
    /// [`ServerHandle::shutdown`] or SIGTERM/SIGINT once
    /// [`signal::install`] has run), then drains: parsed and queued
    /// requests complete — pipelined tails included — workers join, and
    /// `run` returns.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, shared } = self;
        reactor::run(listener, shared)
    }
}

/// Dispatches one request to its endpoint. Called from worker threads.
pub(crate) fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/contains") => contains_endpoint(shared, &req.body),
        ("POST", "/v1/contains_batch") => batch_endpoint(shared, &req.body),
        ("GET", "/metrics") => Response::text(200, metrics_text(shared)),
        ("GET", "/profile") => {
            let profile = shared.profile.lock().expect("profile poisoned");
            Response::json(200, profile_json(&profile))
        }
        (_, "/v1/contains" | "/v1/contains_batch" | "/metrics" | "/profile") => {
            ApiError::method_not_allowed(&req.method, &req.path).to_response()
        }
        _ => ApiError::not_found(&req.path).to_response(),
    }
}

/// `POST /v1/contains`: one pair, one verdict object.
fn contains_endpoint(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let req = match api::parse_contains(body) {
        Ok(req) => req,
        Err(e) => return e.to_response(),
    };
    let (q1, q2) = match (parse_wire_query(&req.q1), parse_wire_query(&req.q2)) {
        (Ok(q1), Ok(q2)) => (q1, q2),
        (Err(e), _) | (_, Err(e)) => return e.to_response(),
    };
    let tracer = Tracer::with_default_capacity();
    let mut opts = req.opts.apply(&shared.base_opts);
    opts.trace = TraceHandle::enabled(&tracer);
    let out = decide_pair(shared, &q1, &q2, &opts);
    absorb_trace(shared, &tracer);
    match out {
        Ok(result) => Response::json(200, api::verdict_json(&result)),
        Err(e) => api::core_error(&e).to_response(),
    }
}

/// `POST /v1/contains_batch`: many pairs, verdicts in request order.
/// Pairs that share a `q1` (under the canonical key) share one resident
/// chase — the server-side analogue of
/// [`contains_batch`](flogic_core::contains_batch).
fn batch_endpoint(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let req = match api::parse_batch(body) {
        Ok(req) => req,
        Err(e) => return e.to_response(),
    };
    let mut parsed = Vec::with_capacity(req.pairs.len());
    for (i, (q1, q2)) in req.pairs.iter().enumerate() {
        let q1 = match parse_wire_query(q1) {
            Ok(q) => q,
            Err(e) => {
                return ApiError::parse_error(format!("pairs[{i}][0]: {}", e.message)).to_response()
            }
        };
        let q2 = match parse_wire_query(q2) {
            Ok(q) => q,
            Err(e) => {
                return ApiError::parse_error(format!("pairs[{i}][1]: {}", e.message)).to_response()
            }
        };
        parsed.push((q1, q2));
    }
    let tracer = Tracer::with_default_capacity();
    let mut opts = req.opts.apply(&shared.base_opts);
    opts.trace = TraceHandle::enabled(&tracer);
    let mut results = Vec::with_capacity(parsed.len());
    for (q1, q2) in &parsed {
        match decide_pair(shared, q1, q2, &opts) {
            Ok(result) => results.push(result),
            Err(e) => {
                absorb_trace(shared, &tracer);
                return api::core_error(&e).to_response();
            }
        }
    }
    absorb_trace(shared, &tracer);
    Response::json(200, api::batch_json(&results))
}

/// The warm decision path: decision cache over snapshot cache over the
/// Theorem 12 engine. Verdict-identical to a fresh `contains_with` (the
/// contract both caches document).
///
/// With canonicalization on (the default), the pair is substituted by
/// its semantic representatives ([`canonical_pair`]) *before* the cache
/// stack: every syntactic variant of a pair — renamed variables,
/// permuted conjuncts, redundant atoms — collapses to one decision-cache
/// entry, one chase snapshot, and one consistent Theorem 12 bound
/// (derived from the core sizes). The substituted run sets
/// `opts.canon = false` so the decision cache keys the already-canonical
/// inputs structurally instead of recomputing cores per lookup. Sound
/// because classically equivalent queries answer every Σ-containment
/// question alike; the wire format carries no witness, so canonical
/// variable names never leak to clients.
fn decide_pair(
    shared: &Arc<Shared>,
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> Result<ContainmentResult, CoreError> {
    if q1.arity() == q2.arity() {
        if let Some((c1, c2)) = canonical_pair(q1, q2, opts) {
            let mut opts = opts.clone();
            opts.canon = false;
            return shared.decisions.contains_with_compute(&c1, &c2, &opts, || {
                let snapshot =
                    shared
                        .snapshots
                        .get_or_build(&c1, theorem_bound(&c1, &c2), &opts)?;
                snapshot.contains(&c2, &opts)
            });
        }
    }
    shared.decisions.contains_with_compute(q1, q2, opts, || {
        let snapshot = shared
            .snapshots
            .get_or_build(q1, theorem_bound(q1, q2), opts)?;
        snapshot.contains(q2, opts)
    })
}

fn parse_wire_query(text: &str) -> Result<ConjunctiveQuery, ApiError> {
    parse_query(text).map_err(|e| ApiError::parse_error(e.to_string()))
}

/// Folds a request's trace into the server-lifetime profile served by
/// `GET /profile`.
fn absorb_trace(shared: &Arc<Shared>, tracer: &Arc<Tracer>) {
    let request_profile = ChaseProfile::from_snapshot(&tracer.snapshot());
    let mut profile = shared.profile.lock().expect("profile poisoned");
    profile.absorb(&request_profile);
}

/// The `GET /metrics` body: the process-wide engine counters
/// ([`Metrics::render_text`]) plus the server's own gauges, same
/// `name value` line format.
fn metrics_text(shared: &Arc<Shared>) -> String {
    use std::fmt::Write as _;
    let mut s = Metrics::global().snapshot().render_text();
    let stats = shared.snapshots.stats();
    let _ = writeln!(
        s,
        "flqd_requests_total {}",
        shared.requests_total.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        s,
        "flqd_rejected_total {}",
        shared.rejected_total.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        s,
        "flqd_connections_total {}",
        shared.connections_total.load(Ordering::Relaxed)
    );
    let _ = writeln!(s, "flqd_snapshot_hits {}", stats.hits);
    let _ = writeln!(s, "flqd_snapshot_misses {}", stats.misses);
    let _ = writeln!(s, "flqd_snapshot_evictions {}", stats.evictions);
    let _ = writeln!(s, "flqd_snapshot_uncacheable {}", stats.uncacheable);
    let _ = writeln!(s, "flqd_snapshot_resident_bytes {}", stats.resident_bytes);
    let _ = writeln!(
        s,
        "flqd_snapshot_resident_entries {}",
        stats.resident_entries
    );
    let _ = writeln!(
        s,
        "flqd_snapshot_cap_bytes {}",
        shared.snapshots.cap_bytes()
    );
    let _ = writeln!(s, "flqd_decision_cache_entries {}", shared.decisions.len());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parses_every_flag_and_rejects_nonsense() {
        let args = [
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--queue-cap",
            "9",
            "--cache-bytes",
            "1024",
            "--max-body-bytes",
            "2048",
            "--threads",
            "2",
            "--timeout",
            "250",
            "--max-conjuncts",
            "77",
            "--read-timeout",
            "300",
            "--ready-fd",
            "5",
            "--no-canon",
        ];
        let config = ServerConfig::from_args(args.iter().map(|s| s.to_string())).unwrap();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.workers, 4);
        assert_eq!(config.queue_depth, 9);
        assert_eq!(config.cache_bytes, 1024);
        assert_eq!(config.max_body_bytes, 2048);
        assert_eq!(config.threads, 2);
        assert_eq!(config.default_timeout_ms, Some(250));
        assert_eq!(config.max_conjuncts, 77);
        assert_eq!(config.read_timeout_ms, 300);
        assert_eq!(config.ready_fd, Some(5));
        assert!(!config.canon);
        assert!(ServerConfig::default().canon, "canon is on by default");

        for bad in [
            vec!["--bogus"],
            vec!["--queue", "4"],
            vec!["--workers"],
            vec!["--workers", "zero"],
            vec!["--workers", "0"],
            vec!["--queue-cap", "0"],
            vec!["--ready-fd", "three"],
        ] {
            assert!(
                ServerConfig::from_args(bad.iter().map(|s| s.to_string())).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn base_options_carry_config_knobs() {
        let config = ServerConfig {
            threads: 3,
            max_conjuncts: 42,
            default_timeout_ms: Some(5),
            ..ServerConfig::default()
        };
        let opts = config.base_options();
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.max_conjuncts, 42);
        assert!(!opts.budget.is_unlimited());
        assert!(opts.analysis);
        assert_eq!(opts.level_bound, None);
        assert!(opts.canon);
        let no_canon = ServerConfig {
            canon: false,
            ..ServerConfig::default()
        };
        assert!(!no_canon.base_options().canon);
    }
}
