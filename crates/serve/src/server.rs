//! Server configuration, shared warm state, and request routing.
//!
//! The runtime itself lives in [`reactor`](crate::reactor): a single
//! epoll event loop owns every socket, and a bounded worker pool owns
//! the chase/decide work. This module owns what the reactor shares:
//!
//! * a [`DurableDecisionCache`] memoizing whole `(q1, q2)` verdicts —
//!   in-RAM always, and additionally persisted to an LSM store when
//!   `--data-dir` is set, so a restarted server begins disk-warm
//!   (format spec in `docs/STORAGE.md`),
//! * a [`SnapshotCache`] holding each `q1`'s chase so repeated
//!   questions about the same query pay only the homomorphism search,
//! * the dispatch queue feeding the workers — bounded at
//!   `--queue-cap`, beyond which requests are answered `503` with
//!   `Retry-After` (explicit backpressure, mirroring how the chase
//!   governor refuses work instead of letting it balloon), and
//! * the process counters behind `GET /metrics`.
//!
//! A decision miss flows through both caches: the decision cache's
//! `contains_with_compute` fills from the snapshot cache, whose
//! [`ChaseSnapshot::contains`](flogic_core::ChaseSnapshot::contains)
//! mirrors `contains_with` exactly — so verdicts are bit-identical to
//! the `flq` CLI's, warm or cold.

use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use flogic_core::{
    canonical_pair, canonical_query, theorem_bound, ContainmentOptions, ContainmentResult,
    CoreError, QueryKey, Verdict,
};
use flogic_model::ConjunctiveQuery;
use flogic_obs::export::profile_json;
use flogic_obs::{ChaseProfile, TraceHandle, Tracer};
use flogic_store::DurableDecisionCache;
use flogic_syntax::parse_query;
use flogic_term::Metrics;

use crate::api::{self, ApiError};
use crate::http::{Request, Response};
use crate::obs::{Endpoint, ReqMeta, ServerObs};
use crate::poll::Waker;
use crate::reactor::{self, Completion, Job};
use crate::signal;
use crate::snapshots::SnapshotCache;

/// The content type Prometheus scrapers require of text exposition.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Configuration of a [`Server`], settable from the command line via
/// [`ServerConfig::from_args`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Listen address (`--addr`); `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads deciding containments (`--workers`). The reactor
    /// itself runs on the calling thread and never chases.
    pub workers: usize,
    /// Bounded dispatch-queue depth (`--queue-cap`); requests arriving
    /// while the queue is full are answered `503` with `Retry-After`.
    pub queue_depth: usize,
    /// Byte cap of the resident chase-snapshot cache (`--cache-bytes`).
    pub cache_bytes: usize,
    /// Cap on request bodies (`--max-body-bytes`).
    pub max_body_bytes: usize,
    /// Chase discovery threads per decision (`--threads`), as in
    /// `flq contains --threads`.
    pub threads: usize,
    /// Server-side default wall-clock budget per decision (`--timeout`,
    /// milliseconds); requests may override. `None` means unlimited.
    pub default_timeout_ms: Option<u64>,
    /// Server-side default cap on materialized chase conjuncts
    /// (`--max-conjuncts`); requests may override.
    pub max_conjuncts: usize,
    /// Keep-alive idle timeout (`--read-timeout`, milliseconds): a
    /// connection with no pending work and no bytes moving for this
    /// long is closed.
    pub read_timeout_ms: u64,
    /// File descriptor to write a `HOST:PORT\n` readiness line to once
    /// bound (`--ready-fd`), then close. Lets supervisors and CI block
    /// on actual readiness instead of polling logs.
    pub ready_fd: Option<i32>,
    /// Canonicalize incoming queries to their semantic representatives
    /// (classic core + total ordering) before the warm caches
    /// (`--no-canon` turns it off). On by default: syntactic variants —
    /// renamed variables, permuted conjuncts, redundant atoms — share
    /// decision-cache entries and chase snapshots. Verdicts are
    /// identical with the toggle on or off.
    pub canon: bool,
    /// Structured JSONL access-log destination (`--access-log`): a file
    /// path, or `-` for stdout. `None` disables the log entirely — the
    /// per-request logging path then allocates nothing.
    pub access_log: Option<String>,
    /// Slow-request threshold in microseconds (`--slow-us`): requests
    /// at or over it are always logged, even when sampled out.
    pub slow_us: Option<u64>,
    /// Access-log sampling divisor (`--log-sample 1/N` or `N`): only
    /// requests whose id is divisible by N produce a line. 1 (the
    /// default) logs every request.
    pub log_sample: u64,
    /// Durable decision-store directory (`--data-dir`). When set,
    /// decided containments are persisted to an LSM store under this
    /// directory (created if absent) and a restarted server serves
    /// prior decisions from disk instead of recomputing them. `None`
    /// (the default) keeps the caches RAM-only. On-disk format:
    /// `docs/STORAGE.md`.
    pub data_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7171".into(),
            workers: 2,
            queue_depth: 64,
            cache_bytes: 64 << 20,
            max_body_bytes: 1 << 20,
            threads: 1,
            default_timeout_ms: None,
            max_conjuncts: ContainmentOptions::default().max_conjuncts,
            read_timeout_ms: 5_000,
            ready_fd: None,
            canon: true,
            access_log: None,
            slow_us: None,
            log_sample: 1,
            data_dir: None,
        }
    }
}

/// The `flq serve` / `flqd` flag reference, shared by both binaries'
/// usage text.
pub const SERVE_FLAGS: &str = "[--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-bytes N] \
[--max-body-bytes N] [--threads N] [--timeout MS] [--max-conjuncts N] [--read-timeout MS] \
[--ready-fd FD] [--no-canon] [--access-log FILE|-] [--slow-us N] [--log-sample 1/N] \
[--data-dir DIR]";

impl ServerConfig {
    /// Parses command-line flags into a config, starting from defaults.
    /// Unknown flags and malformed values are errors (the caller prints
    /// the message and exits with the usage status).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<ServerConfig, String> {
        let mut config = ServerConfig::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value = |what: &str| it.next().ok_or_else(|| format!("{arg} needs {what}"));
            match arg.as_str() {
                "--addr" => config.addr = value("an address")?,
                "--workers" => config.workers = parse_flag(&arg, value("a number")?)?,
                "--queue-cap" => config.queue_depth = parse_flag(&arg, value("a number")?)?,
                "--cache-bytes" => config.cache_bytes = parse_flag(&arg, value("a number")?)?,
                "--max-body-bytes" => config.max_body_bytes = parse_flag(&arg, value("a number")?)?,
                "--threads" => config.threads = parse_flag(&arg, value("a number")?)?,
                "--timeout" => {
                    config.default_timeout_ms =
                        Some(parse_flag(&arg, value("a duration in milliseconds")?)?)
                }
                "--max-conjuncts" => config.max_conjuncts = parse_flag(&arg, value("a number")?)?,
                "--read-timeout" => {
                    config.read_timeout_ms = parse_flag(&arg, value("a duration in milliseconds")?)?
                }
                "--ready-fd" => {
                    config.ready_fd = Some(parse_flag(&arg, value("a file descriptor")?)?)
                }
                "--no-canon" => config.canon = false,
                "--access-log" => config.access_log = Some(value("a file path or -")?),
                "--slow-us" => {
                    config.slow_us = Some(parse_flag(&arg, value("a duration in microseconds")?)?)
                }
                "--log-sample" => {
                    config.log_sample = parse_sample(&arg, &value("a rate like 1/16")?)?
                }
                "--data-dir" => config.data_dir = Some(value("a directory")?),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if config.workers == 0 {
            return Err("--workers must be at least 1".into());
        }
        if config.queue_depth == 0 {
            return Err("--queue-cap must be at least 1".into());
        }
        Ok(config)
    }

    /// The base decision options this config implies; per-request knobs
    /// are applied on top (see [`api::RequestOpts::apply`]).
    pub fn base_options(&self) -> ContainmentOptions {
        let mut opts = ContainmentOptions {
            threads: self.threads,
            max_conjuncts: self.max_conjuncts,
            canon: self.canon,
            ..ContainmentOptions::default()
        };
        if let Some(ms) = self.default_timeout_ms {
            opts.budget = flogic_core::Budget::with_timeout(Duration::from_millis(ms));
        }
        opts
    }
}

fn parse_flag<T: std::str::FromStr>(flag: &str, raw: String) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

/// Parses a sampling rate written `1/N` (or bare `N`) into the divisor
/// N; zero is rejected.
fn parse_sample(flag: &str, raw: &str) -> Result<u64, String> {
    let divisor = raw.strip_prefix("1/").unwrap_or(raw);
    let n: u64 = parse_flag(flag, divisor.to_string())?;
    if n == 0 {
        return Err(format!("{flag}: the divisor must be at least 1"));
    }
    Ok(n)
}

/// State shared between the reactor and the workers.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    base_opts: ContainmentOptions,
    decisions: DurableDecisionCache,
    snapshots: SnapshotCache,
    profile: Mutex<ChaseProfile>,
    /// The bounded dispatch queue feeding the worker pool.
    pub(crate) jobs: Mutex<VecDeque<Job>>,
    pub(crate) jobs_cv: Condvar,
    /// Finished decisions on their way back to the reactor.
    pub(crate) completions: Mutex<Vec<Completion>>,
    /// Wakes the reactor's epoll loop when completions land.
    pub(crate) waker: Waker,
    shutdown: AtomicBool,
    pub(crate) requests_total: AtomicU64,
    pub(crate) rejected_total: AtomicU64,
    pub(crate) connections_total: AtomicU64,
    /// Request-level observability: stage/endpoint histograms, gauges,
    /// and the access log.
    pub(crate) obs: ServerObs,
}

impl Shared {
    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal::shutdown_requested()
    }
}

/// A handle for stopping a running [`Server`] from another thread (the
/// in-process equivalent of SIGTERM).
#[derive(Clone)]
pub struct ServerHandle(Arc<Shared>);

impl ServerHandle {
    /// Asks the server to stop accepting, drain in-flight requests and
    /// return from [`Server::run`].
    pub fn shutdown(&self) {
        self.0.shutdown.store(true, Ordering::Relaxed);
        self.0.jobs_cv.notify_all();
        self.0.waker.wake();
    }
}

/// A bound, not-yet-running containment server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and allocates the shared caches and reactor
    /// waker. The server does not accept until [`run`](Server::run).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let base_opts = config.base_options();
        let snapshots = SnapshotCache::new(config.cache_bytes);
        let obs = ServerObs::new(&config)?;
        // Opening the durable tier is part of bind: a server asked to
        // persist but unable to must fail loudly before serving, not
        // degrade to silent RAM-only mode.
        let decisions = match &config.data_dir {
            Some(dir) => DurableDecisionCache::open(std::path::Path::new(dir))
                .map_err(|e| io::Error::other(format!("--data-dir {dir}: {e}")))?,
            None => DurableDecisionCache::memory(),
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                base_opts,
                snapshots,
                obs,
                decisions,
                profile: Mutex::new(ChaseProfile::default()),
                jobs: Mutex::new(VecDeque::new()),
                jobs_cv: Condvar::new(),
                completions: Mutex::new(Vec::new()),
                waker: Waker::new()?,
                shutdown: AtomicBool::new(false),
                requests_total: AtomicU64::new(0),
                rejected_total: AtomicU64::new(0),
                connections_total: AtomicU64::new(0),
                config,
            }),
        })
    }

    /// The bound address (the actual port when `--addr` asked for 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle(Arc::clone(&self.shared))
    }

    /// Runs the reactor until shutdown is requested (via
    /// [`ServerHandle::shutdown`] or SIGTERM/SIGINT once
    /// [`signal::install`] has run), then drains: parsed and queued
    /// requests complete — pipelined tails included — workers join, and
    /// `run` returns.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, shared } = self;
        let out = reactor::run(listener, Arc::clone(&shared));
        // Graceful drain done: flush the durable tier's memtable so a
        // clean shutdown never loses decided containments to the WAL's
        // relaxed fsync policy.
        shared
            .decisions
            .flush()
            .map_err(|e| io::Error::other(format!("flushing decision store: {e}")))?;
        out
    }
}

/// Dispatches one request to its endpoint. Called from worker threads.
/// Fills `meta.endpoint` so per-endpoint histograms and the access log
/// name what actually ran; the query string (split off before matching)
/// selects presentation variants like `/metrics?format=text`.
pub(crate) fn route(shared: &Arc<Shared>, req: &Request, meta: &mut ReqMeta) -> Response {
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    match (req.method.as_str(), path) {
        ("POST", "/v1/contains") => {
            meta.endpoint = Endpoint::Contains;
            contains_endpoint(shared, &req.body, meta)
        }
        ("POST", "/v1/contains_batch") => {
            meta.endpoint = Endpoint::Batch;
            batch_endpoint(shared, &req.body, meta)
        }
        ("GET", "/metrics") => {
            meta.endpoint = Endpoint::Metrics;
            if query == "format=text" {
                Response::text(200, metrics_text(shared))
            } else {
                Response::with_content_type(
                    200,
                    PROMETHEUS_CONTENT_TYPE,
                    metrics_prometheus(shared),
                )
            }
        }
        ("GET", "/v1/status") => {
            meta.endpoint = Endpoint::Status;
            Response::json(200, status_json(shared))
        }
        ("GET", "/profile") => {
            meta.endpoint = Endpoint::Profile;
            let profile = shared.profile.lock().expect("profile poisoned");
            Response::json(200, profile_json(&profile))
        }
        (_, "/v1/contains" | "/v1/contains_batch" | "/v1/status" | "/metrics" | "/profile") => {
            ApiError::method_not_allowed(&req.method, path).to_response()
        }
        _ => ApiError::not_found(path).to_response(),
    }
}

/// The access-log name of a decision verdict.
fn verdict_name(result: &ContainmentResult) -> &'static str {
    match result.verdict() {
        Verdict::Holds => "holds",
        Verdict::NotHolds => "not_holds",
        Verdict::Exhausted(_) => "exhausted",
    }
}

/// `POST /v1/contains`: one pair, one verdict object.
fn contains_endpoint(shared: &Arc<Shared>, body: &[u8], meta: &mut ReqMeta) -> Response {
    let req = match api::parse_contains(body) {
        Ok(req) => req,
        Err(e) => return e.to_response(),
    };
    let (q1, q2) = match (parse_wire_query(&req.q1), parse_wire_query(&req.q2)) {
        (Ok(q1), Ok(q2)) => (q1, q2),
        (Err(e), _) | (_, Err(e)) => return e.to_response(),
    };
    let tracer = Tracer::with_default_capacity();
    let mut opts = req.opts.apply(&shared.base_opts);
    opts.trace = TraceHandle::enabled(&tracer);
    let out = decide_pair(shared, &q1, &q2, &opts, Some(meta));
    absorb_trace(shared, &tracer);
    match out {
        Ok(result) => {
            meta.verdict = Some(verdict_name(&result));
            Response::json(200, api::verdict_json(&result))
        }
        Err(e) => api::core_error(&e).to_response(),
    }
}

/// `POST /v1/contains_batch`: many pairs, verdicts in request order.
/// Pairs that share a `q1` *semantically* share one canonical
/// representative — and therefore one decision-cache key and one
/// resident chase — the server-side analogue of
/// [`contains_batch`](flogic_core::contains_batch). The grouping keys on
/// [`QueryKey::of`] (core + canonical ordering), so renamed, permuted,
/// or redundant variants of the same `q1` all land in one group; a raw
/// text memo in front skips even the key computation for byte-identical
/// repeats. Each reuse counts one `flqd_batch_dedup_hits_total`.
fn batch_endpoint(shared: &Arc<Shared>, body: &[u8], meta: &mut ReqMeta) -> Response {
    let req = match api::parse_batch(body) {
        Ok(req) => req,
        Err(e) => return e.to_response(),
    };
    let mut parsed = Vec::with_capacity(req.pairs.len());
    for (i, (q1, q2)) in req.pairs.iter().enumerate() {
        let q1 = match parse_wire_query(q1) {
            Ok(q) => q,
            Err(e) => {
                return ApiError::parse_error(format!("pairs[{i}][0]: {}", e.message)).to_response()
            }
        };
        let q2 = match parse_wire_query(q2) {
            Ok(q) => q,
            Err(e) => {
                return ApiError::parse_error(format!("pairs[{i}][1]: {}", e.message)).to_response()
            }
        };
        parsed.push((q1, q2));
    }
    let tracer = Tracer::with_default_capacity();
    let mut opts = req.opts.apply(&shared.base_opts);
    opts.trace = TraceHandle::enabled(&tracer);
    // Dedup is sound exactly when the canonical substitution would run
    // for the pair anyway: canonicalization on and no level-bound cap
    // that could undercut the derived Theorem 12 bound (flqd requests
    // never set one — mirrors `canonical_pair`'s own gate).
    let dedup_ok = opts.canon && opts.level_bound.is_none();
    let mut rep_of_text: HashMap<&str, usize> = HashMap::new();
    let mut rep_of_key: HashMap<QueryKey, usize> = HashMap::new();
    let mut reps: Vec<ConjunctiveQuery> = Vec::new();
    let mut results = Vec::with_capacity(parsed.len());
    for (i, (q1, q2)) in parsed.iter().enumerate() {
        let out = if dedup_ok && q1.arity() == q2.arity() {
            let raw = req.pairs[i].0.as_str();
            let idx = if let Some(&idx) = rep_of_text.get(raw) {
                shared.obs.batch_dedup_hits.fetch_add(1, Ordering::Relaxed);
                idx
            } else {
                match rep_of_key.entry(QueryKey::of(q1)) {
                    Entry::Occupied(e) => {
                        shared.obs.batch_dedup_hits.fetch_add(1, Ordering::Relaxed);
                        let idx = *e.get();
                        rep_of_text.insert(raw, idx);
                        idx
                    }
                    Entry::Vacant(v) => {
                        reps.push(canonical_query(q1));
                        let idx = reps.len() - 1;
                        v.insert(idx);
                        rep_of_text.insert(raw, idx);
                        idx
                    }
                }
            };
            let c2 = canonical_query(q2);
            let mut o = opts.clone();
            o.canon = false;
            decide_canonical(shared, &reps[idx], &c2, &o).0
        } else {
            decide_pair(shared, q1, q2, &opts, None)
        };
        match out {
            Ok(result) => results.push(result),
            Err(e) => {
                absorb_trace(shared, &tracer);
                return api::core_error(&e).to_response();
            }
        }
    }
    meta.span.mark("decide");
    absorb_trace(shared, &tracer);
    Response::json(200, api::batch_json(&results))
}

/// The warm decision path: decision cache over snapshot cache over the
/// Theorem 12 engine. Verdict-identical to a fresh `contains_with` (the
/// contract both caches document).
///
/// With canonicalization on (the default), the pair is substituted by
/// its semantic representatives ([`canonical_pair`]) *before* the cache
/// stack: every syntactic variant of a pair — renamed variables,
/// permuted conjuncts, redundant atoms — collapses to one decision-cache
/// entry, one chase snapshot, and one consistent Theorem 12 bound
/// (derived from the core sizes). The substituted run sets
/// `opts.canon = false` so the decision cache keys the already-canonical
/// inputs structurally instead of recomputing cores per lookup. Sound
/// because classically equivalent queries answer every Σ-containment
/// question alike; the wire format carries no witness, so canonical
/// variable names never leak to clients.
fn decide_pair(
    shared: &Arc<Shared>,
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
    mut meta: Option<&mut ReqMeta>,
) -> Result<ContainmentResult, CoreError> {
    let canonical = if q1.arity() == q2.arity() {
        canonical_pair(q1, q2, opts)
    } else {
        None
    };
    if let Some(m) = meta.as_deref_mut() {
        m.span.mark("canon");
    }
    let (out, computed) = match canonical {
        Some((c1, c2)) => {
            let mut opts = opts.clone();
            opts.canon = false;
            decide_canonical(shared, &c1, &c2, &opts)
        }
        None => decide_canonical(shared, q1, q2, opts),
    };
    if let Some(m) = meta {
        match computed {
            // The cache stage ends where compute began; everything from
            // there to now is the decide stage.
            Some(compute_start) => {
                m.span.mark_at("cache", compute_start);
                m.span.mark("decide");
                m.cache = Some("miss");
            }
            None => {
                m.span.mark("cache");
                m.cache = Some("hit");
            }
        }
    }
    out
}

/// Runs one (already canonical, or deliberately uncanonicalized) pair
/// through the decision cache over the snapshot cache, reporting *when*
/// the compute closure started — `None` means the decision cache
/// answered outright. Feeds the `flqd_decision_cache_{hits,misses}`
/// counters.
fn decide_canonical(
    shared: &Arc<Shared>,
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> (Result<ContainmentResult, CoreError>, Option<Instant>) {
    let compute_start = Cell::new(None);
    let out = shared.decisions.contains_with_compute(q1, q2, opts, || {
        compute_start.set(Some(Instant::now()));
        let snapshot = shared
            .snapshots
            .get_or_build(q1, theorem_bound(q1, q2), opts)?;
        snapshot.contains(q2, opts)
    });
    let computed = compute_start.get();
    let counter = if computed.is_some() {
        &shared.obs.decision_misses
    } else {
        &shared.obs.decision_hits
    };
    counter.fetch_add(1, Ordering::Relaxed);
    (out, computed)
}

fn parse_wire_query(text: &str) -> Result<ConjunctiveQuery, ApiError> {
    parse_query(text).map_err(|e| ApiError::parse_error(e.to_string()))
}

/// Folds a request's trace into the server-lifetime profile served by
/// `GET /profile`.
fn absorb_trace(shared: &Arc<Shared>, tracer: &Arc<Tracer>) {
    let request_profile = ChaseProfile::from_snapshot(&tracer.snapshot());
    let mut profile = shared.profile.lock().expect("profile poisoned");
    profile.absorb(&request_profile);
}

/// The `GET /metrics` body: the process-wide engine counters
/// ([`Metrics::render_text`]) plus the server's own gauges, same
/// `name value` line format.
fn metrics_text(shared: &Arc<Shared>) -> String {
    use std::fmt::Write as _;
    let mut s = Metrics::global().snapshot().render_text();
    let stats = shared.snapshots.stats();
    let _ = writeln!(
        s,
        "flqd_requests_total {}",
        shared.requests_total.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        s,
        "flqd_rejected_total {}",
        shared.rejected_total.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        s,
        "flqd_connections_total {}",
        shared.connections_total.load(Ordering::Relaxed)
    );
    let _ = writeln!(s, "flqd_snapshot_hits {}", stats.hits);
    let _ = writeln!(s, "flqd_snapshot_misses {}", stats.misses);
    let _ = writeln!(s, "flqd_snapshot_evictions {}", stats.evictions);
    let _ = writeln!(s, "flqd_snapshot_uncacheable {}", stats.uncacheable);
    let _ = writeln!(s, "flqd_snapshot_resident_bytes {}", stats.resident_bytes);
    let _ = writeln!(
        s,
        "flqd_snapshot_resident_entries {}",
        stats.resident_entries
    );
    let _ = writeln!(
        s,
        "flqd_snapshot_cap_bytes {}",
        shared.snapshots.cap_bytes()
    );
    let _ = writeln!(s, "flqd_decision_cache_entries {}", shared.decisions.len());
    if let Some(store) = shared.decisions.store() {
        let durable = shared.decisions.durable_stats();
        let store_stats = store.stats();
        let _ = writeln!(s, "flqd_store_disk_hits {}", durable.disk_hits);
        let _ = writeln!(s, "flqd_store_disk_misses {}", durable.disk_misses);
        let _ = writeln!(s, "flqd_store_disk_errors {}", durable.disk_errors);
        let _ = writeln!(s, "flqd_store_segments {}", store_stats.segments);
        let _ = writeln!(
            s,
            "flqd_store_segment_entries {}",
            store_stats.segment_entries
        );
        let _ = writeln!(
            s,
            "flqd_store_memtable_entries {}",
            store_stats.memtable_entries
        );
        let _ = writeln!(s, "flqd_store_wal_bytes {}", store_stats.wal_bytes);
        let _ = writeln!(s, "flqd_store_generation {}", store_stats.generation);
    }
    s
}

/// The default `GET /metrics` body: Prometheus text exposition
/// (format 0.0.4). Every family gets its `# TYPE` header and at least
/// one sample line, so scrapers and the exposition checker never see a
/// headerless series or a sampleless family. Latency histograms use
/// cumulative `_bucket{le=...}` series in nanoseconds, one labeled
/// series per pipeline stage and per endpoint.
fn metrics_prometheus(shared: &Arc<Shared>) -> String {
    use std::fmt::Write as _;
    let snap = shared.obs.snapshot();
    let stats = shared.snapshots.stats();
    let mut s = String::with_capacity(8 << 10);
    let simple = |s: &mut String, name: &str, kind: &str, value: u64| {
        let _ = writeln!(s, "# TYPE {name} {kind}");
        let _ = writeln!(s, "{name} {value}");
    };
    simple(&mut s, "flqd_uptime_seconds", "gauge", snap.uptime_s);
    simple(
        &mut s,
        "flqd_requests_total",
        "counter",
        shared.requests_total.load(Ordering::Relaxed),
    );
    simple(
        &mut s,
        "flqd_rejected_total",
        "counter",
        shared.rejected_total.load(Ordering::Relaxed),
    );
    simple(
        &mut s,
        "flqd_connections_total",
        "counter",
        shared.connections_total.load(Ordering::Relaxed),
    );
    let _ = writeln!(s, "# TYPE flqd_responses_total counter");
    for (class, count) in [
        ("2xx", snap.responses_2xx),
        ("4xx", snap.responses_4xx),
        ("5xx", snap.responses_5xx),
    ] {
        let _ = writeln!(s, "flqd_responses_total{{class=\"{class}\"}} {count}");
    }
    simple(
        &mut s,
        "flqd_open_connections",
        "gauge",
        snap.open_connections,
    );
    simple(
        &mut s,
        "flqd_queue_depth_highwater",
        "gauge",
        snap.queue_highwater,
    );
    simple(
        &mut s,
        "flqd_in_flight_workers",
        "gauge",
        snap.in_flight_workers,
    );
    simple(
        &mut s,
        "flqd_decision_cache_hits_total",
        "counter",
        snap.decision_hits,
    );
    simple(
        &mut s,
        "flqd_decision_cache_misses_total",
        "counter",
        snap.decision_misses,
    );
    simple(
        &mut s,
        "flqd_decision_cache_entries",
        "gauge",
        shared.decisions.len() as u64,
    );
    simple(
        &mut s,
        "flqd_snapshot_cache_hits_total",
        "counter",
        stats.hits,
    );
    simple(
        &mut s,
        "flqd_snapshot_cache_misses_total",
        "counter",
        stats.misses,
    );
    simple(
        &mut s,
        "flqd_snapshot_cache_evictions_total",
        "counter",
        stats.evictions,
    );
    simple(
        &mut s,
        "flqd_snapshot_cache_uncacheable_total",
        "counter",
        stats.uncacheable,
    );
    simple(
        &mut s,
        "flqd_snapshot_resident_bytes",
        "gauge",
        stats.resident_bytes,
    );
    simple(
        &mut s,
        "flqd_snapshot_resident_entries",
        "gauge",
        stats.resident_entries,
    );
    simple(
        &mut s,
        "flqd_snapshot_cap_bytes",
        "gauge",
        shared.snapshots.cap_bytes() as u64,
    );
    simple(
        &mut s,
        "flqd_batch_dedup_hits_total",
        "counter",
        snap.batch_dedup_hits,
    );
    // Process-global canonicalization counters, mirrored from the legacy
    // text exposition so `--no-canon` vs canon-on is scrapeable.
    let global = Metrics::global().snapshot();
    simple(
        &mut s,
        "flqd_canon_keys_total",
        "counter",
        global.canon_keys,
    );
    simple(
        &mut s,
        "flqd_canon_reduced_total",
        "counter",
        global.canon_reduced,
    );
    simple(
        &mut s,
        "flqd_canon_nanoseconds_total",
        "counter",
        global.canon_nanos,
    );
    // The durable decision tier, present only when `--data-dir` is set
    // (no sampleless families for a tier that does not exist).
    if let Some(store) = shared.decisions.store() {
        let durable = shared.decisions.durable_stats();
        let ss = store.stats();
        simple(
            &mut s,
            "flqd_store_disk_hits_total",
            "counter",
            durable.disk_hits,
        );
        simple(
            &mut s,
            "flqd_store_disk_misses_total",
            "counter",
            durable.disk_misses,
        );
        simple(
            &mut s,
            "flqd_store_disk_errors_total",
            "counter",
            durable.disk_errors,
        );
        simple(&mut s, "flqd_store_puts_total", "counter", ss.puts);
        simple(&mut s, "flqd_store_flushes_total", "counter", ss.flushes);
        simple(
            &mut s,
            "flqd_store_compactions_total",
            "counter",
            ss.compactions,
        );
        simple(
            &mut s,
            "flqd_store_quarantined_total",
            "counter",
            ss.quarantined,
        );
        simple(&mut s, "flqd_store_segments", "gauge", ss.segments);
        simple(
            &mut s,
            "flqd_store_segment_entries",
            "gauge",
            ss.segment_entries,
        );
        simple(
            &mut s,
            "flqd_store_memtable_entries",
            "gauge",
            ss.memtable_entries,
        );
        simple(
            &mut s,
            "flqd_store_memtable_bytes",
            "gauge",
            ss.memtable_bytes,
        );
        simple(&mut s, "flqd_store_wal_bytes", "gauge", ss.wal_bytes);
        simple(&mut s, "flqd_store_generation", "gauge", ss.generation);
        simple(
            &mut s,
            "flqd_store_wal_replayed_records",
            "gauge",
            ss.wal_replayed,
        );
    }
    simple(
        &mut s,
        "flqd_access_log_lines_total",
        "counter",
        snap.log_lines,
    );
    simple(
        &mut s,
        "flqd_access_log_dropped_total",
        "counter",
        snap.log_dropped,
    );
    let _ = writeln!(s, "# TYPE flqd_stage_duration_nanoseconds histogram");
    for (stage, hist) in &snap.stages {
        hist.render_prometheus(
            &mut s,
            "flqd_stage_duration_nanoseconds",
            &format!("stage=\"{stage}\""),
        );
    }
    let _ = writeln!(s, "# TYPE flqd_request_duration_nanoseconds histogram");
    for (endpoint, hist) in &snap.endpoints {
        hist.render_prometheus(
            &mut s,
            "flqd_request_duration_nanoseconds",
            &format!("endpoint=\"{endpoint}\""),
        );
    }
    s
}

/// The `GET /v1/status` body: a JSON rollup of uptime, per-stage and
/// per-endpoint latency percentiles (microseconds), live gauges, cache
/// hit ratios, and access-log health. Integer-only JSON, parseable by
/// the strict [`json`](crate::json) parser; ratios are whole percents.
fn status_json(shared: &Arc<Shared>) -> String {
    use std::fmt::Write as _;
    fn pct(hits: u64, misses: u64) -> u64 {
        (hits * 100).checked_div(hits + misses).unwrap_or(0)
    }
    fn write_percentiles(s: &mut String, series: &[(&'static str, flogic_obs::HistogramSnapshot)]) {
        for (i, (name, hist)) in series.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{name}\":{{\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
                hist.count,
                hist.p50() / 1_000,
                hist.p90() / 1_000,
                hist.p99() / 1_000,
                hist.max / 1_000
            );
        }
    }
    let snap = shared.obs.snapshot();
    let stats = shared.snapshots.stats();
    let mut s = String::with_capacity(4 << 10);
    let _ = write!(
        s,
        "{{\"uptime_s\":{},\"requests_total\":{},\"rejected_total\":{},\"connections_total\":{}",
        snap.uptime_s,
        shared.requests_total.load(Ordering::Relaxed),
        shared.rejected_total.load(Ordering::Relaxed),
        shared.connections_total.load(Ordering::Relaxed)
    );
    let _ = write!(
        s,
        ",\"gauges\":{{\"open_connections\":{},\"queue_depth_highwater\":{},\"in_flight_workers\":{},\"snapshot_resident_bytes\":{}}}",
        snap.open_connections, snap.queue_highwater, snap.in_flight_workers, stats.resident_bytes
    );
    s.push_str(",\"stages\":{");
    write_percentiles(&mut s, &snap.stages);
    s.push_str("},\"endpoints\":{");
    write_percentiles(&mut s, &snap.endpoints);
    let _ = write!(
        s,
        "}},\"cache\":{{\"decision_hits\":{},\"decision_misses\":{},\"decision_hit_pct\":{},\"snapshot_hits\":{},\"snapshot_misses\":{},\"snapshot_hit_pct\":{}}}",
        snap.decision_hits,
        snap.decision_misses,
        pct(snap.decision_hits, snap.decision_misses),
        stats.hits,
        stats.misses,
        pct(stats.hits, stats.misses)
    );
    let _ = write!(
        s,
        ",\"batch_dedup_hits\":{},\"responses\":{{\"2xx\":{},\"4xx\":{},\"5xx\":{}}},\"access_log\":{{\"lines\":{},\"dropped\":{}}}}}",
        snap.batch_dedup_hits,
        snap.responses_2xx,
        snap.responses_4xx,
        snap.responses_5xx,
        snap.log_lines,
        snap.log_dropped
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parses_every_flag_and_rejects_nonsense() {
        let args = [
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--queue-cap",
            "9",
            "--cache-bytes",
            "1024",
            "--max-body-bytes",
            "2048",
            "--threads",
            "2",
            "--timeout",
            "250",
            "--max-conjuncts",
            "77",
            "--read-timeout",
            "300",
            "--ready-fd",
            "5",
            "--no-canon",
            "--access-log",
            "/tmp/access.jsonl",
            "--slow-us",
            "750",
            "--log-sample",
            "1/16",
            "--data-dir",
            "/tmp/flq-data",
        ];
        let config = ServerConfig::from_args(args.iter().map(|s| s.to_string())).unwrap();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.workers, 4);
        assert_eq!(config.queue_depth, 9);
        assert_eq!(config.cache_bytes, 1024);
        assert_eq!(config.max_body_bytes, 2048);
        assert_eq!(config.threads, 2);
        assert_eq!(config.default_timeout_ms, Some(250));
        assert_eq!(config.max_conjuncts, 77);
        assert_eq!(config.read_timeout_ms, 300);
        assert_eq!(config.ready_fd, Some(5));
        assert!(!config.canon);
        assert!(ServerConfig::default().canon, "canon is on by default");
        assert_eq!(config.access_log.as_deref(), Some("/tmp/access.jsonl"));
        assert_eq!(config.slow_us, Some(750));
        assert_eq!(config.log_sample, 16);
        let bare = ServerConfig::from_args(["--log-sample".into(), "8".into()]).unwrap();
        assert_eq!(bare.log_sample, 8, "bare N accepted alongside 1/N");
        assert_eq!(ServerConfig::default().log_sample, 1);
        assert_eq!(config.data_dir.as_deref(), Some("/tmp/flq-data"));
        assert_eq!(ServerConfig::default().data_dir, None, "RAM-only default");

        for bad in [
            vec!["--bogus"],
            vec!["--queue", "4"],
            vec!["--workers"],
            vec!["--workers", "zero"],
            vec!["--workers", "0"],
            vec!["--queue-cap", "0"],
            vec!["--ready-fd", "three"],
            vec!["--access-log"],
            vec!["--data-dir"],
            vec!["--slow-us", "soon"],
            vec!["--log-sample", "0"],
            vec!["--log-sample", "1/0"],
            vec!["--log-sample", "2/3"],
        ] {
            assert!(
                ServerConfig::from_args(bad.iter().map(|s| s.to_string())).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn base_options_carry_config_knobs() {
        let config = ServerConfig {
            threads: 3,
            max_conjuncts: 42,
            default_timeout_ms: Some(5),
            ..ServerConfig::default()
        };
        let opts = config.base_options();
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.max_conjuncts, 42);
        assert!(!opts.budget.is_unlimited());
        assert!(opts.analysis);
        assert_eq!(opts.level_bound, None);
        assert!(opts.canon);
        let no_canon = ServerConfig {
            canon: false,
            ..ServerConfig::default()
        };
        assert!(!no_canon.base_options().canon);
    }
}
